"""E11 — closure-compiled XQuery backend vs the tree-walking
interpreter on the rule hot path.

Claim: lowering a rule body once into nested closures (functions,
operators, and axes resolved at compile time; specialized path steps;
early-exit existence conditions) makes repeated rule evaluation ≥ 3×
faster than re-interpreting the AST — and measurably lifts end-to-end
engine throughput with the compiled backend as the default
(``DEMAQ_XQUERY_BACKEND``).

Two groups:

* *rule bodies* — the procurement workload's actual rules evaluated
  against workload-sized messages with a slice environment, the exact
  shape the executor runs per message (shape-asserted ≥ 3×);
* *expression families* — paths (with predicates), FLWOR, comparisons,
  and constructors in isolation, reported per family (predicate-heavy
  micro shapes share more time in the common semantic kernel, so their
  individual speedups sit below the rule-body aggregate).
"""

import pytest

from conftest import scaled, shape, timed
from repro.workloads import offer_request
from repro.xmldm import parse
from repro.xquery import (DynamicContext, Environment, compile_expr,
                          compile_expression, evaluate)
from repro.xquery.updates import PendingUpdateList

EVALUATIONS = scaled(400, smoke_size=20)

REQUEST_DOC = parse(offer_request("req-7", "cust-3", items=24))

_SLICE_DOCS = [parse(f'<result kind="{kind}"><requestID>req-7</requestID>'
                     "<accept/></result>")
               for kind in ("credit", "legal")] * 4


class SliceEnvironment(Environment):
    """Enough of the rule environment for slice-rule bodies."""

    def slice_messages(self):
        return list(_SLICE_DOCS)

    def slice_key(self):
        return "req-7"


#: The procurement application's rule bodies (engine/compiler output
#: shape: queue rules see the message, slice rules see the slice).
RULE_BODIES = {
    "fork": 'if (//offerRequest) then ('
            'do enqueue <check kind="credit">{//requestID}</check> '
            'into finance, '
            'do enqueue <check kind="legal">{//requestID}</check> '
            'into legal) else ()',
    "check": 'if (//check) then do enqueue <result kind="credit">'
             '<requestID>{string(//requestID)}</requestID><accept/>'
             '</result> into crm else ()',
    "join": 'if (count(qs:slice()[//result]) = 2 '
            'and not(qs:slice()[/offer])) then '
            'do enqueue <offer><requestID>{string(qs:slicekey())}'
            '</requestID></offer> into customer else ()',
    "cleanup": 'if (qs:slice()[/offer]) then do reset else ()',
    "non-match": 'if (//paymentConfirmation) then '
                 'do enqueue <ack/> into crm else ()',
}

_ITEMS = "".join(f'<item sku="S{i}" qty="{i % 7}"><price>{i % 23}.5'
                 "</price></item>" for i in range(40))
FAMILY_DOC = parse(f'<order priority="high"><id>42</id>'
                   f"<items>{_ITEMS}</items><note>rush</note></order>")

EXPRESSION_FAMILIES = {
    "paths": "//item[price > 11]/@sku",
    "flwor": "for $i in //item where xs:double($i/price) > 11 "
             "order by xs:double($i/price) descending "
             "return <line sku='{$i/@sku}'>{$i/price/text()}</line>",
    "comparisons": "count(//item[@qty >= 3 and price < 15]) > 4",
    "constructors": "<summary n='{count(//item)}'>"
                    "<total>{sum(//price)}</total></summary>",
}


def _context(doc):
    return DynamicContext(item=doc, environment=SliceEnvironment(),
                          updates=PendingUpdateList())


def _interp_loop(expr, doc):
    for _ in range(EVALUATIONS):
        evaluate(expr, _context(doc))


def _compiled_loop(fn, doc):
    for _ in range(EVALUATIONS):
        fn(_context(doc))


def _measure(sources: dict, doc):
    """{name: (interp_s, compiled_s)} plus summed totals."""
    rows = {}
    total_interp = total_compiled = 0.0
    for name, source in sources.items():
        expr = compile_expression(source)
        fn = compile_expr(expr)       # lowered once, like CompiledRule
        interp_s, _ = timed(_interp_loop, expr, doc, repeat=3)
        compiled_s, _ = timed(_compiled_loop, fn, doc, repeat=3)
        rows[name] = (interp_s, compiled_s)
        total_interp += interp_s
        total_compiled += compiled_s
    return rows, total_interp, total_compiled


@pytest.mark.benchmark(group="E11-eval")
@pytest.mark.parametrize("backend", ["interp", "compiled"])
def test_rule_body_evaluation(benchmark, backend):
    expr = compile_expression(RULE_BODIES["fork"])
    if backend == "compiled":
        fn = compile_expr(expr)
        benchmark.pedantic(_compiled_loop, (fn, REQUEST_DOC),
                           rounds=3, iterations=1)
    else:
        benchmark.pedantic(_interp_loop, (expr, REQUEST_DOC),
                           rounds=3, iterations=1)


def test_shape_rule_bodies_compiled_3x(report):
    rows, total_interp, total_compiled = _measure(RULE_BODIES, REQUEST_DOC)
    for name, (interp_s, compiled_s) in rows.items():
        report(f"rule:{name}",
               interp_ms=round(interp_s * 1e3, 1),
               compiled_ms=round(compiled_s * 1e3, 1),
               speedup=round(interp_s / compiled_s, 2))
    speedup = total_interp / total_compiled
    report("rule bodies total", speedup=round(speedup, 2))
    shape(speedup >= 3.0,
          f"compiled backend should be >= 3x on rule bodies, got "
          f"{speedup:.2f}x")


def test_shape_expression_families(report):
    rows, total_interp, total_compiled = _measure(EXPRESSION_FAMILIES,
                                                  FAMILY_DOC)
    for name, (interp_s, compiled_s) in rows.items():
        report(f"family:{name}",
               interp_ms=round(interp_s * 1e3, 1),
               compiled_ms=round(compiled_s * 1e3, 1),
               speedup=round(interp_s / compiled_s, 2))
    speedup = total_interp / total_compiled
    report("families total", speedup=round(speedup, 2))
    shape(speedup >= 1.5,
          f"compiled backend should win every family mix, got "
          f"{speedup:.2f}x")


def test_backends_agree_on_results():
    """The harness itself must compare identical work."""
    for source in {**RULE_BODIES, **EXPRESSION_FAMILIES}.values():
        expr = compile_expression(source)
        interp_pul = PendingUpdateList()
        interp_ctx = DynamicContext(item=REQUEST_DOC,
                                    environment=SliceEnvironment(),
                                    updates=interp_pul)
        compiled_pul = PendingUpdateList()
        compiled_ctx = DynamicContext(item=REQUEST_DOC,
                                      environment=SliceEnvironment(),
                                      updates=compiled_pul)
        interp_result = evaluate(expr, interp_ctx)
        compiled_result = compile_expr(expr)(compiled_ctx)
        assert len(interp_result) == len(compiled_result)
        assert len(interp_pul) == len(compiled_pul)
