"""E10 — property-value secondary indexes vs full queue scans (§4.3).

The paper's §4.3 materialization idea applied to property predicates:
``create index on queue q property p`` turns an equality correlation
over ``qs:queue(q)`` from a whole-shard scan (re-reading and re-parsing
every message, re-evaluating the predicate per message) into one B+-tree
range read.

Three claims:

* storage level — ``property_lookup`` beats ``property_lookup_scan``
  and the gap grows with queue depth;
* engine level — a correlation rule compiled with predicate pushdown
  processes probe messages ≥ 2× faster than the identical application
  without the index, at queue depth ≥ 2000;
* cluster level — the index survives node join/leave rebalances with
  contents identical to a fresh rebuild from the catalog.
"""

import pytest

from conftest import scaled, shape, timed
from repro import ClusterServer, DemaqServer
from repro.storage import MessageStore

KEYS = 20

APP = """
create queue orders kind basic mode persistent;
create queue lookups kind basic mode persistent;
create queue out kind basic mode persistent;
create property customer as xs:string fixed
    queue orders value //customerID;
create property probeFor as xs:string queue lookups value string(//probe/@c);
create index on queue orders property customer;
create rule correlate for lookups
    if (//probe) then
        do enqueue
            <n>{count(qs:queue("orders")
                      [//customerID = qs:property("probeFor")])}</n>
        into out
"""

APP_NO_INDEX = APP.replace(
    "create index on queue orders property customer;", "")


def build_store(depth: int) -> MessageStore:
    store = MessageStore()
    store.create_property_index("orders", "customer")
    for index in range(depth):
        txn = store.begin()
        txn.insert_message(
            "orders", f"<order><n>{index}</n></order>".encode(),
            {"customer": f"c{index % KEYS}"}, [])
        store.commit(txn)
    return store


def lookup_all_keys(store, accessor):
    total = 0
    for key in range(KEYS):
        total += len(accessor("orders", "customer", f"c{key}"))
    return total


@pytest.mark.benchmark(group="E10-store-4000")
@pytest.mark.parametrize("strategy", ["indexed", "scan"])
def test_store_lookup_4000(benchmark, strategy):
    depth = scaled(4000)
    store = build_store(depth)
    accessor = (store.property_lookup if strategy == "indexed"
                else store.property_lookup_scan)
    result = benchmark(lookup_all_keys, store, accessor)
    assert result == depth


def test_shape_store_gap_grows_with_depth(report):
    speedups, scan_times = [], []
    for depth in (scaled(1000), scaled(4000)):
        store = build_store(depth)
        t_index, hits = timed(lookup_all_keys, store, store.property_lookup)
        t_scan, hits_scan = timed(lookup_all_keys, store,
                                  store.property_lookup_scan)
        assert hits == hits_scan == depth
        speedup = t_scan / t_index
        speedups.append(speedup)
        scan_times.append(t_scan)
        report("property lookup", depth=depth,
               indexed_s=f"{t_index:.5f}", scan_s=f"{t_scan:.5f}",
               speedup=f"{speedup:.1f}x")
    shape(min(speedups) > 1.5, "index should beat the scan at every depth")
    # The index answers in ~log time, so both lookups sit at the noise
    # floor; the robust growth signal is the scan side going linear.
    shape(scan_times[-1] > scan_times[0] * 2,
          "scan cost should grow with queue depth")


def _run_correlation(app_source: str, depth: int, probes: int) -> float:
    server = DemaqServer(app_source)
    for index in range(depth):
        server.enqueue(
            "orders",
            f"<order><customerID>c{index % KEYS}</customerID></order>")
    server.run_until_idle()
    for index in range(probes):
        server.enqueue("lookups", f'<probe c="c{index % KEYS}"/>')
    seconds, _ = timed(server.run_until_idle, repeat=1)
    expected = [f"<n>{depth // KEYS}</n>"] * probes
    assert sorted(server.queue_texts("out")) == sorted(expected)
    return seconds


def test_shape_indexed_correlation_beats_scan_2x(report):
    """The acceptance claim: ≥ 2× at queue depth ≥ 2000."""
    depth = scaled(2000, smoke_size=60)
    probes = scaled(10, smoke_size=3)
    t_indexed = _run_correlation(APP, depth, probes)
    t_scan = _run_correlation(APP_NO_INDEX, depth, probes)
    speedup = t_scan / t_indexed
    report("correlation", depth=depth, probes=probes,
           indexed_s=f"{t_indexed:.4f}", scan_s=f"{t_scan:.4f}",
           speedup=f"{speedup:.1f}x")
    shape(speedup >= 2.0,
          f"index-backed correlation should be ≥2× the scan "
          f"(got {speedup:.1f}x)")


CLUSTER_APP = """
create queue ledger kind basic mode persistent;
create property customer as xs:string fixed
    queue ledger value //customerID;
create slicing byCustomer on customer;
create index on queue ledger property customer;
create rule keep for ledger if (false()) then ()
"""


def test_index_survives_join_and_leave_rebalance(report):
    """Index contents equal a fresh rebuild after membership changes."""
    entries = scaled(120, smoke_size=24)
    cluster = ClusterServer(CLUSTER_APP, nodes=2)
    for index in range(entries):
        cluster.enqueue(
            "ledger",
            f"<entry><customerID>c{index % 12}</customerID>"
            f"<n>{index}</n></entry>")
    cluster.run_until_idle()

    def live_equals_rebuilt() -> int:
        total = 0
        for server in cluster.servers.values():
            live = server.store.property_index_entries("ledger", "customer")
            server.store.drop_property_index("ledger", "customer")
            server.store.create_property_index("ledger", "customer")
            rebuilt = server.store.property_index_entries(
                "ledger", "customer")
            assert live == rebuilt
            total += len(live)
        return total

    cluster.add_node()
    after_join = live_equals_rebuilt()
    victim = cluster.node_names[0]
    cluster.remove_node(victim)
    after_leave = live_equals_rebuilt()
    assert after_join == after_leave == entries
    report("rebalance", entries=entries,
           nodes_after=len(cluster.node_names),
           join_ok="yes", leave_ok="yes")
