"""F1/baseline — end-to-end engine throughput on the procurement workload.

Not tied to a single claim; this is the headline msgs/sec number for the
whole stack (parse → rules → snapshot updates → transactional store) that
the other benches are normalized against, plus the persistent-store
variant showing the WAL cost.
"""

import pytest

from conftest import scaled
from repro import DemaqServer
from repro.workloads import procurement_application, request_stream

REQUESTS = scaled(30, smoke_size=6)


def drive(server) -> int:
    for _, _, body in request_stream(REQUESTS):
        server.enqueue("crm", body)
    server.run_until_idle()
    return server.executor.stats.messages_processed


@pytest.mark.benchmark(group="F1-throughput")
def test_in_memory_throughput(benchmark):
    def run():
        return drive(DemaqServer(procurement_application()))

    processed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert processed == REQUESTS * 6   # request + 2 checks + 2 results + offer


@pytest.mark.benchmark(group="F1-throughput")
def test_persistent_throughput(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        server = DemaqServer(procurement_application(),
                             data_dir=str(tmp_path / f"n{counter[0]}"),
                             sync_commits=False)
        processed = drive(server)
        server.close()
        return processed

    processed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == REQUESTS * 6


@pytest.mark.benchmark(group="F1-throughput")
def test_persistent_synced_throughput(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        server = DemaqServer(procurement_application(),
                             data_dir=str(tmp_path / f"s{counter[0]}"),
                             sync_commits=True)
        processed = drive(server)
        server.close()
        return processed

    processed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == REQUESTS * 6


@pytest.mark.benchmark(group="F1-throughput")
def test_persistent_batched_group_commit_throughput(benchmark, tmp_path):
    """The durable configuration after the E12 pipeline: batches of 8
    scheduler picks per chained transaction, group-committed — same
    final state as per-message sync execution, a fraction of the forces.
    """
    counter = [0]

    def run():
        counter[0] += 1
        server = DemaqServer(procurement_application(),
                             data_dir=str(tmp_path / f"b{counter[0]}"),
                             durability="group", batch_size=8)
        processed = drive(server)
        forces = server.store.wal.stats().flushes
        server.close()
        return processed, forces

    processed, forces = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == REQUESTS * 6
    # every commit forced the log under sync; batching + group commit
    # must collapse that by at least the batch factor's better part
    assert forces < (REQUESTS * 6) / 2
