"""F1/baseline — end-to-end engine throughput on the procurement workload.

Not tied to a single claim; this is the headline msgs/sec number for the
whole stack (parse → rules → snapshot updates → transactional store) that
the other benches are normalized against, plus the persistent-store
variant showing the WAL cost.
"""

import pytest

from conftest import scaled
from repro import DemaqServer
from repro.workloads import procurement_application, request_stream

REQUESTS = scaled(30, smoke_size=6)


def drive(server) -> int:
    for _, _, body in request_stream(REQUESTS):
        server.enqueue("crm", body)
    server.run_until_idle()
    return server.executor.stats.messages_processed


@pytest.mark.benchmark(group="F1-throughput")
def test_in_memory_throughput(benchmark):
    def run():
        return drive(DemaqServer(procurement_application()))

    processed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert processed == REQUESTS * 6   # request + 2 checks + 2 results + offer


@pytest.mark.benchmark(group="F1-throughput")
def test_persistent_throughput(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        server = DemaqServer(procurement_application(),
                             data_dir=str(tmp_path / f"n{counter[0]}"),
                             sync_commits=False)
        processed = drive(server)
        server.close()
        return processed

    processed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == REQUESTS * 6


@pytest.mark.benchmark(group="F1-throughput")
def test_persistent_synced_throughput(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        server = DemaqServer(procurement_application(),
                             data_dir=str(tmp_path / f"s{counter[0]}"),
                             sync_commits=True)
        processed = drive(server)
        server.close()
        return processed

    processed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == REQUESTS * 6
