"""E2 — slice-granularity vs queue-granularity locking (paper §4.3).

Claim: "By locking just the affected slices, full serializability of the
individual message-processing transactions can be guaranteed without
locking whole queues" — i.e. transactions on *disjoint* slices should
run concurrently under slice locking, while queue locking serializes
them.
"""

import threading

import pytest

from conftest import scaled, shape, timed
from repro import DemaqServer

APP = """
create queue jobs kind basic mode persistent;
create queue done kind basic mode persistent;
create property group as xs:string fixed
    queue jobs value //group;
create slicing byGroup on group;
create rule work for byGroup
    if (qs:slice()[//job]) then
        do enqueue <ack g="{string(qs:slicekey())}"/> into done
"""

MESSAGES = scaled(120, smoke_size=24)
GROUPS = 12
WORKERS = 4


def build_server(granularity):
    # This bench compares the two 2PL granularities against each other,
    # so MVCC (which removes the read locks entirely) is pinned off;
    # bench_mvcc covers the MVCC-vs-2PL comparison.
    server = DemaqServer(APP, lock_granularity=granularity,
                         lock_timeout=30.0, mvcc=False)
    for index in range(MESSAGES):
        server.enqueue(
            "jobs",
            f"<job><group>g{index % GROUPS}</group><n>{index}</n></job>")
    return server


def drain_concurrently(server, workers=WORKERS):
    def worker():
        while True:
            msg_id = server.scheduler.next_message()
            if msg_id is None:
                return
            if not server.executor.process_message(msg_id):
                meta = server.store.get(msg_id)
                if meta is not None:
                    server.scheduler.requeue(msg_id, meta.queue, meta.seqno)

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return len(server.queue_texts("done"))


@pytest.mark.benchmark(group="E2-locking")
@pytest.mark.parametrize("granularity", ["slice", "queue"])
def test_concurrent_throughput(benchmark, granularity):
    def run():
        server = build_server(granularity)
        return drain_concurrently(server)

    acks = benchmark.pedantic(run, rounds=3, iterations=1)
    assert acks == MESSAGES


def test_shape_slice_locking_allows_more_concurrency(report):
    t_slice, acks_slice = timed(
        lambda: drain_concurrently(build_server("slice")), repeat=2)
    t_queue, acks_queue = timed(
        lambda: drain_concurrently(build_server("queue")), repeat=2)
    assert acks_slice == acks_queue == MESSAGES
    report("4 workers, 12 disjoint slices",
           slice_s=f"{t_slice:.4f}", queue_s=f"{t_queue:.4f}",
           ratio=f"{t_queue / t_slice:.2f}x")
    # Queue-granularity must not be faster; with contention it is slower.
    shape(t_queue >= t_slice * 0.9,
          "queue-granularity locking should not beat slice locking")


def test_shape_lock_waits(report):
    server_slice = build_server("slice")
    drain_concurrently(server_slice)
    server_queue = build_server("queue")
    drain_concurrently(server_queue)
    report("lock manager waits",
           slice_waits=server_slice.locks.waits,
           queue_waits=server_queue.locks.waits)
    shape(server_queue.locks.waits >= server_slice.locks.waits,
          "queue locking should wait at least as often as slice locking")
