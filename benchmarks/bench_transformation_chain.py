"""E8 — the middleware transformation chain hurts performance (paper §1).

Claim: each middleware tier transforms the message into its own
representation and back ("this not only hurts performance...").  Demaq
evaluates rules directly over the stored XML.  Measured: per-message cost
of the same business logic as the tier count grows, vs the Demaq engine.
"""

import pytest

from conftest import scaled, shape, timed
from repro import DemaqServer
from repro.baselines import ImperativePipeline
from repro.workloads import order_message

MESSAGES = scaled(50, smoke_size=10)

DEMAQ_APP = """
create queue orders kind basic mode persistent;
create queue acks kind basic mode persistent;
create rule ack for orders
    if (//customerOrder) then
        do enqueue <ack><ref>{string(//orderID)}</ref>
            <lines>{count(//line)}</lines></ack> into acks
"""


def business_logic(data: dict) -> dict:
    order = data["customerOrder"]
    lines = order.get("line", [])
    if isinstance(lines, dict):
        lines = [lines]
    return {"ack": {"ref": order["orderID"], "lines": str(len(lines))}}


def run_demaq() -> int:
    server = DemaqServer(DEMAQ_APP)
    for index in range(MESSAGES):
        server.enqueue("orders", order_message(index, f"c{index % 7}"))
    server.run_until_idle()
    return len(server.queue_texts("acks"))


def run_pipeline(tiers: int) -> int:
    pipeline = ImperativePipeline(business_logic, tiers=tiers)
    out = 0
    for index in range(MESSAGES):
        result = pipeline.handle(order_message(index, f"c{index % 7}"))
        out += 1
        assert "<ack>" in result
    return out


@pytest.mark.benchmark(group="E8-chain")
def test_demaq_native_processing(benchmark):
    acks = benchmark.pedantic(run_demaq, rounds=2, iterations=1)
    assert acks == MESSAGES


@pytest.mark.benchmark(group="E8-chain")
@pytest.mark.parametrize("tiers", [0, 2, 4, 6])
def test_pipeline_with_tiers(benchmark, tiers):
    acks = benchmark.pedantic(run_pipeline, args=(tiers,), rounds=2,
                              iterations=1)
    assert acks == MESSAGES


def test_shape_cost_grows_with_tiers(report):
    times = {}
    for tiers in (0, 2, 6):
        times[tiers], _ = timed(run_pipeline, tiers, repeat=2)
        report("pipeline", tiers=tiers, seconds=f"{times[tiers]:.4f}")
    shape(times[2] > times[0], "2 tiers should cost more than none")
    shape(times[6] > times[2], "6 tiers should cost more than 2")
    # the 6-tier stack costs a multiple of the direct implementation
    shape(times[6] / times[0] > 1.5,
          "the tier stack should cost a multiple of direct processing")


def test_shape_transformation_counts(report):
    pipeline = ImperativePipeline(business_logic, tiers=5)
    pipeline.handle(order_message(1, "c"))
    report("representation changes per message",
           tiers=5, transformations=pipeline.transformations)
    assert pipeline.transformations == 2 + 4 * 5
