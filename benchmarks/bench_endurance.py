"""E-endurance — bounded WAL and bounded recovery under a long soak.

A Demaq node is meant to run for days: retention-driven deletion (§2.3.3,
§4.1) reclaims *messages*, but without checkpoints the WAL grows without
bound and recovery replays all of history.  DESIGN.md §10 closes the
loop with fuzzy checkpoints + prefix truncation driven by the
:class:`CheckpointScheduler`.

Two legs over the identical insert/delete churn workload:

* **endurance** — scheduler on with a WAL ceiling: the live log must
  stay within one transaction of the ceiling for the whole soak, and
  recovery after a simulated SIGKILL replays only the post-checkpoint
  tail;
* **full-log** — no checkpoints: the log holds every byte ever written
  and recovery replays all of it.

Hard assertions (they hold at smoke sizes too — these are correctness
claims about *what* is replayed, not timing): the WAL ceiling holds,
recovery starts from the checkpoint LSN, and the endurance leg replays
>= 5x fewer records than full-log replay.  The wall-clock speedup is a
shape claim.
"""

import pytest

from conftest import scaled, shape

from repro.storage import CheckpointScheduler, MessageStore

#: Soak depth: committed transactions (each op is one insert txn, plus
#: one delete txn once the retention window slides past it).
OPERATIONS = scaled(3000, smoke_size=400)

#: Live-message retention window the churn maintains.
WINDOW = 50

#: The endurance leg's hard WAL size target, in bytes.
CEILING = 16 * 1024

#: One churn transaction stays well under this; the ceiling check
#: allows a single in-flight transaction of overshoot between ticks.
TXN_SLACK = 2 * 1024


def insert(store, index):
    txn = store.begin()
    op = txn.insert_message(
        "q", f"<event n='{index}'><pad>{'x' * 64}</pad></event>".encode(),
        {}, [])
    store.commit(txn)
    return op.msg_id


def delete(store, msg_id):
    txn = store.begin()
    txn.delete_message(msg_id)
    store.commit(txn)


def soak(directory, scheduler_factory=None):
    """Run the churn; returns (store, scheduler, peak_wal_bytes)."""
    store = MessageStore(directory, durability="async")
    scheduler = scheduler_factory(store) if scheduler_factory else None
    live = []
    peak = 0
    for index in range(OPERATIONS):
        live.append(insert(store, index))
        if len(live) > WINDOW:
            delete(store, live.pop(0))
        if scheduler is not None:
            scheduler.maybe_run()
            peak = max(peak, store.wal.size_bytes())
    if scheduler is not None:
        scheduler.maybe_run()
    return store, scheduler, peak


def crash_and_recover(store):
    """SIGKILL model: volatile state gone, then timed recovery."""
    store.simulate_crash()
    store.recover()
    return store.stats.last_recovery_seconds


@pytest.mark.bench
def test_endurance_bounds_wal_and_recovery(tmp_path, report):
    endurance, scheduler, peak = soak(
        str(tmp_path / "endurance"),
        lambda store: CheckpointScheduler(store, wal_ceiling_bytes=CEILING))
    # The ceiling held for the whole soak (one transaction of slack:
    # the scheduler ticks between transactions, never inside one).
    assert peak <= CEILING + TXN_SLACK, \
        f"WAL peaked at {peak} bytes over ceiling {CEILING}"
    assert scheduler.runs >= 2
    assert scheduler.truncated_bytes > 0
    report("endurance-soak", operations=OPERATIONS,
           wal_peak_bytes=peak, wal_ceiling_bytes=CEILING,
           checkpoints=scheduler.runs,
           truncated_bytes=scheduler.truncated_bytes,
           wal_live_bytes=endurance.wal.size_bytes())

    fullog, _, _ = soak(str(tmp_path / "fullog"))
    assert fullog.wal.start_lsn() == 0          # nothing ever truncated

    endurance_seconds = crash_and_recover(endurance)
    endurance_replayed = endurance.stats.replayed_records
    fullog_seconds = crash_and_recover(fullog)
    fullog_replayed = fullog.stats.replayed_records

    # Bounded recovery: replay starts at the checkpoint LSN, so the
    # endurance leg replays a small post-checkpoint tail while full-log
    # replay walks every record ever written.
    assert endurance.wal.start_lsn() > 0
    assert endurance_replayed * 5 <= fullog_replayed, \
        f"expected >=5x fewer replayed records, got " \
        f"{endurance_replayed} vs {fullog_replayed}"
    # Identical surviving state either way.
    assert endurance.message_count() == fullog.message_count() == WINDOW

    report("recovery", endurance_replayed=endurance_replayed,
           fullog_replayed=fullog_replayed,
           replay_ratio=round(fullog_replayed
                              / max(1, endurance_replayed), 1),
           endurance_seconds=round(endurance_seconds, 4),
           fullog_seconds=round(fullog_seconds, 4),
           metrics={"demaq_checkpoint_total": endurance.stats.checkpoints,
                    "demaq_wal_truncations_total":
                        endurance.stats.wal_truncations,
                    "demaq_wal_truncated_bytes_total":
                        endurance.stats.wal_truncated_bytes})
    shape(endurance_seconds <= fullog_seconds,
          f"bounded recovery ({endurance_seconds:.4f}s) should not be "
          f"slower than full-log replay ({fullog_seconds:.4f}s)")
    endurance.close()
    fullog.close()
