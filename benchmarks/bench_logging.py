"""E3 — append-only logging and retention-derived deletion (paper §4.1).

Claims: "our append-only approach for message queues simplifies logging
and recovery because there are fewer in-place updates.  Further, our
declarative mechanism for specifying message retention frees the system
from the need to fully log message deletions – after a crash, the
decision to delete certain messages can be reached without analyzing the
log."

Measured: WAL bytes per workload and recovery time, with per-message
delete logging (conventional) vs retention-derived deletion.
"""

import pytest

from conftest import scaled, timed
from repro.storage import MessageStore

MESSAGES = scaled(600)


def run_workload(store: MessageStore) -> None:
    """Insert, process, reset, and GC a sliced message population."""
    for index in range(MESSAGES):
        txn = store.begin()
        txn.insert_message(
            "orders", f"<order><n>{index}</n></order>".encode(),
            {"req": f"r{index}"}, [("byReq", f"r{index}")])
        store.commit(txn)
    # process + retire every message
    for meta in list(store.unprocessed_messages()):
        txn = store.begin()
        txn.mark_processed(meta.msg_id)
        for slicing, key, _ in meta.slices:
            txn.reset_slice(slicing, key)
        store.commit(txn)
    store.collect_garbage()


def make_store(tmp_path, mode, log_deletes):
    return MessageStore(str(tmp_path / mode), sync_commits=False,
                        log_deletes=log_deletes)


@pytest.mark.benchmark(group="E3-recovery")
@pytest.mark.parametrize("mode", ["logged-deletes", "derived-deletes"])
def test_recovery_time(benchmark, tmp_path, mode):
    store = make_store(tmp_path, mode, log_deletes=(mode == "logged-deletes"))
    run_workload(store)
    store.wal.flush()

    def crash_and_recover():
        store.simulate_crash()
        store.recover()
        return store.message_count()

    remaining = benchmark.pedantic(crash_and_recover, rounds=3, iterations=1)
    assert remaining == 0
    store.close()


def test_shape_log_volume_and_recovery(tmp_path, report):
    logged = make_store(tmp_path, "a", log_deletes=True)
    run_workload(logged)
    logged.wal.flush()
    derived = make_store(tmp_path, "b", log_deletes=False)
    run_workload(derived)
    derived.wal.flush()

    bytes_logged = logged.wal.size_bytes()
    bytes_derived = derived.wal.size_bytes()
    records_logged = logged.wal.appended_records
    records_derived = derived.wal.appended_records

    t_logged, _ = timed(lambda: (logged.simulate_crash(), logged.recover()))
    t_derived, _ = timed(lambda: (derived.simulate_crash(),
                                  derived.recover()))

    report("log volume",
           logged_bytes=bytes_logged, derived_bytes=bytes_derived,
           saved=f"{100 * (1 - bytes_derived / bytes_logged):.1f}%",
           logged_records=records_logged, derived_records=records_derived)
    report("recovery", logged_s=f"{t_logged:.4f}",
           derived_s=f"{t_derived:.4f}")

    assert bytes_derived < bytes_logged
    assert records_derived < records_logged
    # both recover to the identical (empty, fully-GC'd) state
    assert logged.message_count() == derived.message_count() == 0
    logged.close()
    derived.close()
