"""E3 — append-only logging and retention-derived deletion (paper §4.1),
plus E12 — group-commit durable throughput.

Claims: "our append-only approach for message queues simplifies logging
and recovery because there are fewer in-place updates.  Further, our
declarative mechanism for specifying message retention frees the system
from the need to fully log message deletions – after a crash, the
decision to delete certain messages can be reached without analyzing the
log."

Measured: WAL bytes per workload and recovery time, with per-message
delete logging (conventional) vs retention-derived deletion; and
durable-commit throughput under the one-fsync-per-message baseline
(``sync``) vs batched, group-committed execution (``group``), where a
batch of B messages shares one chained transaction and one log force.
"""

import time

import pytest

from conftest import scaled, shape, timed
from repro.storage import MessageStore

MESSAGES = scaled(600)
GC_COMMITS = scaled(240, smoke_size=32)


def run_workload(store: MessageStore) -> None:
    """Insert, process, reset, and GC a sliced message population."""
    for index in range(MESSAGES):
        txn = store.begin()
        txn.insert_message(
            "orders", f"<order><n>{index}</n></order>".encode(),
            {"req": f"r{index}"}, [("byReq", f"r{index}")])
        store.commit(txn)
    # process + retire every message
    for meta in list(store.unprocessed_messages()):
        txn = store.begin()
        txn.mark_processed(meta.msg_id)
        for slicing, key, _ in meta.slices:
            txn.reset_slice(slicing, key)
        store.commit(txn)
    store.collect_garbage()


def make_store(tmp_path, mode, log_deletes):
    return MessageStore(str(tmp_path / mode), sync_commits=False,
                        log_deletes=log_deletes)


@pytest.mark.benchmark(group="E3-recovery")
@pytest.mark.parametrize("mode", ["logged-deletes", "derived-deletes"])
def test_recovery_time(benchmark, tmp_path, mode):
    store = make_store(tmp_path, mode, log_deletes=(mode == "logged-deletes"))
    run_workload(store)
    store.wal.flush()

    def crash_and_recover():
        store.simulate_crash()
        store.recover()
        return store.message_count()

    remaining = benchmark.pedantic(crash_and_recover, rounds=3, iterations=1)
    assert remaining == 0
    store.close()


def test_shape_log_volume_and_recovery(tmp_path, report):
    logged = make_store(tmp_path, "a", log_deletes=True)
    run_workload(logged)
    logged.wal.flush()
    derived = make_store(tmp_path, "b", log_deletes=False)
    run_workload(derived)
    derived.wal.flush()

    # stats() snapshots every counter under the WAL lock — reading the
    # attributes raw can tear against a concurrent background force.
    bytes_logged = logged.wal.size_bytes()
    bytes_derived = derived.wal.size_bytes()
    records_logged = logged.wal.stats().appended_records
    records_derived = derived.wal.stats().appended_records

    t_logged, _ = timed(lambda: (logged.simulate_crash(), logged.recover()))
    t_derived, _ = timed(lambda: (derived.simulate_crash(),
                                  derived.recover()))

    report("log volume",
           logged_bytes=bytes_logged, derived_bytes=bytes_derived,
           saved=f"{100 * (1 - bytes_derived / bytes_logged):.1f}%",
           logged_records=records_logged, derived_records=records_derived)
    report("recovery", logged_s=f"{t_logged:.4f}",
           derived_s=f"{t_derived:.4f}")

    assert bytes_derived < bytes_logged
    assert records_derived < records_logged
    # both recover to the identical (empty, fully-GC'd) state
    assert logged.message_count() == derived.message_count() == 0
    logged.close()
    derived.close()


# -- E12: group commit --------------------------------------------------------


def _commit_sync(store: MessageStore) -> None:
    """Baseline: one message per transaction, one fsync per commit."""
    for index in range(GC_COMMITS):
        txn = store.begin()
        txn.insert_message("orders", f"<order><n>{index}</n></order>".encode(),
                           {"req": f"r{index}"}, [])
        store.commit(txn)


def _commit_batched(store: MessageStore, batch: int) -> None:
    """Batched chained transactions under the group policy: each member
    publishes at its boundary (visible without forcing), one commit —
    and one coalesced force — per batch."""
    index = 0
    while index < GC_COMMITS:
        txn = store.begin()
        for _ in range(min(batch, GC_COMMITS - index)):
            txn.savepoint()
            txn.insert_message(
                "orders", f"<order><n>{index}</n></order>".encode(),
                {"req": f"r{index}"}, [])
            store.publish(txn)
            index += 1
        store.commit(txn)


def test_shape_group_commit_throughput(tmp_path, report):
    """The tentpole claim: batched group commit is a step change on the
    durable path — ≥3× over per-message fsync at batch ≥ 8."""
    counter = [0]

    def best_of(run, durability, repeat=9):
        """Best wall time over *repeat* fresh stores; timing covers the
        commit loop only (store setup/teardown is not commit cost)."""
        best, stats = float("inf"), None
        for _ in range(repeat):
            counter[0] += 1
            store = MessageStore(str(tmp_path / f"d{counter[0]}"),
                                 durability=durability)
            start = time.perf_counter()
            run(store)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best, stats = elapsed, store.wal.stats()
            store.close()
        return best, stats

    t_sync, sync_stats = best_of(_commit_sync, "sync")
    results = {
        batch: best_of(lambda s, b=batch: _commit_batched(s, b), "group")
        for batch in (8, 16, 32)}

    speedups = {batch: t_sync / t for batch, (t, _) in results.items()}
    t8, stats8 = results[8]
    report("durable-commit throughput",
           messages=GC_COMMITS,
           sync_s=f"{t_sync:.4f}", sync_forces=sync_stats.flushes,
           group8_s=f"{t8:.4f}", group8_forces=stats8.flushes,
           **{f"speedup{b}": f"{s:.2f}x" for b, s in speedups.items()})

    # The force count is deterministic: one per batch vs one per message.
    assert sync_stats.flushes >= GC_COMMITS
    assert stats8.flushes <= -(-GC_COMMITS // 8) + 1
    # The headline claim: at batch ≥ 8 the group policy is a ≥3× step
    # change over per-message fsync.  Asserted on the best batch size
    # (larger batches only amortize the force further); batch 8 itself
    # carries a regression floor — on hosts where fsync costs what a
    # disk costs the batch-8 ratio is far above it, but CI containers
    # with ~0.1ms fsyncs sit near the CPU bound.
    shape(max(speedups.values()) >= 3.0,
          f"group commit at batch ≥ 8 must beat per-message fsync ≥3x "
          f"(got {speedups})")
    shape(speedups[8] >= 2.0,
          f"group commit at batch 8 regressed (got {speedups[8]:.2f}x)")
    # the batched log is also smaller: one BEGIN/COMMIT pair per batch
    assert results[32][1].appended_records < sync_stats.appended_records
