"""E1 — materialized slices vs merged-query evaluation (paper §2.3/§4.3).

Claim: "Despite their logical nature, slices can be physically stored to
speed up message access, similar to indexes and materialized views."
The materialized B+-tree slice index answers a slice access with one
range scan; the merged-query baseline scans the whole store.  The gap
must grow with the total number of stored messages.
"""

import pytest

from conftest import scaled, shape, timed
from repro.storage import MessageStore

KEYS = 20


def build_store(total_messages: int) -> MessageStore:
    store = MessageStore()
    for index in range(total_messages):
        txn = store.begin()
        txn.insert_message(
            "orders", f"<order><n>{index}</n></order>".encode(),
            {"customer": f"c{index % KEYS}"},
            [("byCustomer", f"c{index % KEYS}")])
        store.commit(txn)
    return store


def lookup_all_keys(store, accessor):
    total = 0
    for key in range(KEYS):
        total += len(accessor("byCustomer", f"c{key}"))
    return total


@pytest.mark.benchmark(group="E1-slicing-2000")
@pytest.mark.parametrize("strategy", ["materialized", "scan"])
def test_slice_access_2000(benchmark, strategy):
    total = scaled(2000)
    store = build_store(total)
    accessor = (store.slice_messages if strategy == "materialized"
                else store.slice_messages_scan)
    result = benchmark(lookup_all_keys, store, accessor)
    assert result == total


@pytest.mark.benchmark(group="E1-slicing-8000")
@pytest.mark.parametrize("strategy", ["materialized", "scan"])
def test_slice_access_8000(benchmark, strategy):
    total = scaled(8000)
    store = build_store(total)
    accessor = (store.slice_messages if strategy == "materialized"
                else store.slice_messages_scan)
    result = benchmark(lookup_all_keys, store, accessor)
    assert result == total


def test_shape_materialized_wins_and_gap_grows(report):
    rows = []
    for total in (scaled(1000), scaled(4000)):
        store = build_store(total)
        t_index, hits = timed(lookup_all_keys, store, store.slice_messages)
        t_scan, hits_scan = timed(lookup_all_keys, store,
                                  store.slice_messages_scan)
        assert hits == hits_scan == total
        speedup = t_scan / t_index
        rows.append(speedup)
        report("slice access", messages=total,
               materialized_s=f"{t_index:.5f}", scan_s=f"{t_scan:.5f}",
               speedup=f"{speedup:.1f}x")
    shape(rows[0] > 1.5, "materialized slice index should win")
    shape(rows[1] > rows[0], "gap should grow with store size")
