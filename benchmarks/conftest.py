"""Shared helpers for the benchmark harness.

Every bench reproduces one claim from DESIGN.md §5 (E1-E9).  Absolute
numbers depend on the host; the *shape* assertions (who wins, how the gap
scales) encode what the paper predicts.
"""

import time

import pytest


def timed(fn, *args, repeat=3, **kwargs):
    """Best-of-N wall-clock measurement for in-test shape comparisons."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture()
def report(request):
    """Print a paper-style result row, visible in bench_output.txt."""

    def emit(label, **fields):
        parts = "  ".join(f"{key}={value}" for key, value in fields.items())
        print(f"\n[{request.node.name}] {label}: {parts}")

    return emit
