"""Shared helpers for the benchmark harness.

Every bench reproduces one claim from DESIGN.md §5 (E1-E10).  Absolute
numbers depend on the host; the *shape* assertions (who wins, how the gap
scales) encode what the paper predicts.

Smoke mode (``DEMAQ_BENCH_SMOKE=1``, used by CI): workload sizes shrink
via :func:`scaled` and timing-shape assertions via :func:`shape` turn
into warnings — tiny workloads exercise every harness code path to catch
regressions in the benchmarks themselves, without asserting performance
claims that need real sizes to hold.

Machine-readable results (``DEMAQ_BENCH_RESULTS=<path>``): every
:func:`report` row is also recorded as JSON keyed by test node id, and
merged into the target file at session end — CI uploads the merged file
as the ``BENCH_RESULTS.json`` artifact, one entry per bench, so runs
accumulate a comparable trajectory instead of scrolling away in logs.
"""

import json
import os
import time
import warnings

import pytest

#: CI runs every bench file with this set to catch harness regressions.
SMOKE = os.environ.get("DEMAQ_BENCH_SMOKE", "") not in ("", "0")

#: When set, report() rows are merged into this JSON file at exit.
RESULTS_PATH = os.environ.get("DEMAQ_BENCH_RESULTS", "")

_session_results: dict[str, dict] = {}


def scaled(size: int, smoke_size: int | None = None) -> int:
    """The workload size to use: *size*, or a reduction in smoke mode."""
    if not SMOKE:
        return size
    if smoke_size is not None:
        return smoke_size
    return max(1, size // 20)


def shape(condition: bool, message: str) -> None:
    """Assert a timing-shape claim — warn instead under smoke mode."""
    if SMOKE:
        if not condition:
            warnings.warn(f"[smoke] shape not asserted: {message}",
                          stacklevel=2)
        return
    assert condition, message


def timed(fn, *args, repeat=3, **kwargs):
    """Best-of-N wall-clock measurement for in-test shape comparisons."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture()
def report(request):
    """Print a paper-style result row, visible in bench_output.txt.

    With ``DEMAQ_BENCH_RESULTS`` set, the row is also recorded for the
    merged machine-readable results file.
    """

    def emit(label, **fields):
        # A 'metrics' sub-dict (registry counters backing the row) is
        # kept intact in the JSON artifact but only summarized in the
        # printed line — the artifact is for machines, the line for eyes.
        metrics = fields.pop("metrics", None)
        parts = "  ".join(f"{key}={value}" for key, value in fields.items())
        suffix = f"  metrics=<{len(metrics)} series>" if metrics else ""
        print(f"\n[{request.node.name}] {label}: {parts}{suffix}")
        if RESULTS_PATH:
            entry = _session_results.setdefault(request.node.nodeid, {})
            row = {
                key: value if isinstance(value, (int, float, str, bool))
                else str(value)
                for key, value in fields.items()}
            if metrics:
                row["metrics"] = {
                    key: value if isinstance(value, (int, float, str, bool))
                    else str(value)
                    for key, value in metrics.items()}
            entry[label] = row

    return emit


def pytest_sessionfinish(session, exitstatus):
    """Merge this invocation's rows into the results file.

    CI runs each bench file in its own pytest invocation; merging keeps
    one artifact covering all of them.
    """
    if not RESULTS_PATH or not _session_results:
        return
    merged: dict = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH, encoding="utf-8") as fh:
                merged = json.load(fh)
        except ValueError:
            merged = {}
    merged.update(_session_results)
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
