"""E4 — compiled per-queue plans with prefilters vs naive evaluation
(paper §4.4.1).

Claim: compiling all rules of a queue into one plan and exploiting
"XML filtering" lets the engine skip rules whose condition cannot match;
the gap grows with the number of rules per queue.
"""

import pytest

from conftest import scaled, shape, timed
from repro import DemaqServer

MESSAGES = scaled(60, smoke_size=12)


def make_app(rules: int) -> str:
    lines = ["create queue q kind basic mode persistent;",
             "create queue out kind basic mode persistent;"]
    for index in range(rules):
        lines.append(
            f"create rule r{index} for q "
            f"if (//type{index}) then do enqueue <hit n=\"{index}\"/> "
            f"into out;")
    return "\n".join(lines)


def drive(server) -> int:
    # every message matches exactly one of the rules
    for index in range(MESSAGES):
        server.enqueue("q", f"<type0><n>{index}</n></type0>")
    server.run_until_idle()
    return len(server.queue_texts("out"))


@pytest.mark.benchmark(group="E4-rules-32")
@pytest.mark.parametrize("mode", ["optimized", "naive"])
def test_rule_processing_32_rules(benchmark, mode):
    def run():
        server = DemaqServer(make_app(32),
                             optimize_rules=(mode == "optimized"))
        return drive(server)

    hits = benchmark.pedantic(run, rounds=3, iterations=1)
    assert hits == MESSAGES


def test_shape_prefilter_gap_grows_with_rule_count(report):
    speedups = []
    for rules in (8, 32):
        t_opt, hits_opt = timed(
            lambda r=rules: drive(DemaqServer(make_app(r),
                                              optimize_rules=True)),
            repeat=2)
        t_naive, hits_naive = timed(
            lambda r=rules: drive(DemaqServer(make_app(r),
                                              optimize_rules=False)),
            repeat=2)
        assert hits_opt == hits_naive == MESSAGES
        speedups.append(t_naive / t_opt)
        report("rule evaluation", rules=rules,
               optimized_s=f"{t_opt:.4f}", naive_s=f"{t_naive:.4f}",
               speedup=f"{t_naive / t_opt:.2f}x")
    shape(speedups[-1] > 1.2, "prefilters should win with many rules")
    shape(speedups[-1] > speedups[0], "gap should grow with rule count")


def test_shape_skip_counters(report):
    server = DemaqServer(make_app(32), optimize_rules=True)
    drive(server)
    stats = server.executor.stats
    report("prefilter effectiveness",
           evaluated=stats.rules_evaluated,
           skipped=stats.rules_skipped_by_prefilter)
    # 32 rules x 60 messages; only 1 rule per message should evaluate
    assert stats.rules_evaluated == MESSAGES
    assert stats.rules_skipped_by_prefilter == MESSAGES * 31
