"""E5 — message-based state vs per-instance contexts with dehydration
(paper §2.1).

Claim: keeping process state in per-instance runtime contexts "leads to
scalability issues if the number of processes is large"; engines
dehydrate stale instances to a store and pay rehydration on every
revival.  Demaq keeps all state as stored messages and correlates with
slices, so cost per message stays flat as live-instance count grows.

Workload: P two-step processes; the two messages of each process arrive
P apart (worst case for an LRU context cache of fixed size).
"""

import pytest

from conftest import scaled, shape, timed
from repro import DemaqServer
from repro.baselines import BPELLikeEngine

RESIDENT_CONTEXTS = 64

DEMAQ_APP = """
create queue steps kind basic mode persistent;
create queue done kind basic mode persistent;
create property pid as xs:string fixed
    queue steps value //pid;
create slicing byProcess on pid;
create rule complete for byProcess
    if (qs:slice()[//step = "1"] and qs:slice()[//step = "2"]
        and not(qs:slice()[/finished])) then
        do enqueue <finished><pid>{string(qs:slicekey())}</pid></finished>
            into steps;
create rule cleanup for byProcess
    if (qs:slice()[/finished]) then do reset
"""


def interleaved_messages(processes: int):
    for step in ("1", "2"):
        for pid in range(processes):
            yield f"<msg><pid>p{pid}</pid><step>{step}</step></msg>"


def run_demaq(processes: int) -> int:
    server = DemaqServer(DEMAQ_APP)
    for message in interleaved_messages(processes):
        server.enqueue("steps", message)
    server.run_until_idle()
    server.collect_garbage()
    return server.executor.stats.resets


def run_bpel(processes: int) -> int:
    def handler(context, message):
        context.variables[f"step{context.step}"] = message
        context.step += 1
        return context.step >= 2

    def correlate(document):
        return document.root_element.first_child("pid").text

    engine = BPELLikeEngine(handler, correlate,
                            max_resident=RESIDENT_CONTEXTS)
    for message in interleaved_messages(processes):
        engine.deliver(message)
    assert engine.completed == processes
    return engine.store.rehydrations


@pytest.mark.benchmark(group="E5-state-256")
@pytest.mark.parametrize("engine", ["demaq", "bpel-like"])
def test_state_scaling_256_processes(benchmark, engine):
    fn = run_demaq if engine == "demaq" else run_bpel
    benchmark.pedantic(fn, args=(scaled(256, smoke_size=32),),
                       rounds=2, iterations=1)


def test_shape_dehydration_costs_grow(report):
    ratios = []
    for processes in (scaled(128, smoke_size=24),
                      scaled(512, smoke_size=96)):
        t_demaq, _ = timed(run_demaq, processes, repeat=1)
        t_bpel, rehydrations = timed(run_bpel, processes, repeat=1)
        per_msg_demaq = t_demaq / (2 * processes)
        per_msg_bpel = t_bpel / (2 * processes)
        ratios.append(per_msg_bpel / per_msg_demaq)
        report("per-message cost", processes=processes,
               demaq_ms=f"{1000 * per_msg_demaq:.3f}",
               bpel_ms=f"{1000 * per_msg_bpel:.3f}",
               rehydrations=rehydrations)
    # Past the resident limit every second message rehydrates: the
    # BPEL-like engine's relative cost must grow with instance count.
    shape(ratios[1] > ratios[0],
          "dehydration cost should grow with instance count")


def test_shape_dehydration_counts(report):
    def rehydrations(processes):
        return run_bpel(processes)

    over = scaled(8, smoke_size=2)
    small = rehydrations(RESIDENT_CONTEXTS // 2)   # fits: no dehydration
    large = rehydrations(over * RESIDENT_CONTEXTS)  # over the limit: thrash
    report("rehydration count", within_limit=small, past_limit=large)
    assert small == 0
    assert large >= (over - 1) * RESIDENT_CONTEXTS
