"""E9 — gateway queues + reliable messaging survive failures
(paper §2.1.2, §3.6).

Claim: persistent gateway queues with WS-ReliableMessaging "support
reliable sending across system failures"; without the extension, a
transport failure surfaces as an error message instead.

Measured: delivery ratio under an injected failure rate, with and
without the reliable-messaging extension, plus raw two-node throughput.
"""

import pytest

from conftest import scaled, shape
from repro import DemaqServer, Network, run_cluster
from repro.queues import VirtualClock

SENDER_TEMPLATE = """
create queue work kind basic mode persistent;
create queue toRemote kind outgoingGateway mode persistent
    endpoint "demaq://remote/inbox"{extension};
create queue netErrors kind basic mode persistent;
create errorqueue netErrors;
create rule fwd for work
    if (//job) then do enqueue <job id="{{string(//job/@id)}}"/>
        into toRemote
"""

RECEIVER = """
create queue inbox kind incomingGateway mode persistent
    endpoint "demaq://remote/inbox";
create queue done kind basic mode persistent;
create rule handle for inbox
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""

JOBS = scaled(60, smoke_size=20)


def build(reliable: bool, drop_rate: float = 0.0, seed: int = 11):
    clock = VirtualClock()
    network = Network(clock, drop_rate=drop_rate, seed=seed)
    extension = ("\n    using WS-ReliableMessaging policy wsrm.xml"
                 if reliable else "")
    sender = DemaqServer(SENDER_TEMPLATE.format(extension=extension),
                         clock=clock, network=network, name="local")
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    return network, sender, receiver


def run_jobs(sender, receiver):
    for index in range(JOBS):
        sender.enqueue("work", f'<job id="{index}"/>')
    run_cluster([sender, receiver])
    delivered = len(receiver.queue_texts("done"))
    errors = len(sender.queue_documents("netErrors"))
    return delivered, errors


@pytest.mark.benchmark(group="E9-gateway")
@pytest.mark.parametrize("mode", ["reliable", "best-effort"])
def test_gateway_throughput_lossy_link(benchmark, mode):
    def run():
        _, sender, receiver = build(reliable=(mode == "reliable"),
                                    drop_rate=0.3)
        return run_jobs(sender, receiver)

    delivered, errors = benchmark.pedantic(run, rounds=2, iterations=1)
    assert delivered + errors >= JOBS * 0.5


def test_shape_reliable_messaging_delivers_everything(report):
    _, sender, receiver = build(reliable=True, drop_rate=0.3)
    delivered, errors = run_jobs(sender, receiver)
    report("WS-RM on lossy link (30% drop)",
           jobs=JOBS, delivered=delivered, errors=errors,
           ratio=f"{delivered / JOBS:.2f}")
    assert delivered == JOBS          # every job arrives
    assert errors == 0
    # exactly once: no duplicate acks
    ids = [d.root_element.attribute_value("id")
           for d in receiver.queue_documents("done")]
    assert len(ids) == len(set(ids))


def test_shape_best_effort_surfaces_errors(report):
    _, sender, receiver = build(reliable=False, drop_rate=0.3)
    delivered, errors = run_jobs(sender, receiver)
    report("best effort on lossy link (30% drop)",
           jobs=JOBS, delivered=delivered, errors=errors)
    shape(delivered < JOBS, "a 30% drop rate should lose something")
    assert errors == JOBS - delivered  # drops become errors, not silence


def test_shape_clean_link_equivalence(report):
    _, sender, receiver = build(reliable=True, drop_rate=0.0)
    delivered, errors = run_jobs(sender, receiver)
    report("clean link", delivered=delivered, errors=errors)
    assert (delivered, errors) == (JOBS, 0)
