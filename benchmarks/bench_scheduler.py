"""E7 — queue priorities steer the scheduler (paper §2.1.1, §4.4.2).

Claim: "a message in a high priority queue may be processed before
another one stored in a queue with a lower priority, even if it has been
created more recently."  Measured: completion rank of high-priority
messages under a pre-existing low-priority backlog.
"""

import pytest

from conftest import scaled
from repro import DemaqServer

APP = """
create queue bulk kind basic mode persistent priority 0;
create queue urgent kind basic mode persistent priority 10;
create queue log kind basic mode persistent;
create rule rb for bulk
    if (//m) then do enqueue <done q="bulk"/> into log;
create rule ru for urgent
    if (//m) then do enqueue <done q="urgent"/> into log
"""

BULK = scaled(200, smoke_size=40)
URGENT = 10


def run_mixed_load():
    server = DemaqServer(APP)
    for index in range(BULK):
        server.enqueue("bulk", f"<m n='{index}'/>")
    for index in range(URGENT):
        server.enqueue("urgent", f"<m n='{index}'/>")   # arrive last
    server.run_until_idle()
    order = [d.root_element.attribute_value("q")
             for d in server.queue_documents("log")]
    return order


@pytest.mark.benchmark(group="E7-scheduler")
def test_mixed_priority_throughput(benchmark):
    order = benchmark.pedantic(run_mixed_load, rounds=2, iterations=1)
    assert len(order) == BULK + URGENT


def test_shape_urgent_jumps_the_backlog(report):
    order = run_mixed_load()
    urgent_positions = [i for i, q in enumerate(order) if q == "urgent"]
    bulk_positions = [i for i, q in enumerate(order) if q == "bulk"]
    mean_urgent = sum(urgent_positions) / len(urgent_positions)
    mean_bulk = sum(bulk_positions) / len(bulk_positions)
    report("completion rank",
           urgent_mean_rank=f"{mean_urgent:.1f}",
           bulk_mean_rank=f"{mean_bulk:.1f}",
           urgent_worst=max(urgent_positions))
    # all urgent messages finish before every bulk message processed
    # after scheduling, i.e. they occupy the first URGENT ranks
    assert max(urgent_positions) < URGENT
    assert mean_urgent < mean_bulk


def test_shape_fifo_within_priority_level(report):
    server = DemaqServer(APP)
    for index in range(20):
        server.enqueue("bulk", f"<m n='{index}'/>")
    server.run_until_idle()
    processed = [m.msg_id for m in server.live_messages("bulk")]
    report("FIFO order", first=processed[0], last=processed[-1])
    assert processed == sorted(processed)
