"""F4/replication — what a replica costs, and what a failover costs.

Two claims from DESIGN.md §9:

* **Commit latency**: ``replica-ack`` buys crash-tolerance without the
  per-commit fsync — it acknowledges once a replica holds the commit's
  WAL bytes in memory and defers the local force, so it should land
  between ``group`` (coalesced forces) and ``sync`` (force every
  commit), not above ``sync``.
* **Recovery**: killing a shard's host with ``SIGKILL`` mid-load and
  promoting its replica takes the cluster milliseconds-to-seconds, not
  minutes — and loses **zero acknowledged commits**.  The loss bound is
  a correctness property, not a performance shape: it is hard-asserted
  even in smoke mode.
"""

import os
import signal
import threading
import time

import pytest

from conftest import scaled, shape

from repro.netio import ProcessCluster
from repro.replication import ReplicaApplier, WalShipper
from repro.storage import MessageStore

COMMITS = scaled(300, smoke_size=30)
JOBS = scaled(60, smoke_size=18)

APP = """
create queue work kind basic mode persistent;
create queue done kind basic mode persistent;
create property reqID as xs:string fixed
    queue work value string(//job/@id);
create slicing byReq on reqID;
create rule crunch for work
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""


# -- commit latency: sync vs group vs replica-ack --------------------------------

class _Wire:
    """Synchronous in-process shipper↔applier loopback (no sockets)."""

    def __init__(self):
        self.appliers = {}
        self.shipper = None

    def send(self, replica, frame):
        applier = self.appliers.get(replica)
        if applier is None:
            return False
        reply = applier.receive(frame)
        if reply is not None and self.shipper is not None:
            if reply.get("op") == "fence":
                self.shipper.on_fence(reply)
            else:
                self.shipper.on_ack(reply)
        return True


def commit_one(store, index):
    txn = store.begin()
    txn.insert_message("q", f"<m n='{index}'/>".encode(), {}, [])
    store.commit(txn)


def commit_latencies(store):
    """Per-commit wall-clock (seconds), sorted ascending."""
    samples = []
    for index in range(COMMITS):
        start = time.perf_counter()
        commit_one(store, index)
        samples.append(time.perf_counter() - start)
    return sorted(samples)


def measure_policy(tmp_path, policy):
    store = MessageStore(str(tmp_path / policy), durability=policy)
    applier = None
    if policy == "replica-ack":
        wire = _Wire()
        applier = ReplicaApplier("p", "r", standby_dir=str(
            tmp_path / "replica-ack-standby"))
        wire.appliers["r"] = applier
        shipper = WalShipper("p", store.wal, ["r"], wire.send)
        wire.shipper = shipper
        store.group_commit.shipper = shipper
    samples = commit_latencies(store)
    if applier is not None:
        applier.flush()
    store.close()
    return {"p50_ms": samples[len(samples) // 2] * 1000.0,
            "p99_ms": samples[min(len(samples) - 1,
                                  int(len(samples) * 0.99))] * 1000.0}


@pytest.mark.bench
def test_commit_latency_sync_vs_group_vs_replica_ack(tmp_path, report):
    results = {}
    for policy in ("sync", "group", "replica-ack"):
        results[policy] = measure_policy(tmp_path, policy)
        report(policy, commits=COMMITS,
               p50_ms=round(results[policy]["p50_ms"], 3),
               p99_ms=round(results[policy]["p99_ms"], 3))
    # replica-ack must not cost more than sync: it replaced the
    # per-commit fsync with an in-memory replica acknowledgement
    # (generous factor — on tmpfs-like hosts fsync is nearly free)
    shape(results["replica-ack"]["p50_ms"]
          <= results["sync"]["p50_ms"] * 1.5,
          f"replica-ack p50 {results['replica-ack']['p50_ms']:.3f}ms "
          f"above sync {results['sync']['p50_ms']:.3f}ms")


# -- time-to-recover + zero acknowledged-commit loss -----------------------------

def enqueue_tracked(cluster, index, acked, timeout=5.0):
    settled = threading.Event()
    outcome = {}

    def on_delivered():
        outcome["ok"] = True
        settled.set()

    def on_failed(marker):
        outcome["marker"] = marker
        settled.set()

    cluster.enqueue("work", f'<job id="j{index}"/>',
                    on_delivered=on_delivered, on_failed=on_failed)
    deadline = time.monotonic() + timeout
    while not settled.is_set() and time.monotonic() < deadline:
        cluster.pump()
        time.sleep(0.002)
    if outcome.get("ok"):
        acked.add(f"j{index}")
    return outcome


@pytest.mark.bench
def test_failover_recovers_fast_and_loses_nothing(tmp_path, report):
    with ProcessCluster(APP, nodes=3,
                        data_dir=str(tmp_path / "cluster"),
                        server_kwargs={"durability": "replica-ack"},
                        replication=True, replicas=1) as cluster:
        acked = set()
        for index in range(JOBS):
            enqueue_tracked(cluster, index, acked)
        cluster.wait_idle()
        depths = cluster.shard_depths("done")
        victim = max(depths, key=depths.get)

        killed_at = time.perf_counter()
        os.kill(cluster.workers[victim].proc.pid, signal.SIGKILL)
        cluster.workers[victim].proc.wait()
        cluster.check()                       # detect crash + promote
        promoted_at = time.perf_counter()
        # recovery is complete when the dead shard confirms a write
        # again (under its old name, served by the promoted replica)
        index = JOBS
        while True:
            outcome = enqueue_tracked(cluster, index, acked)
            index += 1
            if outcome.get("ok"):
                break
            assert index < JOBS + 50, "promoted shard never confirmed"
        recovered_at = time.perf_counter()
        for _ in range(10):                   # post-failover load
            enqueue_tracked(cluster, index, acked)
            index += 1
        cluster.wait_idle()

        done = {text.split('"')[1]
                for text in cluster.queue_texts("done")}
        missing = acked - done
        # the headline correctness bound — ALWAYS hard-asserted
        assert not missing, \
            f"acknowledged commits lost across failover: {missing}"
        assert cluster.metrics.values()[
            "demaq_cluster_failovers_total"] == 1

        promote_ms = (promoted_at - killed_at) * 1000.0
        recover_ms = (recovered_at - killed_at) * 1000.0
        report("failover", jobs=index, acked=len(acked),
               promote_ms=round(promote_ms, 1),
               recover_ms=round(recover_ms, 1),
               lost_acked_commits=len(missing))
        shape(recover_ms < 30_000.0,
              f"failover took {recover_ms:.0f}ms")
        cluster.drain()
