"""E13 — MVCC snapshot reads vs 2PL on the scan/correlation path.

Claim (DESIGN.md §8): tagging index entries with create/delete LSNs and
reading at a begin-time snapshot removes all read locks, so correlation
rules that scan *other* queues stop deadlocking against each other's
processed-marks.  Workload: two queues at depth ~2000 with live writers
appending, and per-queue worker pools (the partitioned-deployment
shape) whose rules each scan the opposite queue — the classic ABBA
pattern: S on the scanned queue for the whole scan, then IX on the own
queue for the processed-mark, in opposite orders on the two sides.

Under 2PL nearly every concurrently processed left/right pair
deadlocks; the victim's entire scan is wasted CPU (the cycle is only
detected at the IX request, after the scan), and retries often
re-collide because the opposite side is scanning continuously.  Under
MVCC the scans take no locks at all, so the bench *hard-asserts* zero
deadlock requeues — by construction, not by timing — and the shape
assertion is the paper-style throughput win (>= 2x at real sizes;
measured ~3x here).
"""

import threading
from time import perf_counter

from conftest import scaled, shape
from repro import DemaqServer

APP = """
create queue left kind basic mode transient;
create queue right kind basic mode transient;
create rule lprobe for left
    if (count(qs:queue("right")//n) < 0) then do enqueue <never/> into left;
create rule rprobe for right
    if (count(qs:queue("left")//n) < 0) then do enqueue <never/> into right;
"""

DEPTH = scaled(2000, smoke_size=80)       # preloaded messages per queue
PICKS = scaled(150, smoke_size=30)        # messages processed per leg
WRITES = scaled(200, smoke_size=10)       # live enqueues per writer
READERS_PER_SIDE = 3
WRITERS = 2
FANOUT = 8                                # <n> elements per probe body


def build_server(mvcc):
    server = DemaqServer(APP, mvcc=mvcc, lock_timeout=30.0)
    # every scan touches the whole corpus: keep all bodies parse-cached
    server.store.parse_cache_capacity = DEPTH * 4
    ids = {"left": [], "right": []}
    for index in range(DEPTH * 2):
        queue = "left" if index % 2 else "right"
        body = "<probe>" + "".join(
            f"<n>{index + k}</n>" for k in range(FANOUT)) + "</probe>"
        ids[queue].append(server.enqueue(queue, body))
    return server, ids


def drive(server, ids):
    """Per-queue readers process PICKS messages; writers append live."""
    stop = threading.Event()

    def reader(my_ids):
        for msg_id in my_ids:
            while not server.executor.process_message(msg_id):
                pass                       # aborted (deadlock): retry

    def writer(lane):
        for index in range(WRITES):
            if stop.is_set():
                return
            server.enqueue("left" if (lane + index) % 2 else "right",
                           "<w/>")

    work = []
    per_reader = max(1, PICKS // 2 // READERS_PER_SIDE)
    for queue in ("left", "right"):
        for rank in range(READERS_PER_SIDE):
            work.append(ids[queue][rank * per_reader:
                                   (rank + 1) * per_reader])
    threads = [threading.Thread(target=reader, args=(chunk,))
               for chunk in work] \
        + [threading.Thread(target=writer, args=(lane,))
           for lane in range(WRITERS)]
    started = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads[:len(work)]:
        thread.join()
    stop.set()
    for thread in threads[len(work):]:
        thread.join()
    elapsed = perf_counter() - started
    return sum(len(chunk) for chunk in work), elapsed


def test_shape_snapshot_reads_beat_2pl_with_live_writers(report):
    twopl, twopl_ids = build_server(mvcc=False)
    processed_2pl, t_2pl = drive(twopl, twopl_ids)
    mvcc, mvcc_ids = build_server(mvcc=True)
    processed_mvcc, t_mvcc = drive(mvcc, mvcc_ids)

    assert processed_2pl == processed_mvcc > 0
    # the headline invariant, by construction rather than by timing:
    # snapshot reads take no locks, so reader/writer deadlocks are gone
    assert mvcc.executor.stats.deadlock_retries == 0
    assert mvcc.locks.deadlocks == 0

    tput_2pl = processed_2pl / t_2pl
    tput_mvcc = processed_mvcc / t_mvcc
    report(f"{2 * READERS_PER_SIDE} readers over depth {DEPTH * 2}, "
           f"{WRITERS} live writers",
           mvcc_msgs_per_s=f"{tput_mvcc:.1f}",
           twopl_msgs_per_s=f"{tput_2pl:.1f}",
           speedup=f"{tput_mvcc / tput_2pl:.2f}x",
           twopl_deadlock_retries=twopl.executor.stats.deadlock_retries,
           twopl_backoffs=twopl.executor.stats.retry_backoffs,
           twopl_lock_waits=twopl.locks.waits,
           mvcc_lock_waits=mvcc.locks.waits)
    shape(tput_mvcc >= 2 * tput_2pl,
          "snapshot reads should at least double reader throughput "
          "under cross-queue correlation with live writers")


def test_shape_dead_versions_do_not_accumulate(report):
    """Version GC rides the commit path: once probes are processed and
    retention deletes them, no dead version outlives the horizon."""
    server, ids = build_server(mvcc=True)
    drive(server, ids)
    reclaimed = server.collect_garbage()
    report("version GC after drain",
           reclaimed=reclaimed,
           purged=server.store.stats.purged_versions,
           dead_backlog=len(server.store._dead),
           active_snapshots=len(server.store._snapshots))
    assert reclaimed > 0
    assert len(server.store._dead) == 0
    assert len(server.store._snapshots) == 0
