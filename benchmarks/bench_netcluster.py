"""F3/netcluster — process-per-node beats thread-per-node on CPU work.

The thread-per-node :class:`ClusterDriver` overlaps I/O but serializes
rule execution on the GIL; the :class:`ProcessCluster` runs each node
in its own interpreter, so CPU-bound rule work scales with cores while
coordination rides real sockets (DESIGN.md §2).

Methodology: an **open-loop** load generator emits jobs at a fixed
arrival rate (arrival times are scheduled up front, never pushed back
by a slow system — no coordinated omission).  Each job's rule burns
CPU in XQuery and replies through an outgoing gateway addressed at the
generator, which stamps the completion.  Latency is measured from the
*scheduled* arrival, throughput from first arrival to last completion.

The acceptance bar (ISSUE 6): 4 worker processes sustain >= 1.5x the
throughput of the 4-thread driver on the same workload, with identical
replies.
"""

import os
import threading
import time
import warnings

import pytest

from conftest import scaled, shape

from repro import ClusterServer
from repro.network import parse_envelope
from repro.netio import ProcessCluster
from repro.queues import RealClock

#: XQuery loop iterations per message — the CPU knob (~20ms at 4000).
LOOP = scaled(4000, smoke_size=400)
MESSAGES = scaled(160, smoke_size=12)
#: Offered arrival rate (msg/s), above single-interpreter capacity so
#: the generator exposes queueing delay instead of hiding it.
RATE = scaled(120, smoke_size=150)
NODES = 4

REPLY_ENDPOINT = "demaq://gate/loadgen"

APP = f"""
create queue work kind basic mode persistent;
create queue reply kind outgoingGateway mode persistent
    endpoint "{REPLY_ENDPOINT}";
create property reqID as xs:string fixed
    queue work value string(//job/@id);
create slicing byReq on reqID;
create rule crunch for work
    if (//job) then do enqueue
        <r id="{{string(//job/@id)}}"
           v="{{sum(for $i in 1 to {LOOP} return $i * $i mod 97)}}"/>
        into reply
"""


def percentile(latencies, fraction):
    index = min(len(latencies) - 1, int(len(latencies) * fraction))
    return latencies[index]


def open_loop(enqueue, pump, completions):
    """Drive the fixed-rate arrival schedule; return throughput + tails.

    *completions* maps job id -> completion time, filled behind our
    back by the reply handler whenever *pump* (or a driver thread)
    delivers gateway replies.
    """
    start = time.perf_counter() + 0.05
    scheduled = {}
    for index in range(MESSAGES):
        due = start + index / RATE
        while time.perf_counter() < due:
            pump()
            time.sleep(0.0002)
        job_id = f"j{index}"
        scheduled[job_id] = due          # latency from the *schedule*
        enqueue(f'<job id="{job_id}"/>')
    deadline = time.perf_counter() + 300.0
    while len(completions) < MESSAGES and time.perf_counter() < deadline:
        pump()
        time.sleep(0.0005)
    assert len(completions) == MESSAGES, \
        f"only {len(completions)}/{MESSAGES} replies arrived"
    latencies = sorted(completions[job_id] - scheduled[job_id]
                       for job_id in scheduled)
    span = max(completions.values()) - start
    return {"throughput": MESSAGES / span,
            "p50_ms": latencies[len(latencies) // 2] * 1000.0,
            "p99_ms": percentile(latencies, 0.99) * 1000.0}


def reply_recorder(completions, replies):
    def handler(envelope, source):
        body, _ = parse_envelope(envelope)
        root = body.root_element
        completions[root.attribute_value("id")] = time.perf_counter()
        replies[root.attribute_value("id")] = root.attribute_value("v")
    return handler


def run_thread_cluster():
    """4 node threads, one interpreter: the ClusterDriver baseline."""
    completions, replies = {}, {}
    cluster = ClusterServer(APP, nodes=NODES, clock=RealClock(),
                            real_time=True)
    cluster.network.register(REPLY_ENDPOINT,
                             reply_recorder(completions, replies))
    finished = threading.Event()

    def drive():
        # the real-time driver quiesces between arrivals; re-enter
        # until the load generator is done with it
        while not finished.is_set():
            cluster.run_until_idle()
            time.sleep(0.001)

    driver_thread = threading.Thread(target=drive, daemon=True)
    driver_thread.start()
    try:
        result = open_loop(lambda body: cluster.enqueue("work", body),
                           lambda: None, completions)
    finally:
        finished.set()
        cluster.request_stop()
        driver_thread.join(timeout=30.0)
        cluster.close()
    return result, replies


def run_process_cluster():
    """4 worker processes over TCP: the netio scale-out path."""
    completions, replies = {}, {}
    with ProcessCluster(APP, nodes=NODES) as cluster:
        cluster.transport.register(REPLY_ENDPOINT,
                                   reply_recorder(completions, replies))
        result = open_loop(lambda body: cluster.enqueue("work", body),
                           cluster.pump, completions)
        cluster.drain()
    return result, replies


@pytest.mark.bench
def test_process_cluster_beats_thread_driver(report):
    thread_stats, thread_replies = run_thread_cluster()
    report("threads-4", throughput=round(thread_stats["throughput"], 1),
           p50_ms=round(thread_stats["p50_ms"], 1),
           p99_ms=round(thread_stats["p99_ms"], 1),
           rate_offered=RATE, messages=MESSAGES, loop=LOOP)

    process_stats, process_replies = run_process_cluster()
    report("processes-4", throughput=round(process_stats["throughput"], 1),
           p50_ms=round(process_stats["p50_ms"], 1),
           p99_ms=round(process_stats["p99_ms"], 1),
           rate_offered=RATE, messages=MESSAGES, loop=LOOP)

    # both backends computed identical replies for every job
    assert process_replies == thread_replies
    assert len(process_replies) == MESSAGES

    speedup = process_stats["throughput"] / thread_stats["throughput"]
    cores = os.cpu_count() or 1
    report("speedup", processes_over_threads=round(speedup, 2), cores=cores)
    # The headline claim — real parallelism >= 1.5x the GIL-bound
    # driver — needs cores to parallelize over; on a 1-core host both
    # backends share the same cycle budget and only socket overhead
    # differs, so the claim is asserted where it is physically possible.
    if cores >= 4:
        shape(speedup >= 1.5,
              f"process-cluster speedup only {speedup:.2f}x on "
              f"{cores} cores")
    else:
        warnings.warn(f"[host] {cores} core(s): GIL-vs-process speedup "
                      f"not asserted (measured {speedup:.2f}x)")
        # even without spare cores, processes must stay in the same
        # league — sockets must not collapse throughput
        shape(speedup >= 0.3,
              f"process cluster collapsed to {speedup:.2f}x of threads")
    shape(process_stats["p99_ms"] >= process_stats["p50_ms"] > 0.0,
          "latency percentiles out of order")
