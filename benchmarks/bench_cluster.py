"""F2/cluster — sharded scale-out throughput (DESIGN.md §6).

A uniform multi-queue audit workload: orders and payments, both sliced
by customer, whose rules correlate against their queues (dedup /
orphan-payment matching).  Per-message cost grows with shard depth, so
partitioning the slices over N nodes cuts the scan scope N-fold — the
core scale-out claim of the cluster runtime.

The acceptance bar: a 4-node sharded cluster beats a single
``DemaqServer`` by >= 1.5x on the same workload, with identical audit
output.
"""

import pytest

from conftest import scaled, shape, timed

from repro import ClusterServer, DemaqServer

APP = """
create queue orders kind basic mode persistent;
create queue payments kind basic mode persistent;
create queue audit kind basic mode persistent;
create property customer as xs:string fixed
    queue orders, payments value //customerID;
create slicing byCustomer on customer;
create rule dedupOrder for orders
    if (count(qs:queue()[//orderID = qs:message()//orderID]) = 1) then
        do enqueue <audited kind="order">{//orderID}</audited> into audit;
create rule matchPayment for payments
    if (not(qs:queue("orders")[//orderID = qs:message()//orderID])) then
        do enqueue <audited kind="orphan">{//orderID}</audited> into audit
"""

MESSAGES = scaled(240, smoke_size=60)
CUSTOMERS = scaled(40, smoke_size=10)


def workload():
    for index in range(MESSAGES):
        customer = f"cust-{index % CUSTOMERS}"
        if index % 3 == 2:
            yield ("payments",
                   f"<payment><orderID>p{index}</orderID>"
                   f"<customerID>{customer}</customerID></payment>")
        else:
            yield ("orders",
                   f"<order><orderID>o{index}</orderID>"
                   f"<customerID>{customer}</customerID></order>")


def run_single():
    server = DemaqServer(APP)
    for queue, body in workload():
        server.enqueue(queue, body)
    server.run_until_idle()
    return server.store.queue_depth("audit")


def run_sharded(nodes):
    cluster = ClusterServer(APP, nodes=nodes)
    for queue, body in workload():
        cluster.enqueue(queue, body)
    cluster.run_until_idle()
    return cluster.queue_depth("audit")


@pytest.mark.bench
def test_cluster_scaling_beats_single_server(report):
    base_seconds, base_audit = timed(run_single, repeat=2)
    report("single", seconds=round(base_seconds, 3),
           rate=int(MESSAGES / base_seconds), audit=base_audit)

    rates = {}
    for nodes in (1, 2, 4):
        seconds, audit = timed(run_sharded, nodes, repeat=2)
        rates[nodes] = MESSAGES / seconds
        report(f"sharded-{nodes}", seconds=round(seconds, 3),
               rate=int(rates[nodes]),
               speedup=round(base_seconds / seconds, 2), audit=audit)
        # sharding must not change the audit outcome
        assert audit == base_audit

    # 1 node through the cluster machinery costs < 50% overhead
    shape(rates[1] >= (MESSAGES / base_seconds) / 1.5,
          "cluster-of-1 overhead above 50%")
    # the headline claim: 4 sharded nodes >= 1.5x one server
    speedup = rates[4] / (MESSAGES / base_seconds)
    shape(speedup >= 1.5, f"4-node speedup only {speedup:.2f}x")
    # and scaling is monotone
    shape(rates[4] > rates[2] > rates[1] * 0.9,
          "scaling not monotone across 1/2/4 nodes")


@pytest.mark.bench
def test_durable_shards_batch_and_group_commit(tmp_path, report):
    """E12 on the cluster: 4 durable shards, per-message fsync vs
    batched execution over group commit — same audit output, a fraction
    of the log forces, driven concurrently by the cluster driver."""
    counter = [0]

    def run(**server_kwargs):
        counter[0] += 1
        cluster = ClusterServer(APP, nodes=4,
                                data_dir=str(tmp_path / f"c{counter[0]}"),
                                **server_kwargs)
        for queue, body in workload():
            cluster.enqueue(queue, body)
        cluster.run_until_idle()
        audit = cluster.queue_depth("audit")
        forces = sum(server.store.wal.stats().flushes
                     for server in cluster.servers.values())
        for server in cluster.servers.values():
            server.close()
        return audit, forces

    sync_seconds, (sync_audit, sync_forces) = timed(
        run, durability="sync", repeat=2)
    group_seconds, (group_audit, group_forces) = timed(
        run, durability="group", batch_size=8, repeat=2)
    report("durable-4-node",
           sync_s=round(sync_seconds, 3), sync_forces=sync_forces,
           group_s=round(group_seconds, 3), group_forces=group_forces,
           speedup=round(sync_seconds / group_seconds, 2))
    # batching must not change the audit outcome ...
    assert group_audit == sync_audit
    # ... and must collapse the per-shard force count (ingest commits
    # stay one-per-message on both sides; processing batches 8-fold)
    assert group_forces < sync_forces * 0.7


@pytest.mark.bench
def test_sharding_balances_queue_depth(report):
    cluster = ClusterServer(APP, nodes=4)
    for queue, body in workload():
        cluster.enqueue(queue, body)
    cluster.run_until_idle()
    depths = cluster.shard_depths("orders")
    report("orders-shards", **{node: depth
                               for node, depth in depths.items()})
    assert sum(depths.values()) == sum(
        1 for queue, _ in workload() if queue == "orders")
    # every node carries a share, and no node carries a majority
    shape(all(depth > 0 for depth in depths.values()),
          "a node carries no shard at all")
    shape(max(depths.values()) < 0.75 * sum(depths.values()),
          "one node carries a majority of the queue")
