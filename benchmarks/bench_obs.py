"""E13/obs — the telemetry plane costs ≲3% when on, ~nothing when off.

The observability tentpole's budget (ISSUE 7): with ``DEMAQ_OBS`` on,
per-rule timing histograms, lifecycle spans, and registry counters may
cost at most 3% of end-to-end throughput on the procurement workload;
with it off, the remaining cost is a handful of always-on semantic
counters (the same ints the engine kept before the registry existed).

Measurement notes: per-run noise on a shared host easily exceeds the
budget being asserted, so each trial interleaves the two arms in
alternating order (cancelling warm-up/position bias), takes best-of-N
per arm, and the assertion uses the minimum overhead over a few trials
— noise only ever inflates the ratio, so the minimum is the honest
upper-bound estimate of the true instrumentation cost.
"""

import gc
import time

import pytest

from conftest import scaled, shape
from repro import DemaqServer
from repro.obs import MetricsRegistry, Tracer, flatten_snapshot
from repro.workloads import procurement_application, request_stream

REQUESTS = scaled(60, smoke_size=6)
ROUNDS = scaled(10, smoke_size=2)
TRIALS = 3
BUDGET = 0.03

_REPORT_PREFIXES = ("demaq_executor_", "demaq_scheduler_", "demaq_rule_")


def drive(server) -> int:
    for _, _, body in request_stream(REQUESTS):
        server.enqueue("crm", body)
    server.run_until_idle()
    return server.executor.stats.messages_processed


def make_server(enabled: bool) -> DemaqServer:
    return DemaqServer(procurement_application(),
                       metrics=MetricsRegistry(enabled=enabled),
                       tracer=Tracer(node="bench", enabled=enabled))


def timed_drive(enabled: bool) -> tuple[float, int]:
    server = make_server(enabled)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        processed = drive(server)
        return time.perf_counter() - started, processed
    finally:
        gc.enable()


def measure_overhead() -> tuple[float, float, float]:
    """One trial: interleaved best-of-ROUNDS for each arm."""
    best = {False: float("inf"), True: float("inf")}
    for round_index in range(ROUNDS):
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for arm in order:
            elapsed, processed = timed_drive(arm)
            assert processed == REQUESTS * 6
            best[arm] = min(best[arm], elapsed)
    return best[True] / best[False] - 1.0, best[False], best[True]


def test_telemetry_overhead_within_budget(report):
    timed_drive(False)      # warm caches outside the measurement
    timed_drive(True)
    overhead, disabled_s, enabled_s = measure_overhead()
    trials = 1
    while overhead > BUDGET and trials < TRIALS:
        overhead_retry, disabled_retry, enabled_retry = measure_overhead()
        if overhead_retry < overhead:
            overhead = overhead_retry
            disabled_s, enabled_s = disabled_retry, enabled_retry
        trials += 1

    server = make_server(True)
    drive(server)
    flat = flatten_snapshot(server.metrics.snapshot())
    report("telemetry-overhead",
           requests=REQUESTS,
           trials=trials,
           disabled_s=round(disabled_s, 6),
           enabled_s=round(enabled_s, 6),
           overhead_pct=round(overhead * 100, 2),
           metrics={key: flat[key] for key in sorted(flat)
                    if key.startswith(_REPORT_PREFIXES)})
    shape(overhead <= BUDGET,
          f"telemetry overhead {overhead:.1%} exceeds the 3% budget")


def test_disabled_plane_still_counts_semantics(report):
    server = make_server(False)
    processed = drive(server)
    assert processed == REQUESTS * 6
    # semantic statistics stay live (they are the engine's own ints)...
    assert server.executor.stats.messages_processed == processed
    snapshot = server.metrics.snapshot()
    assert snapshot["demaq_executor_messages_processed_total"][
        "series"][0]["value"] == processed
    # ...but no timing histograms were recorded and no spans kept
    assert "demaq_rule_seconds" not in snapshot
    assert "demaq_store_commit_seconds" not in snapshot
    assert server.tracer.spans() == []
    report("disabled-plane", processed=processed,
           histogram_families=sum(
               1 for family in snapshot.values()
               if family.get("kind") == "histogram"))
