"""E6 — declarative retention decouples cleanup from processing
(paper §2.3.3).

Claim: "physical cleanup is decoupled from message processing and can be
done separately, for example in times of low system load".  The baseline
is explicit inline deletion (the manual-memory-management analogue):
every message pays its deletion cost on the processing path.
"""

import pytest

from conftest import scaled, shape, timed
from repro import DemaqServer
from repro.workloads import procurement_application, request_stream

MESSAGES = scaled(40, smoke_size=8)


def process_with_deferred_gc(requests=MESSAGES):
    server = DemaqServer(procurement_application())
    for _, _, body in request_stream(requests):
        server.enqueue("crm", body)
    foreground = timed(server.run_until_idle, repeat=1)[0]
    processed = server.executor.stats.messages_processed
    gc_time = timed(server.collect_garbage, repeat=1)[0]
    return server, foreground, gc_time, processed


def process_with_inline_deletion(requests=MESSAGES):
    """Explicit-deletion baseline: GC runs inside the processing loop."""
    server = DemaqServer(procurement_application())
    for _, _, body in request_stream(requests):
        server.enqueue("crm", body)

    def drain():
        while server.step():
            server.collect_garbage()     # deletion on the critical path

    foreground = timed(drain, repeat=1)[0]
    return server, foreground, server.executor.stats.messages_processed


@pytest.mark.benchmark(group="E6-retention")
def test_processing_with_deferred_gc(benchmark):
    def run():
        return process_with_deferred_gc()[3]

    processed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == MESSAGES * 6


@pytest.mark.benchmark(group="E6-retention")
def test_processing_with_inline_deletion(benchmark):
    def run():
        return process_with_inline_deletion()[2]

    processed = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == MESSAGES * 6


def test_shape_deferred_gc_off_critical_path(report):
    _, fg_deferred, gc_time, processed_deferred = process_with_deferred_gc()
    _, fg_inline, processed_inline = process_with_inline_deletion()
    report("foreground time",
           deferred_s=f"{fg_deferred:.4f}",
           inline_s=f"{fg_inline:.4f}",
           deferred_gc_s=f"{gc_time:.4f}")
    # same business outcome either way
    assert processed_deferred == processed_inline == MESSAGES * 6
    # Deferring cleanup must not cost foreground time (one idle-time GC
    # vs one GC per processed message on the critical path).
    shape(fg_deferred <= fg_inline * 1.05,
          "deferred GC should stay off the critical path")


def test_shape_gc_runs_decoupled_from_processing(report):
    server_deferred = process_with_deferred_gc()[0]
    server_inline = process_with_inline_deletion()[0]
    report("gc invocations",
           deferred=server_deferred.store.stats.gc_runs,
           inline=server_inline.store.stats.gc_runs)
    # the deferred design runs cleanup once, at a time of its choosing;
    # explicit deletion pays it on every processing step
    assert server_deferred.store.stats.gc_runs == 1
    assert server_inline.store.stats.gc_runs >= MESSAGES


def test_shape_gc_reclaims_only_unretained(report):
    server = process_with_deferred_gc()[0]
    # after the cleanup rules reset every request slice, GC empties the
    # store except the unreset offers... which were reset too; so the
    # remaining live messages are exactly the unprocessed ones (none).
    remaining = server.store.message_count()
    report("post-GC store size", remaining=remaining)
    assert remaining == 0
