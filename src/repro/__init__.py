"""Demaq: declarative XML message processing (CIDR 2007 reproduction).

Public API::

    from repro import DemaqServer, compile_application

    server = DemaqServer('''
        create queue inbox kind basic mode persistent;
        create queue outbox kind basic mode persistent;
        create rule reply for inbox
            if (//ping) then do enqueue <pong/> into outbox
    ''')
    server.enqueue("inbox", "<ping/>")
    server.run_until_idle()
    server.queue_texts("outbox")     # -> ['<pong/>']

Scale-out: the same application runs sharded over N nodes behind the
:class:`ClusterServer` facade (consistent-hash partitioning, owner
routing, concurrent thread-per-node driving — DESIGN.md §6)::

    cluster = ClusterServer(source, nodes=4)
    cluster.enqueue("inbox", "<ping/>")
    cluster.run_until_idle()

See DESIGN.md for the system inventory and its §5 for the
paper-claim -> benchmark mapping.
"""

from .cluster import (ClusterDriver, ClusterServer, HashRing,
                      run_cluster_concurrent)
from .engine import DemaqServer, run_cluster
from .network import Network
from .obs import MetricsRegistry, Tracer, render_prometheus
from .qdl import Application, ValidationError, compile_application, parse_qdl
from .queues import Message, RealClock, VirtualClock
from .storage import MessageStore
from .xmldm import Document, QName, XMLParseError, parse, serialize
from .xquery import XQueryError, compile_expression, evaluate_expression

__version__ = "1.0.0"

__all__ = [
    "DemaqServer", "run_cluster",
    "ClusterDriver", "ClusterServer", "HashRing", "run_cluster_concurrent",
    "Network",
    "MetricsRegistry", "Tracer", "render_prometheus",
    "Application", "ValidationError", "compile_application", "parse_qdl",
    "Message", "RealClock", "VirtualClock",
    "MessageStore",
    "Document", "QName", "XMLParseError", "parse", "serialize",
    "XQueryError", "compile_expression", "evaluate_expression",
    "__version__",
]
