"""A BPEL-style engine with per-instance runtime contexts (paper §2.1).

The paper contrasts Demaq's everything-is-a-message state model with
BPEL/XL engines where "instance-local variables can be used for storing
state information.  Contexts ... have to be kept for each active process
instance, which leads to scalability issues if the number of processes is
large.  Some execution systems try to overcome this problem by
serializing data (dehydration) of 'stale' instances" — the Oracle BPEL
dehydration store.

This baseline implements exactly that architecture: every process
instance owns a mutable context of XML variable bindings; at most
``max_resident`` contexts stay in memory, the rest are *dehydrated*
(serialized to the dehydration store) and *rehydrated* (deserialized, all
variables re-parsed) whenever a message arrives for them.
``bench_state_scaling`` measures the cost against Demaq's flat message
model (E5).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from ..xmldm import Document, parse, serialize


@dataclass
class ProcessContext:
    """One instance's runtime state: named XML variable bindings."""

    instance_id: str
    variables: dict[str, Document] = field(default_factory=dict)
    step: int = 0


class DehydrationStore:
    """Serialized contexts, as an Oracle-style dehydration table."""

    def __init__(self) -> None:
        self._rows: dict[str, str] = {}
        self.dehydrations = 0
        self.rehydrations = 0
        self.bytes_written = 0

    def dehydrate(self, context: ProcessContext) -> None:
        payload = json.dumps({
            "step": context.step,
            "variables": {name: serialize(doc)
                          for name, doc in context.variables.items()},
        })
        self._rows[context.instance_id] = payload
        self.dehydrations += 1
        self.bytes_written += len(payload)

    def rehydrate(self, instance_id: str) -> ProcessContext:
        payload = json.loads(self._rows.pop(instance_id))
        self.rehydrations += 1
        context = ProcessContext(instance_id)
        context.step = payload["step"]
        # every variable must be re-parsed into a live tree
        context.variables = {name: parse(text)
                             for name, text in payload["variables"].items()}
        return context

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._rows


#: handler(context, message) -> finished?
StepHandler = Callable[[ProcessContext, Document], bool]


class BPELLikeEngine:
    """Correlation-set dispatch onto per-instance contexts."""

    def __init__(self, handler: StepHandler,
                 correlate: Callable[[Document], str],
                 max_resident: int = 100):
        self.handler = handler
        self.correlate = correlate
        self.max_resident = max_resident
        self.store = DehydrationStore()
        self._resident: dict[str, ProcessContext] = {}
        self._lru: list[str] = []
        self.messages_handled = 0
        self.completed = 0

    def active_instances(self) -> int:
        return len(self._resident) + len(self.store._rows)

    def deliver(self, message: str | Document) -> None:
        document = parse(message) if isinstance(message, str) else message
        instance_id = self.correlate(document)
        context = self._acquire(instance_id)
        finished = self.handler(context, document)
        self.messages_handled += 1
        if finished:
            self._release(instance_id, drop=True)
            self.completed += 1
        else:
            self._release(instance_id, drop=False)

    def _acquire(self, instance_id: str) -> ProcessContext:
        context = self._resident.get(instance_id)
        if context is not None:
            self._lru.remove(instance_id)
            self._lru.append(instance_id)
            return context
        if instance_id in self.store:
            context = self.store.rehydrate(instance_id)
        else:
            context = ProcessContext(instance_id)
        self._admit(instance_id, context)
        return context

    def _admit(self, instance_id: str, context: ProcessContext) -> None:
        while len(self._resident) >= self.max_resident and self._lru:
            victim = self._lru.pop(0)
            self.store.dehydrate(self._resident.pop(victim))
        self._resident[instance_id] = context
        self._lru.append(instance_id)

    def _release(self, instance_id: str, drop: bool) -> None:
        if drop:
            self._resident.pop(instance_id, None)
            if instance_id in self._lru:
                self._lru.remove(instance_id)
