"""Comparison baselines reproducing the architectures the paper argues
against: BPEL-style per-instance contexts with a dehydration store (§2.1)
and the imperative middleware transformation chain (§1)."""

from .bpel_like import BPELLikeEngine, DehydrationStore, ProcessContext
from .imperative import (ImperativePipeline, dict_to_rows, dict_to_xml,
                         rows_to_dict, xml_to_dict)

__all__ = [
    "BPELLikeEngine", "DehydrationStore", "ProcessContext",
    "ImperativePipeline", "dict_to_rows", "dict_to_xml", "rows_to_dict",
    "xml_to_dict",
]
