"""The middleware "transformation chain" baseline (paper §1).

"An incoming message travels through the various layers: The XML body of
the message is transformed into the middleware's representation, again
transformed into the programming language's representation, with further
transformations thrown in as other components such as relational DBMSs
are accessed.  Delivering a result requires a reverse traversal of this
'transformation chain'."

This baseline makes that chain concrete and measurable: each tier
serializes the message out of the previous representation and parses it
into its own (XML text ⇄ DOM ⇄ dict ⇄ ORM rows).  The business logic in
the middle is the same logic a Demaq rule expresses directly over the
stored XML.  ``bench_transformation_chain`` (E8) sweeps the tier count.
"""

from __future__ import annotations

from typing import Callable

from ..xmldm import Document, Element, Text, parse, serialize


def xml_to_dict(document: Document) -> dict:
    """Tier transformation: DOM → middleware objects."""
    root = document.root_element

    def convert(element: Element):
        children = element.child_elements()
        if not children:
            return element.text
        out: dict = {}
        for child in children:
            name = child.name.local_name
            value = convert(child)
            if name in out:
                existing = out[name]
                if not isinstance(existing, list):
                    out[name] = [existing]
                out[name].append(value)
            else:
                out[name] = value
        return out

    return {root.name.local_name: convert(root)} if root is not None else {}


def dict_to_xml(data: dict) -> Document:
    """Tier transformation: middleware objects → DOM."""
    def convert(name: str, value) -> list[Element]:
        if isinstance(value, list):
            return [e for item in value for e in convert(name, item)]
        element = Element(name)
        if isinstance(value, dict):
            for key, sub in value.items():
                for child in convert(key, sub):
                    element.append(child)
        elif value is not None and value != "":
            element.append(Text(str(value)))
        return [element]

    document = Document()
    for name, value in data.items():
        for element in convert(name, value):
            document.append(element)
    return document


def dict_to_rows(data: dict, prefix: str = "") -> list[tuple[str, str]]:
    """Tier transformation: objects → flattened ORM-style rows."""
    rows: list[tuple[str, str]] = []
    for key, value in data.items():
        path = f"{prefix}/{key}"
        if isinstance(value, dict):
            rows.extend(dict_to_rows(value, path))
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, dict):
                    rows.extend(dict_to_rows(item, f"{path}[{index}]"))
                else:
                    rows.append((f"{path}[{index}]", str(item)))
        else:
            rows.append((path, "" if value is None else str(value)))
    return rows


def rows_to_dict(rows: list[tuple[str, str]]) -> dict:
    """Tier transformation: rows → objects (reverse traversal)."""
    out: dict = {}
    for path, value in rows:
        parts = [p.split("[")[0] for p in path.strip("/").split("/")]
        cursor = out
        for part in parts[:-1]:
            nxt = cursor.get(part)
            if not isinstance(nxt, dict):
                nxt = {}
                cursor[part] = nxt
            cursor = nxt
        leaf = parts[-1]
        if leaf in cursor:
            existing = cursor[leaf]
            if not isinstance(existing, list):
                cursor[leaf] = [existing]
            cursor[leaf].append(value)
        else:
            cursor[leaf] = value
    return out


class ImperativePipeline:
    """An n-tier middleware stack around one piece of business logic.

    ``tiers`` counts the representation changes on the way *in* (and the
    same number on the way out): 0 → logic runs directly on the parsed
    XML (the Demaq-like configuration); each extra tier adds a
    serialize/parse or convert round trip.
    """

    def __init__(self, logic: Callable[[dict], dict], tiers: int = 3):
        if tiers < 0:
            raise ValueError("tiers must be non-negative")
        self.logic = logic
        self.tiers = tiers
        self.transformations = 0

    def handle(self, message: str) -> str:
        document = parse(message)
        data = xml_to_dict(document)
        self.transformations += 1
        # inbound chain
        for tier in range(self.tiers):
            if tier % 2 == 0:
                rows = dict_to_rows(data)
                data = rows_to_dict(rows)
            else:
                data = xml_to_dict(parse(serialize(dict_to_xml(data))))
            self.transformations += 2
        result = self.logic(data)
        # reverse traversal of the chain
        for tier in range(self.tiers):
            if tier % 2 == 0:
                rows = dict_to_rows(result)
                result = rows_to_dict(rows)
            else:
                result = xml_to_dict(parse(serialize(dict_to_xml(result))))
            self.transformations += 2
        out = serialize(dict_to_xml(result))
        self.transformations += 1
        return out
