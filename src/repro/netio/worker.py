"""One cluster node as an OS process: ``python -m repro.netio.worker``.

The process-per-node counterpart of a :class:`ClusterDriver` node
thread.  The worker reads a JSON config from stdin, boots a
:class:`~repro.engine.DemaqServer` with its **own store directory and
WAL**, attaches a :class:`~repro.netio.SocketTransport`, and announces
``DEMAQ-WORKER-READY <port>`` on stdout.  From then on everything —
cluster ingest, control, rebalance, drain — flows over sockets; there
is no shared memory with the coordinator or the other nodes.

Config keys::

    {"name": "node0",
     "app": "<QDL source>",
     "addresses": {"node0": ["127.0.0.1", 9101], ...,
                   "gate": ["127.0.0.1", 9100]},
     "nodes": ["node0", "node1"],          # membership (ring order)
     "data_dir": "/path/node0" | null,     # null: in-memory store
     "server": {"durability": "group", "batch_size": 8, ...}}

Control protocol — envelopes POSTed to ``demaq://<name>/!ctl`` whose
body is ``<ctl op="..."/>`` with a ``replyTo`` property; the worker
answers with a ``<ctlReply .../>`` envelope carrying the request's
``ctlId`` property back:

* ``status`` — cumulative step counter, processed count, idleness;
* ``depth`` (attr ``queue``) / ``texts`` (attr ``queue``) — shard reads;
* ``reconfigure`` — new membership + address book (join/leave);
* ``rebalance`` — push every unprocessed message that now belongs to a
  different owner to that owner's ``!shard`` ingest over the socket
  transport, deleting locally only after the owner's delivered ack
  (at-least-once; retained processed messages stay until retention
  reclaims them);
* ``stop`` — graceful drain: finish the in-flight execution step,
  flush the group-commit coordinator, close the store, exit 0.

SIGTERM triggers the same graceful-drain path as ``stop`` — no torn
work on process termination.
"""

from __future__ import annotations

import json
import signal
import sys
import time

from ..cluster.membership import ClusterMembership
from ..cluster.router import RoutingKeys
from ..engine.server import DemaqServer
from ..network import build_envelope, parse_envelope
from ..network.transport import node_endpoint
from ..obs import (MetricsRegistry, Tracer, configure_json_logging,
                   get_logger, log_event)
from ..qdl import compile_application
from ..qdl.model import QueueKind
from ..queues import RealClock
from ..xmldm import Attribute, Document, Element, Text, parse
from .transport import SocketTransport

CTL_PATH = "!ctl"
CTL_REPLY_PATH = "!ctl-reply"
READY_BANNER = "DEMAQ-WORKER-READY"


def ctl_endpoint(node: str) -> str:
    return f"demaq://{node}/{CTL_PATH}"


class Worker:
    """The per-process node runtime around one DemaqServer."""

    def __init__(self, config: dict):
        self.name = config["name"]
        self.app = compile_application(config["app"])
        self.log = get_logger(f"worker.{self.name}")
        #: one registry/tracer per worker process; the server shares them
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(node=self.name)
        addresses = {node: (host, int(port))
                     for node, (host, port) in config["addresses"].items()}
        self.transport = SocketTransport(self.name, addresses,
                                         metrics=self.metrics)
        self.clock = RealClock()
        self.server = DemaqServer(self.app, clock=self.clock,
                                  network=self.transport, name=self.name,
                                  data_dir=config.get("data_dir"),
                                  register_gateways=False,
                                  metrics=self.metrics, tracer=self.tracer,
                                  **(config.get("server") or {}))
        self.nodes: list[str] = list(config.get("nodes") or [self.name])
        self.membership = ClusterMembership(self.app, self.nodes)
        self.keys = RoutingKeys(self.app, self.membership)
        self._gateway_queues: set[str] = set()
        self._register_endpoints()
        self.steps = 0
        self.migrated_out = 0
        self._stopping = False

    # -- endpoint wiring ------------------------------------------------------

    def _register_endpoints(self) -> None:
        for queue in self.app.queues:
            self.server.register_ingest(node_endpoint(self.name, queue),
                                        queue)
        self.transport.register(ctl_endpoint(self.name), self._handle_ctl)
        self._place_gateways()

    def _place_gateways(self) -> None:
        """Own the incoming-gateway endpoints the ring assigns here."""
        for queue_def in self.app.queues.values():
            if queue_def.kind is not QueueKind.INCOMING_GATEWAY:
                continue
            owner = self.membership.ring.owner(queue_def.name)
            if owner == self.name \
                    and queue_def.name not in self._gateway_queues:
                self.server.register_incoming_gateway(queue_def.name)
                self._gateway_queues.add(queue_def.name)
            elif owner != self.name \
                    and queue_def.name in self._gateway_queues:
                self.server.unregister_incoming_gateway(queue_def.name)
                self._gateway_queues.discard(queue_def.name)

    # -- the process main loop ------------------------------------------------

    def run(self) -> int:
        while not self._stopping:
            worked = self.server.step_local()
            delivered = self.transport.pump()
            if worked:
                # local rule/echo/gateway work only — control-plane
                # deliveries must not disturb the quiescence signature
                self.steps += 1
            if not worked and not delivered:
                time.sleep(0.001)
        self._drain()
        return 0

    def request_stop(self) -> None:
        self._stopping = True

    def _drain(self) -> None:
        """Graceful exit: nothing torn, everything acknowledged durable.

        The main loop already finished its in-flight execution step (a
        whole batch transaction) before getting here; one last pump
        completes outstanding acknowledgements, then the group-commit
        coordinator forces the log tail so every acknowledged commit
        survives the exit.
        """
        self.transport.pump()
        self.server.store.group_commit.drain()
        self.server.close()
        self.transport.close()

    # -- control channel ------------------------------------------------------

    def _handle_ctl(self, envelope: Document, source: str) -> None:
        body, properties = parse_envelope(envelope)
        root = body.root_element
        op = root.attribute_value("op") if root is not None else None
        reply_to = properties.get("replyTo")
        attrs: dict[str, object] = {"op": op or "?", "node": self.name}
        children: list[Element] = []

        if op == "status":
            attrs.update(steps=self.steps,
                         processed=self.server.executor.stats
                         .messages_processed,
                         backlog=self.server.scheduler.backlog(),
                         pending=self.transport.pending(),
                         migrated=self.migrated_out,
                         idle=self._idle())
        elif op == "depth":
            queue = root.attribute_value("queue")
            attrs.update(queue=queue,
                         n=self.server.store.queue_depth(queue))
        elif op == "texts":
            queue = root.attribute_value("queue")
            attrs.update(queue=queue)
            children = [Element("t", children=[Text(text)])
                        for text in self.server.queue_texts(queue)]
        elif op == "metrics":
            children = [Element("metrics", children=[
                Text(json.dumps(self.metrics.snapshot()))])]
        elif op == "trace":
            trace_id = root.attribute_value("trace")
            children = [Element("spans", children=[
                Text(json.dumps(self.tracer.spans(trace_id or None)))])]
        elif op == "reconfigure":
            self._reconfigure(root)
        elif op == "rebalance":
            moved = self._rebalance_out()
            attrs.update(moved=moved)
            log_event(self.log, "rebalance", moved=moved,
                      nodes=list(self.nodes))
        elif op == "stop":
            self.request_stop()
        else:
            attrs.update(error=f"unknown ctl op {op!r}")

        if isinstance(reply_to, str):
            reply = Element("ctlReply",
                            attributes=[Attribute(key, str(value))
                                        for key, value in attrs.items()],
                            children=children)
            self.transport.send(
                reply_to, build_envelope(Document([reply]),
                                         {"ctlId": properties.get("ctlId",
                                                                  "")}),
                source=ctl_endpoint(self.name))

    def _idle(self) -> bool:
        """No runnable work this instant (future echo timers excluded)."""
        echo_due = self.server.echo.next_due()
        return (self.server.scheduler.backlog() == 0
                and not self.server._pending_sends
                and self.transport.idle()
                and (echo_due is None or echo_due > self.clock.now()))

    # -- membership changes over the wire --------------------------------------

    def _reconfigure(self, root: Element) -> None:
        """Adopt a new node list + address book (join/leave)."""
        nodes = [el.attribute_value("name")
                 for el in root.child_elements("node")]
        for el in root.child_elements("node"):
            self.transport.addresses[el.attribute_value("name")] = (
                el.attribute_value("host"), int(el.attribute_value("port")))
        self.nodes = nodes
        self.membership = ClusterMembership(self.app, nodes)
        self.keys = RoutingKeys(self.app, self.membership)
        self._place_gateways()

    def _rebalance_out(self) -> int:
        """Push every unprocessed message owned elsewhere to its owner.

        Socket-era migration is at-least-once via the ingest path: the
        local copy is deleted only in the delivered-ack callback, i.e.
        after the new owner committed its insert.  Processed (retained)
        messages stay put until retention reclaims them — correlation
        against history is shard-local either way (DESIGN.md §6).
        """
        moved = 0
        for queue in self.app.queues:
            for meta in list(self.server.store.queue_messages(queue)):
                if meta.processed:
                    continue
                owner = self._owner_of(queue, meta)
                if owner == self.name or owner not in self.nodes:
                    continue
                payload = self.server.store.body_bytes(meta.msg_id)
                body = parse(payload.decode("utf-8"))
                envelope = build_envelope(
                    body, self._portable_properties(meta.properties))
                self.transport.send(
                    node_endpoint(owner, queue), envelope,
                    source=f"demaq://{self.name}/!rebalance",
                    on_delivered=lambda msg_id=meta.msg_id:
                        self._migration_done(msg_id))
                moved += 1
        return moved

    def _owner_of(self, queue: str, meta) -> str:
        from ..cluster.rebalance import stored_message_owner
        return stored_message_owner(self.membership, self.keys, queue,
                                    meta, self.server)

    def _portable_properties(self, properties: dict) -> dict:
        """Explicit properties that travel with a migrated message.

        Fixed properties recompute from the body at the target; derived
        system state (creationTime, Sender, …) is re-stamped there.
        """
        out = {}
        for name, value in properties.items():
            declared = self.app.properties.get(name)
            if declared is not None and declared.fixed:
                continue
            if name in ("creationTime", "creatingRule", "sourceQueue",
                        "Sender"):
                continue
            out[name] = value
        return out

    def _migration_done(self, msg_id: int) -> None:
        meta = self.server.store.get(msg_id)
        if meta is None:
            return
        txn = self.server.store.begin()
        txn.delete_message(msg_id)
        self.server.store.commit(txn)
        self.server.locking.release(txn.txn_id)
        self.migrated_out += 1


def main() -> int:
    # Structured JSON lines on stderr: the coordinator spools (and caps)
    # this stream per worker, and crash reports quote its tail.
    configure_json_logging(sys.stderr)
    config = json.loads(sys.stdin.readline())
    worker = Worker(config)
    log_event(worker.log, "boot", node=worker.name,
              port=worker.transport.port,
              nodes=list(worker.nodes),
              data_dir=config.get("data_dir"))

    def on_term(signum, frame):
        worker.request_stop()

    signal.signal(signal.SIGTERM, on_term)
    signal.signal(signal.SIGINT, on_term)
    print(f"{READY_BANNER} {worker.transport.port}", flush=True)
    code = worker.run()
    log_event(worker.log, "drained", node=worker.name,
              steps=worker.steps, migrated=worker.migrated_out)
    return code


if __name__ == "__main__":
    sys.exit(main())
