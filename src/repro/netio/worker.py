"""One cluster node as an OS process: ``python -m repro.netio.worker``.

The process-per-node counterpart of a :class:`ClusterDriver` node
thread.  The worker reads a JSON config from stdin, boots a
:class:`~repro.engine.DemaqServer` with its **own store directory and
WAL**, attaches a :class:`~repro.netio.SocketTransport`, and announces
``DEMAQ-WORKER-READY <port>`` on stdout.  From then on everything —
cluster ingest, control, rebalance, drain — flows over sockets; there
is no shared memory with the coordinator or the other nodes.

Config keys::

    {"name": "node0",
     "app": "<QDL source>",
     "addresses": {"node0": ["127.0.0.1", 9101], ...,
                   "gate": ["127.0.0.1", 9100]},
     "nodes": ["node0", "node1"],          # membership (ring order)
     "data_dir": "/path/node0" | null,     # null: in-memory store
     "server": {"durability": "group", "batch_size": 8, ...},
     "runtime": {"mvcc": true, ...},       # RuntimeConfig.to_json()
     "replication": {"enabled": true, "replicas": 1,
                     "epochs": {"node0": 0, ...}},    # shard epochs
     "chaos": {"kill_after_commits": 3,               # SIGKILL self
               "net": {"drop": 2, "dup": 2, "delay": 2}}}

With replication on (DESIGN.md §9) a worker may *host several shards*:
its own, plus — after a failover — any shard it was promoted for.  Each
hosted shard is a full :class:`DemaqServer` (own store, own WAL stream);
``hosted`` maps shard name → server, and ingest/ctl/gateway endpoints
are registered per hosted name, so a promoted shard keeps its identity
on the ring and the router re-targets transparently once the address
book maps the dead name to this worker's port.

Control protocol — envelopes POSTed to ``demaq://<name>/!ctl`` whose
body is ``<ctl op="..."/>`` with a ``replyTo`` property; the worker
answers with a ``<ctlReply .../>`` envelope carrying the request's
``ctlId`` property back:

* ``status`` — cumulative step counter, processed count, idleness;
* ``depth`` (attr ``queue``) / ``texts`` (attr ``queue``) — shard reads;
* ``reconfigure`` — new membership + address book (join/leave); roster
  entries may carry per-shard ``epoch`` attributes (fencing);
* ``rebalance`` — push every unprocessed message that now belongs to a
  different owner to that owner's ``!shard`` ingest over the socket
  transport, deleting locally only after the owner's delivered ack
  (at-least-once; retained processed messages stay until retention
  reclaims them);
* ``checkpoint`` — run a fuzzy checkpoint now (reports ``status``:
  completed/deferred/skipped); ``truncate`` (attr ``force``) — drop the
  reclaimable WAL prefix and report the bytes freed; ``config`` — the
  effective :class:`~repro.config.RuntimeConfig` as JSON;
* ``repl-status`` — per-primary standby positions (which failover uses
  to pick the most-caught-up replica) and shipper state;
* ``promote`` (attrs ``primary``, ``epoch``) — seal the standby for
  *primary* and start serving that shard here under the new epoch;
* ``wedge`` — chaos: reply, then spin forever ignoring SIGTERM (drives
  the coordinator's stop → SIGTERM → SIGKILL escalation);
* ``stop`` — graceful drain: finish the in-flight execution step,
  flush the group-commit coordinator, close the store, exit 0.

SIGTERM triggers the same graceful-drain path as ``stop`` — no torn
work on process termination.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time

from ..cluster.membership import ClusterMembership
from ..cluster.router import RoutingKeys
from ..config import RuntimeConfig, active, install
from ..engine.server import DemaqServer
from ..network import build_envelope, parse_envelope
from ..network.transport import node_endpoint
from ..obs import (MetricsRegistry, Tracer, configure_json_logging,
                   get_logger, log_event)
from ..qdl import compile_application
from ..qdl.model import QueueKind
from ..queues import RealClock
from ..replication import ReplicaApplier, WalShipper
from ..xmldm import Attribute, Document, Element, Text, parse
from .transport import ChaosPlan, SocketTransport

CTL_PATH = "!ctl"
CTL_REPLY_PATH = "!ctl-reply"
READY_BANNER = "DEMAQ-WORKER-READY"

#: MessageStore kwargs a standby store inherits from the server config.
_STANDBY_STORE_KEYS = ("durability", "sync_commits", "log_deletes",
                      "buffer_capacity", "mvcc")


def ctl_endpoint(node: str) -> str:
    return f"demaq://{node}/{CTL_PATH}"


class Worker:
    """The per-process node runtime around one or more DemaqServers."""

    def __init__(self, config: dict):
        self.name = config["name"]
        self.app = compile_application(config["app"])
        self.log = get_logger(f"worker.{self.name}")
        #: one registry/tracer per worker process; the servers share them
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(node=self.name)
        addresses = {node: (host, int(port))
                     for node, (host, port) in config["addresses"].items()}
        self.transport = SocketTransport(self.name, addresses,
                                         metrics=self.metrics)
        self.clock = RealClock()
        self.data_dir = config.get("data_dir")
        self.server_kwargs = dict(config.get("server") or {})
        self.server = DemaqServer(self.app, clock=self.clock,
                                  network=self.transport, name=self.name,
                                  data_dir=self.data_dir,
                                  register_gateways=False,
                                  metrics=self.metrics, tracer=self.tracer,
                                  **self.server_kwargs)
        #: shard name -> the server hosting it in this process.  Starts
        #: as just our own shard; promotion adds the shards we adopt.
        self.hosted: dict[str, DemaqServer] = {self.name: self.server}
        self.nodes: list[str] = list(config.get("nodes") or [self.name])
        self.membership = ClusterMembership(self.app, self.nodes)
        self.keys = RoutingKeys(self.app, self.membership)
        #: gateway queue -> hosted shard currently owning its endpoint
        self._gateway_queues: dict[str, str] = {}

        repl_cfg = config.get("replication") or {}
        self.replication = bool(repl_cfg.get("enabled"))
        self.replica_count = int(repl_cfg.get("replicas", 1))
        #: shard -> authority epoch (fencing); bumped only by promotion.
        self.shard_epochs: dict[str, int] = {
            node: int(epoch)
            for node, epoch in (repl_cfg.get("epochs") or {}).items()}
        self.appliers: dict[str, ReplicaApplier] = {}
        self.shippers: dict[str, WalShipper] = {}

        self._register_endpoints(self.name)
        self._place_gateways()
        if self.replication:
            self.transport.set_repl_handler(self._handle_repl)
            self._sync_replication()

        self._install_chaos(config.get("chaos") or {})
        self.steps = 0
        self.migrated_out = 0
        self._stopping = False
        self._wedge_requested = False

    # -- endpoint wiring ------------------------------------------------------

    def _register_endpoints(self, shard: str) -> None:
        server = self.hosted[shard]
        for queue in self.app.queues:
            server.register_ingest(node_endpoint(shard, queue), queue)
        self.transport.register(
            ctl_endpoint(shard),
            lambda envelope, source, s=shard:
                self._handle_ctl(envelope, source, s))

    def _place_gateways(self) -> None:
        """Own the incoming-gateway endpoints the ring assigns to any
        shard hosted here (after promotion that includes the dead
        primary's name — the ring itself never changes)."""
        for queue_def in self.app.queues.values():
            if queue_def.kind is not QueueKind.INCOMING_GATEWAY:
                continue
            owner = self.membership.ring.owner(queue_def.name)
            target = owner if owner in self.hosted else None
            current = self._gateway_queues.get(queue_def.name)
            if current == target:
                continue
            if current is not None:
                self.hosted[current].unregister_incoming_gateway(
                    queue_def.name)
                del self._gateway_queues[queue_def.name]
            if target is not None:
                self.hosted[target].register_incoming_gateway(queue_def.name)
                self._gateway_queues[queue_def.name] = target

    # -- replication wiring ----------------------------------------------------

    def _standby_store_kwargs(self) -> dict:
        kwargs = {key: value for key, value in self.server_kwargs.items()
                  if key in _STANDBY_STORE_KEYS}
        # Standby metrics stay out of the live registry until promotion
        # makes the shard real (collectors would double-register names).
        kwargs["metrics"] = MetricsRegistry(enabled=False)
        return kwargs

    def _sync_replication(self) -> None:
        """Create/refresh shippers and appliers for the current ring."""
        ring = self.membership.ring
        for shard, server in self.hosted.items():
            replicas = [node for node
                        in ring.successors(shard, self.replica_count)
                        if node not in self.hosted]
            shipper = self.shippers.get(shard)
            if shipper is None:
                shipper = WalShipper(
                    shard, server.store.wal, replicas,
                    self.transport.repl_send,
                    epoch=self.shard_epochs.get(shard, 0),
                    metrics=self.metrics,
                    on_fenced=lambda s=shard: self._fence_local(s),
                    reseed_fn=server.store.export_reseed_state)
                server.store.group_commit.shipper = shipper
                self.shippers[shard] = shipper
                shipper.hello()
            else:
                shipper.set_replicas(replicas)
        for primary in self.nodes:
            if primary in self.hosted or primary in self.appliers:
                continue
            if self.name not in ring.successors(primary, self.replica_count):
                continue
            standby_dir = (os.path.join(self.data_dir, "standby", primary)
                           if self.data_dir else None)
            self.appliers[primary] = ReplicaApplier(
                primary, self.name,
                epoch=self.shard_epochs.get(primary, 0),
                standby_dir=standby_dir, metrics=self.metrics,
                store_kwargs=self._standby_store_kwargs())

    def _handle_repl(self, frame: dict) -> dict | None:
        """Replication frames, dispatched on the transport reader thread."""
        op = frame.get("op")
        primary = frame.get("primary")
        if op in ("append", "hello"):
            applier = self.appliers.get(primary)
            if applier is None:
                if primary in self.hosted and int(frame.get("epoch", 0)) \
                        < self.shard_epochs.get(primary, 0):
                    # A zombie pre-failover primary is shipping to the
                    # node that was *promoted* for its shard: fence it.
                    return {"kind": "repl", "op": "fence",
                            "primary": primary, "node": self.name,
                            "epoch": self.shard_epochs[primary]}
                return None     # not a replica for this shard
            return applier.receive(frame)
        shipper = self.shippers.get(primary)
        if shipper is not None:
            if op == "ack":
                shipper.on_ack(frame)
            elif op == "fence":
                shipper.on_fence(frame)
        return None

    def _fence_local(self, shard: str) -> None:
        """A newer epoch exists for *shard*: stop accepting its writes."""
        server = self.hosted.get(shard)
        if server is not None and not server.fenced:
            server.fenced = True
            log_event(self.log, "fenced", node=self.name, shard=shard,
                      epoch=self.shard_epochs.get(shard, 0))

    def _apply_roster_epochs(self, epochs: dict[str, int]) -> None:
        for shard, epoch in epochs.items():
            if epoch <= self.shard_epochs.get(shard, 0):
                self.shard_epochs.setdefault(shard, epoch)
                continue
            self.shard_epochs[shard] = epoch
            applier = self.appliers.get(shard)
            if applier is not None:
                applier.advance_fence(epoch)
            shipper = self.shippers.get(shard)
            if shipper is not None and epoch > shipper.epoch:
                # Someone else now owns this shard: we are the zombie.
                shipper.fenced = True
                self._fence_local(shard)

    def _promote(self, primary: str, epoch: int) -> DemaqServer:
        """Adopt *primary*'s shard: seal the standby, serve its name."""
        applier = self.appliers.pop(primary)
        store = applier.promote(epoch)
        server = DemaqServer(self.app, clock=self.clock,
                             network=self.transport, name=primary,
                             register_gateways=False, store=store,
                             metrics=self.metrics, tracer=self.tracer,
                             **self.server_kwargs)
        self.hosted[primary] = server
        self.shard_epochs[primary] = epoch
        self._register_endpoints(primary)
        # The promoted name now resolves to this worker's listener.
        self.transport.addresses[primary] = (self.transport.host,
                                             self.transport.port)
        self._place_gateways()
        if self.replication:
            self._sync_replication()
        log_event(self.log, "promoted", node=self.name, shard=primary,
                  epoch=epoch, standby_end=store.wal.end_lsn(),
                  applied=applier.applied_records)
        return server

    # -- chaos -----------------------------------------------------------------

    def _install_chaos(self, chaos_cfg: dict) -> None:
        kill_after = int(chaos_cfg.get("kill_after_commits", 0) or 0)
        if kill_after:
            state = {"left": kill_after}

            def commit_hook(lsn: int) -> None:
                # Fires after the COMMIT record is appended and before
                # any force — the torn-tail window.  SIGKILL: no atexit,
                # no flush, exactly what a power cut looks like to the
                # rest of the cluster.
                state["left"] -= 1
                if state["left"] <= 0:
                    os.kill(os.getpid(), signal.SIGKILL)

            self.server.store.group_commit.commit_hook = commit_hook
        net = chaos_cfg.get("net") or {}
        if net:
            self.transport.chaos = ChaosPlan(
                drop=int(net.get("drop", 0) or 0),
                duplicate=int(net.get("dup", 0) or 0),
                delay=int(net.get("delay", 0) or 0),
                delay_seconds=float(net.get("delay_seconds", 0.01) or 0.01))

    # -- the process main loop ------------------------------------------------

    def run(self) -> int:
        while not self._stopping:
            worked = False
            for server in list(self.hosted.values()):
                # A fenced shard must not execute rules either: its
                # outputs would leak into the healthy cluster as sends.
                if server.fenced:
                    continue
                if server.step_local():
                    worked = True
                server.checkpoints.maybe_run()
            delivered = self.transport.pump()
            if worked:
                # local rule/echo/gateway work only — control-plane
                # deliveries must not disturb the quiescence signature
                self.steps += 1
            if not worked and not delivered:
                time.sleep(0.001)
        self._drain()
        return 0

    def request_stop(self) -> None:
        self._stopping = True

    def _drain(self) -> None:
        """Graceful exit: nothing torn, everything acknowledged durable.

        The main loop already finished its in-flight execution step (a
        whole batch transaction) before getting here; one last pump
        completes outstanding acknowledgements, then each hosted
        shard's group-commit coordinator forces its log tail so every
        acknowledged commit survives the exit.  Standby WALs are forced
        too — a restart of this replica resumes from what it acked.
        """
        self.transport.pump()
        for server in self.hosted.values():
            server.store.group_commit.drain()
        for applier in self.appliers.values():
            applier.flush()
        for server in self.hosted.values():
            server.close()
        self.transport.close()

    # -- control channel ------------------------------------------------------

    def _handle_ctl(self, envelope: Document, source: str,
                    shard: str | None = None) -> None:
        server = self.hosted.get(shard or self.name, self.server)
        body, properties = parse_envelope(envelope)
        root = body.root_element
        op = root.attribute_value("op") if root is not None else None
        reply_to = properties.get("replyTo")
        attrs: dict[str, object] = {"op": op or "?", "node": self.name}
        children: list[Element] = []

        if op == "status":
            attrs.update(steps=self.steps,
                         processed=server.executor.stats.messages_processed,
                         backlog=server.scheduler.backlog(),
                         pending=self.transport.pending(),
                         migrated=self.migrated_out,
                         hosted=",".join(sorted(self.hosted)),
                         idle=self._idle())
        elif op == "depth":
            queue = root.attribute_value("queue")
            attrs.update(queue=queue,
                         n=server.store.queue_depth(queue))
        elif op == "texts":
            queue = root.attribute_value("queue")
            attrs.update(queue=queue)
            children = [Element("t", children=[Text(text)])
                        for text in server.queue_texts(queue)]
        elif op == "checkpoint":
            attrs.update(status=server.checkpoint(),
                         wal_start=server.store.wal.start_lsn(),
                         wal_end=server.store.wal.end_lsn())
        elif op == "truncate":
            force = (root.attribute_value("force") or "") in ("1", "true")
            attrs.update(dropped=server.truncate_wal(force=force),
                         wal_start=server.store.wal.start_lsn())
        elif op == "config":
            children = [Element("config", children=[
                Text(json.dumps(active().to_json()))])]
        elif op == "metrics":
            children = [Element("metrics", children=[
                Text(json.dumps(self.metrics.snapshot()))])]
        elif op == "trace":
            trace_id = root.attribute_value("trace")
            children = [Element("spans", children=[
                Text(json.dumps(self.tracer.spans(trace_id or None)))])]
        elif op == "reconfigure":
            self._reconfigure(root)
        elif op == "rebalance":
            moved = self._rebalance_out()
            attrs.update(moved=moved)
            log_event(self.log, "rebalance", moved=moved,
                      nodes=list(self.nodes))
        elif op == "repl-status":
            for applier in self.appliers.values():
                status = applier.status()
                children.append(Element("standby", attributes=[
                    Attribute(key, str(value))
                    for key, value in status.items()]))
            for shipper in self.shippers.values():
                status = shipper.status()
                children.append(Element("shipper", attributes=[
                    Attribute("primary", status["primary"]),
                    Attribute("epoch", str(status["epoch"])),
                    Attribute("fenced", str(status["fenced"])),
                    Attribute("end", str(status["end"])),
                    Attribute("acked", str(max(
                        status["acked"].values(), default=0)))]))
        elif op == "promote":
            primary = root.attribute_value("primary")
            epoch = int(root.attribute_value("epoch") or 0)
            if primary in self.appliers:
                promoted = self._promote(primary, epoch)
                attrs.update(primary=primary, epoch=epoch,
                             end=promoted.store.wal.end_lsn())
            else:
                attrs.update(error=f"no standby for {primary!r}")
        elif op == "wedge":
            self._wedge_requested = True
            attrs.update(wedged=True)
        elif op == "stop":
            self.request_stop()
        else:
            attrs.update(error=f"unknown ctl op {op!r}")

        if isinstance(reply_to, str):
            reply = Element("ctlReply",
                            attributes=[Attribute(key, str(value))
                                        for key, value in attrs.items()],
                            children=children)
            self.transport.send(
                reply_to, build_envelope(Document([reply]),
                                         {"ctlId": properties.get("ctlId",
                                                                  "")}),
                source=ctl_endpoint(shard or self.name))
        if self._wedge_requested:
            self._wedge()

    def _wedge(self) -> None:    # pragma: no cover - killed by SIGKILL
        """Chaos: stop responding to everything, including SIGTERM.

        Models a worker that is alive (process exists, port bound) but
        hung — the drain path cannot RPC it and SIGTERM is ignored, so
        the coordinator must escalate to SIGKILL.
        """
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        log_event(self.log, "wedged", node=self.name)
        while True:
            time.sleep(60)

    def _idle(self) -> bool:
        """No runnable work this instant (future echo timers excluded)."""
        now = self.clock.now()
        for server in self.hosted.values():
            if server.fenced:
                continue
            echo_due = server.echo.next_due()
            if server.scheduler.backlog() or server._pending_sends \
                    or (echo_due is not None and echo_due <= now):
                return False
        return self.transport.idle()

    # -- membership changes over the wire --------------------------------------

    def _reconfigure(self, root: Element) -> None:
        """Adopt a new node list + address book (join/leave/failover).

        Roster entries may carry an ``epoch`` attribute per shard: the
        coordinator distributes authority epochs this way, so a worker
        that hosts a shard someone else was promoted for fences itself
        even if it never saw the replica's fence verdict.
        """
        nodes = [el.attribute_value("name")
                 for el in root.child_elements("node")]
        epochs: dict[str, int] = {}
        for el in root.child_elements("node"):
            name = el.attribute_value("name")
            self.transport.addresses[name] = (
                el.attribute_value("host"), int(el.attribute_value("port")))
            raw_epoch = el.attribute_value("epoch")
            if raw_epoch is not None:
                epochs[name] = int(raw_epoch)
        self.nodes = nodes
        self.membership = ClusterMembership(self.app, nodes)
        self.keys = RoutingKeys(self.app, self.membership)
        self._apply_roster_epochs(epochs)
        self._place_gateways()
        if self.replication:
            self._sync_replication()

    def _rebalance_out(self) -> int:
        """Push every unprocessed message owned elsewhere to its owner.

        Socket-era migration is at-least-once via the ingest path: the
        local copy is deleted only in the delivered-ack callback, i.e.
        after the new owner committed its insert.  Processed (retained)
        messages stay put until retention reclaims them — correlation
        against history is shard-local either way (DESIGN.md §6).
        """
        moved = 0
        for shard, server in list(self.hosted.items()):
            for queue in self.app.queues:
                for meta in list(server.store.queue_messages(queue)):
                    if meta.processed:
                        continue
                    owner = self._owner_of(queue, meta, server)
                    if owner == shard or owner not in self.nodes:
                        continue
                    payload = server.store.body_bytes(meta.msg_id)
                    body = parse(payload.decode("utf-8"))
                    envelope = build_envelope(
                        body, self._portable_properties(meta.properties))
                    self.transport.send(
                        node_endpoint(owner, queue), envelope,
                        source=f"demaq://{shard}/!rebalance",
                        on_delivered=lambda msg_id=meta.msg_id, s=server:
                            self._migration_done(s, msg_id))
                    moved += 1
        return moved

    def _owner_of(self, queue: str, meta, server: DemaqServer) -> str:
        from ..cluster.rebalance import stored_message_owner
        return stored_message_owner(self.membership, self.keys, queue,
                                    meta, server)

    def _portable_properties(self, properties: dict) -> dict:
        """Explicit properties that travel with a migrated message.

        Fixed properties recompute from the body at the target; derived
        system state (creationTime, Sender, …) is re-stamped there.
        """
        out = {}
        for name, value in properties.items():
            declared = self.app.properties.get(name)
            if declared is not None and declared.fixed:
                continue
            if name in ("creationTime", "creatingRule", "sourceQueue",
                        "Sender"):
                continue
            out[name] = value
        return out

    def _migration_done(self, server: DemaqServer, msg_id: int) -> None:
        meta = server.store.get(msg_id)
        if meta is None:
            return
        txn = server.store.begin()
        txn.delete_message(msg_id)
        server.store.commit(txn)
        server.locking.release(txn.txn_id)
        self.migrated_out += 1


def main() -> int:
    config = json.loads(sys.stdin.readline())
    # Pin the coordinator-shipped runtime config before anything reads a
    # switch: from here on the process's behaviour is explicit, not
    # inherited from whatever environment it happened to get.
    if config.get("runtime") is not None:
        install(RuntimeConfig.from_json(config["runtime"]))
    # Structured JSON lines on stderr: the coordinator spools (and caps)
    # this stream per worker, and crash reports quote its tail.
    configure_json_logging(sys.stderr)
    worker = Worker(config)
    log_event(worker.log, "boot", node=worker.name,
              port=worker.transport.port,
              nodes=list(worker.nodes),
              replication=worker.replication,
              data_dir=config.get("data_dir"))

    def on_term(signum, frame):
        worker.request_stop()

    signal.signal(signal.SIGTERM, on_term)
    signal.signal(signal.SIGINT, on_term)
    print(f"{READY_BANNER} {worker.transport.port}", flush=True)
    code = worker.run()
    log_event(worker.log, "drained", node=worker.name,
              steps=worker.steps, migrated=worker.migrated_out)
    return code


if __name__ == "__main__":
    sys.exit(main())
