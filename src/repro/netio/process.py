"""Process-per-node cluster: real parallelism over real sockets.

:class:`ProcessCluster` is the OS-process counterpart of
:class:`~repro.cluster.ClusterServer`.  Where the thread-per-node
driver shares one Python interpreter (and therefore serializes rule
execution on the GIL), the process cluster launches each node as its
own ``python -m repro.netio.worker`` process with its **own store
directory, own WAL, own interpreter** — CPU-bound rule work scales
with cores.  All coordination is message passing over the
:class:`~repro.netio.SocketTransport`:

* external enqueues go through the same :class:`ClusterRouter` as the
  simulated cluster, now sending over TCP to the owner's ``!shard``
  ingest endpoints;
* control (status, depth reads, membership changes, rebalance, drain)
  uses request/reply envelopes on the workers' ``!ctl`` endpoints,
  correlated by a ``ctlId`` property;
* quiescence is observed, not barriered: the coordinator polls worker
  status until every node reports idle with a stable local-step
  counter across consecutive polls.

The coordinator itself participates in the address book as node
``gate`` — the same transport machinery carries data and control.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Iterable

from ..cluster.membership import ClusterMembership
from ..cluster.router import ClusterRouter
from ..config import active
from ..engine import errors as err
from ..network import build_envelope, parse_envelope
from ..obs import (MetricsRegistry, SpoolWriter, Tracer, merge_snapshots,
                   pump_stream_to_spool, stitch)
from ..qdl import compile_application
from ..replication import replica_count, replication_enabled
from ..xmldm import Attribute, Document, Element, parse
from .transport import SocketTransport
from .worker import CTL_REPLY_PATH, READY_BANNER, ctl_endpoint

GATE = "gate"

#: Per-worker stderr spool cap; one rotated generation is kept, so disk
#: use per worker is bounded at roughly twice this.
SPOOL_CAP_BYTES = 512 * 1024


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port that was just free (bind-and-release)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


class WorkerProcess:
    """One spawned node process plus its plumbing."""

    def __init__(self, name: str, proc: subprocess.Popen,
                 spool: SpoolWriter, config: dict | None = None):
        self.name = name
        self.proc = proc
        self.spool = spool
        #: the exact boot config (zombie restarts replay it verbatim)
        self.config = config

    @property
    def stderr_path(self) -> str:
        return self.spool.path

    def failure_detail(self) -> str:
        tail = self.spool.tail(2000)
        return (f"worker {self.name!r} exited with "
                f"code {self.proc.returncode} "
                f"(spool: {self.stderr_path})"
                + (f"; stderr tail:\n{tail}" if tail.strip() else ""))


class ProcessCluster:
    """A Demaq cluster of OS processes behind a ClusterServer-like API."""

    def __init__(self, app, nodes: int | Iterable[str] = 2,
                 data_dir: str | None = None,
                 host: str = "127.0.0.1",
                 server_kwargs: dict | None = None,
                 boot_timeout: float = 30.0,
                 rpc_timeout: float = 30.0,
                 spool_cap_bytes: int = SPOOL_CAP_BYTES,
                 replication: bool | None = None,
                 replicas: int | None = None,
                 chaos: dict | None = None):
        if not isinstance(app, str):
            raise TypeError(
                "ProcessCluster needs the QDL source text (worker "
                "processes compile it themselves); got a compiled "
                f"{type(app).__name__}")
        self.app_source = app
        self.app = compile_application(app)
        self.host = host
        self.server_kwargs = dict(server_kwargs or {})
        self.boot_timeout = boot_timeout
        self.rpc_timeout = rpc_timeout
        self.spool_cap_bytes = spool_cap_bytes
        #: WAL-shipping replication (DESIGN.md §9); default comes from
        #: DEMAQ_REPLICATION / DEMAQ_REPLICA_COUNT so a whole test run
        #: can be flipped replicated without touching call sites.
        self.replication = replication_enabled() if replication is None \
            else bool(replication)
        self.replicas = replica_count() if replicas is None \
            else max(0, int(replicas))
        #: per-node chaos boot config, e.g. {"node0":
        #: {"kill_after_commits": 3}} — fault injection for the tests.
        self.chaos = dict(chaos or {})
        #: shard -> authority epoch; bumped exactly once per failover.
        self.fence_epochs: dict[str, int] = {}
        #: shard -> worker process currently serving it (failover moves
        #: entries; keys are shard names, values worker names).
        self.hosting: dict[str, str] = {}
        self.failed_workers: dict[str, WorkerProcess] = {}
        self.zombies: dict[str, WorkerProcess] = {}
        self._failing_over = False
        self._spool = data_dir or tempfile.mkdtemp(prefix="demaq-netio-")
        os.makedirs(self._spool, exist_ok=True)
        self._data_dir = data_dir
        names = [f"node{i}" for i in range(nodes)] \
            if isinstance(nodes, int) else list(nodes)

        self.addresses: dict[str, tuple[str, int]] = {
            GATE: (host, free_port(host))}
        for name in names:
            self.addresses[name] = (host, free_port(host))
        #: coordinator-side telemetry (router spans, gate transport)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(node=GATE)
        self.transport = SocketTransport(GATE, self.addresses,
                                         metrics=self.metrics)
        self.membership = ClusterMembership(self.app, names)
        self.router = ClusterRouter(self.app, self.membership,
                                    self.transport, via_network=True,
                                    tracer=self.tracer)

        self._replies: dict[str, Element] = {}
        self._ctl_seq = 0
        self.transport.register(f"demaq://{GATE}/{CTL_REPLY_PATH}",
                                self._on_ctl_reply)
        self._failovers = self.metrics.counter(
            "demaq_cluster_failovers_total",
            "Shard failovers (replica promotions) performed")
        self.workers: dict[str, WorkerProcess] = {}
        try:
            for name in names:
                self.workers[name] = self._spawn(name)
                self.hosting[name] = name
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle --------------------------------------------------------

    def _spawn(self, name: str) -> WorkerProcess:
        data_dir = None if self._data_dir is None \
            else os.path.join(self._data_dir, name)
        config = {"name": name,
                  "app": self.app_source,
                  "addresses": {node: list(addr) for node, addr
                                in self.addresses.items()},
                  "nodes": self.node_names + ([name] if name
                                              not in self.node_names
                                              else []),
                  "data_dir": data_dir,
                  "server": self.server_kwargs,
                  # Explicit configuration ships with the boot config:
                  # workers behave per the coordinator's effective
                  # RuntimeConfig, not their inherited environment.
                  "runtime": active().to_json()}
        if self.replication:
            config["replication"] = {"enabled": True,
                                     "replicas": self.replicas,
                                     "epochs": dict(self.fence_epochs)}
        if name in self.chaos:
            config["chaos"] = self.chaos[name]
        return self._launch(name, config)

    def _launch(self, name: str, config: dict,
                spool_suffix: str = "") -> WorkerProcess:
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        stderr_path = os.path.join(self._spool,
                                   f"{name}{spool_suffix}.stderr")
        # The worker's stderr goes through a capped, rotating spool
        # rather than straight into an unbounded file: a crash-looping
        # or chatty worker can no longer fill the disk over a long run.
        spool = SpoolWriter(stderr_path, cap_bytes=self.spool_cap_bytes)
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.netio.worker"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, env=env, text=True)
        except BaseException:
            spool.close()
            raise
        pump_stream_to_spool(proc.stderr, spool)
        worker = WorkerProcess(name, proc, spool, config=config)
        proc.stdin.write(json.dumps(config) + "\n")
        proc.stdin.flush()
        self._await_ready(worker)
        return worker

    def _await_ready(self, worker: WorkerProcess) -> None:
        banner: list[str] = []

        def read_line() -> None:
            banner.append(worker.proc.stdout.readline())

        reader = threading.Thread(target=read_line, daemon=True)
        reader.start()
        reader.join(self.boot_timeout)
        if not banner or not banner[0].startswith(READY_BANNER):
            worker.proc.kill()
            worker.proc.wait()
            raise err.EngineError(
                f"worker {worker.name!r} failed to start: "
                + (worker.failure_detail() if banner
                   else f"no ready banner within {self.boot_timeout}s"))

    @property
    def node_names(self) -> list[str]:
        return list(self.membership.nodes)

    # -- control-plane RPC -------------------------------------------------------

    def _on_ctl_reply(self, envelope: Document, source: str) -> None:
        body, properties = parse_envelope(envelope)
        ctl_id = properties.get("ctlId")
        if isinstance(ctl_id, str) and body.root_element is not None:
            self._replies[ctl_id] = body.root_element

    def _rpc(self, node: str, op: str, attrs: dict | None = None,
             children: list[Element] | None = None,
             timeout: float | None = None) -> Element:
        """One request/reply round trip on a worker's control endpoint."""
        self._ctl_seq += 1
        ctl_id = f"ctl-{self._ctl_seq}"
        request = Element("ctl",
                          attributes=[Attribute("op", op)]
                          + [Attribute(key, str(value))
                             for key, value in (attrs or {}).items()],
                          children=list(children or []))
        failures: list[str] = []
        envelope = build_envelope(
            Document([request]),
            {"ctlId": ctl_id,
             "replyTo": f"demaq://{GATE}/{CTL_REPLY_PATH}"})
        self.transport.send(
            ctl_endpoint(node), envelope,
            source=f"demaq://{GATE}/{CTL_REPLY_PATH}",
            on_failed=failures.append)
        deadline = time.monotonic() + (timeout or self.rpc_timeout)
        resends = 0
        while time.monotonic() < deadline:
            self.transport.pump()
            if ctl_id in self._replies:
                return self._replies.pop(ctl_id)
            if failures:
                # With replication on, a failed control send is often a
                # crashed shard host: run failure detection (which may
                # promote a replica and re-point the address book) and
                # retry the RPC at the shard's new home.
                if self.replication and not self._failing_over \
                        and resends < 2:
                    self._check_workers()
                    failures.clear()
                    resends += 1
                    self.transport.send(
                        ctl_endpoint(node), envelope,
                        source=f"demaq://{GATE}/{CTL_REPLY_PATH}",
                        on_failed=failures.append)
                    continue
                raise err.EngineError(
                    f"ctl {op!r} to {node!r} failed: {failures[0]}")
            self._check_workers()
            time.sleep(0.002)
        raise err.EngineError(
            f"ctl {op!r} to {node!r} timed out after "
            f"{timeout or self.rpc_timeout}s")

    def _check_workers(self) -> None:
        """Failure detection: reap dead workers, fail over or raise."""
        for name, worker in list(self.workers.items()):
            code = worker.proc.poll()
            if code is None or code == 0:
                continue
            if self.replication and not self._failing_over:
                self._failover(name)
            else:
                raise err.EngineError(worker.failure_detail())

    def check(self) -> None:
        """Pump the control plane and run failure detection once."""
        self.transport.pump()
        self._check_workers()

    # -- failover (DESIGN.md §9) --------------------------------------------------

    def _failover(self, victim: str) -> None:
        """Promote the most-caught-up replica of a crashed shard host.

        The dead shard keeps its name on the ring (membership does not
        change); its address-book entry is re-pointed at the surviving
        worker that held the longest shipped WAL prefix, that worker is
        told to ``promote`` (seal the standby, serve the shard under a
        bumped epoch), and the new roster — with per-shard epochs — is
        broadcast so every survivor fences the old authority.
        """
        self._failing_over = True
        try:
            worker = self.workers.pop(victim)
            self.failed_workers[victim] = worker
            detail = worker.failure_detail()
            best_host, best_end = None, -1
            for name in list(self.workers):
                try:
                    reply = self._rpc(name, "repl-status")
                except err.EngineError:
                    continue
                for standby in reply.child_elements("standby"):
                    if standby.attribute_value("primary") != victim:
                        continue
                    end = int(standby.attribute_value("end") or 0)
                    if end > best_end:
                        best_host, best_end = name, end
            if best_host is None:
                raise err.EngineError(
                    f"no replica to promote for {victim!r}: {detail}")
            epoch = self.fence_epochs.get(victim, 0) + 1
            self.fence_epochs[victim] = epoch
            self.addresses[victim] = self.addresses[best_host]
            self.transport.addresses[victim] = self.addresses[best_host]
            reply = self._rpc(best_host, "promote",
                              {"primary": victim, "epoch": epoch})
            error = reply.attribute_value("error")
            if error:
                raise err.EngineError(
                    f"promoting {victim!r} on {best_host!r} failed: "
                    f"{error}")
            self.hosting[victim] = best_host
            self._failovers.inc()
            roster = self._membership_elements()
            for name in list(self.workers):
                self._rpc(name, "reconfigure", children=roster)
        finally:
            self._failing_over = False

    def restart_zombie(self, name: str) -> WorkerProcess:
        """Reboot a failed-over worker with its ORIGINAL config.

        The zombie binds its old port, recovers its old store, and —
        crucially — boots with its *pre-failover* epoch and address
        book.  Its first shipper probe reaches the promoted host, which
        answers with a fence verdict; the zombie marks its shard fenced
        and stops stepping it, so it can neither ship nor accept writes
        (the epoch-fencing acceptance test).  Tracked separately from
        live workers: the healthy cluster's failure detection and RPC
        fan-outs ignore it.
        """
        worker = self.failed_workers.get(name)
        if worker is None or worker.config is None:
            raise err.EngineError(f"no failed worker {name!r} to restart")
        zombie = self._launch(name, dict(worker.config),
                              spool_suffix="-zombie")
        self.zombies[name] = zombie
        return zombie

    def wait_zombie_fenced(self, name: str, timeout: float = 15.0) -> bool:
        """Wait for a restarted zombie to log its ``fenced`` event."""
        zombie = self.zombies[name]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            tail = zombie.spool.tail(16000)
            if '"fenced"' in tail:
                return True
            if zombie.proc.poll() is not None:
                return '"fenced"' in zombie.spool.tail(16000)
            time.sleep(0.05)
        return False

    # -- the ClusterServer-like surface ------------------------------------------

    def enqueue(self, queue: str, body, properties=None,
                on_delivered=None, on_failed=None) -> str:
        """Route one message to its owner process over TCP."""
        return self.router.enqueue(queue, body, properties,
                                   on_delivered=on_delivered,
                                   on_failed=on_failed)

    def pump(self) -> int:
        return self.transport.pump()

    def status(self, node: str) -> dict[str, str]:
        reply = self._rpc(node, "status")
        return {attr.name.local_name: attr.value
                for attr in reply.attributes}

    def wait_idle(self, timeout: float = 60.0) -> int:
        """Poll until the whole cluster quiesces; returns local steps.

        Quiescent means: the coordinator transport has nothing in
        flight and every worker reports idle (empty scheduler, no
        pending sends, no due timers) with an unchanged cumulative
        step counter across two consecutive polls — the observational
        equivalent of the thread driver's quiescence barrier, reached
        without any shared memory.
        """
        deadline = time.monotonic() + timeout
        previous: tuple | None = None
        while time.monotonic() < deadline:
            self.transport.pump()
            self._check_workers()
            statuses = {name: self.status(name) for name in self.node_names}
            signature = tuple(sorted(
                (name, status["steps"]) for name, status in statuses.items()))
            all_idle = all(status["idle"] == "True"
                           for status in statuses.values()) \
                and self.transport.idle()
            if all_idle and signature == previous:
                return sum(int(status["steps"])
                           for status in statuses.values())
            previous = signature if all_idle else None
            time.sleep(0.01)
        raise err.EngineError(
            f"process cluster did not quiesce within {timeout}s")

    def queue_depth(self, queue: str) -> int:
        return sum(int(self._rpc(name, "depth",
                                 {"queue": queue}).attribute_value("n"))
                   for name in self.node_names)

    def shard_depths(self, queue: str) -> dict[str, int]:
        return {name: int(self._rpc(name, "depth",
                                    {"queue": queue}).attribute_value("n"))
                for name in sorted(self.node_names)}

    def queue_texts(self, queue: str) -> list[str]:
        """Shard contents node-major (sorted node names), like
        :meth:`ClusterServer.queue_texts`."""
        out: list[str] = []
        for name in sorted(self.node_names):
            reply = self._rpc(name, "texts", {"queue": queue})
            out.extend(element.string_value
                       for element in reply.child_elements("t"))
        return out

    def messages_processed(self) -> int:
        return sum(int(self.status(name)["processed"])
                   for name in self.node_names)

    # -- telemetry aggregation ----------------------------------------------------

    def worker_metrics(self, node: str) -> dict:
        """One worker's registry snapshot via its ``!ctl`` endpoint."""
        reply = self._rpc(node, "metrics")
        for element in reply.child_elements("metrics"):
            return json.loads(element.string_value)
        return {}

    def metrics_snapshot(self) -> dict:
        """Cluster-wide snapshot: coordinator + every worker, summed."""
        snapshots = [self.metrics.snapshot()]
        snapshots.extend(self.worker_metrics(name)
                         for name in self.node_names)
        return merge_snapshots(snapshots)

    def worker_spans(self, node: str, trace_id: str | None = None
                     ) -> list[dict]:
        attrs = {"trace": trace_id} if trace_id else None
        reply = self._rpc(node, "trace", attrs)
        for element in reply.child_elements("spans"):
            return json.loads(element.string_value)
        return []

    def trace(self, trace_id: str) -> list[dict]:
        """Stitch one message's lifecycle spans across all processes."""
        span_lists = [self.tracer.spans(trace_id)]
        span_lists.extend(self.worker_spans(name, trace_id)
                          for name in self.node_names)
        return stitch(span_lists, trace_id)

    # -- membership over the wire -------------------------------------------------

    def _membership_elements(self) -> list[Element]:
        return [Element("node",
                        attributes=[Attribute("name", name),
                                    Attribute("host", self.addresses[name][0]),
                                    Attribute("port",
                                              str(self.addresses[name][1])),
                                    Attribute("epoch",
                                              str(self.fence_epochs.get(
                                                  name, 0)))])
                for name in self.node_names]

    def add_node(self, name: str | None = None) -> int:
        """Join a new worker process and rebalance; returns moved count.

        The new ring is announced to every worker over ``!ctl``
        (``reconfigure``), then each pre-existing worker pushes the
        unprocessed messages it no longer owns to their new owners'
        ingest endpoints — migration traffic rides the same socket
        transport as ordinary cluster forwards.
        """
        if name is None:
            index = len(self.workers)
            while f"node{index}" in self.workers:
                index += 1
            name = f"node{index}"
        veterans = self.node_names
        self.addresses[name] = (self.host, free_port(self.host))
        self.transport.addresses[name] = self.addresses[name]
        self.workers[name] = self._spawn(name)
        self.hosting[name] = name
        self.membership.join(name)
        self.router.keys = type(self.router.keys)(self.app, self.membership)
        roster = self._membership_elements()
        for node in self.node_names:
            self._rpc(node, "reconfigure", children=roster)
        moved = 0
        for node in veterans:
            reply = self._rpc(node, "rebalance")
            moved += int(reply.attribute_value("moved") or 0)
        self.wait_idle()
        return moved

    # -- shutdown ----------------------------------------------------------------

    def drain(self, timeout: float = 30.0, stop_timeout: float | None = None,
              escalation_timeout: float = 5.0) -> dict[str, str]:
        """Graceful cluster stop, escalating where grace fails.

        Per worker: the ``stop`` control RPC (graceful drain, exit 0);
        if that times out or the process ignores it, SIGTERM with a
        bounded wait; if even that is ignored (a wedged worker),
        SIGKILL.  Every child is always reaped.  Returns the map of
        workers that needed escalation and how far it went
        (``stop-failed`` / ``sigterm`` / ``sigkill``); raises only for
        workers that exited nonzero *without* being escalated.
        """
        escalated: dict[str, str] = {}
        for name, worker in list(self.workers.items()):
            if worker.proc.poll() is None:
                try:
                    self._rpc(name, "stop",
                              timeout=stop_timeout or timeout)
                except err.EngineError:
                    escalated[name] = "stop-failed"
        for name, worker in self.workers.items():
            wait = escalation_timeout if name in escalated else timeout
            try:
                worker.proc.wait(timeout=wait)
            except subprocess.TimeoutExpired:
                worker.proc.terminate()
                escalated[name] = "sigterm"
                try:
                    worker.proc.wait(timeout=escalation_timeout)
                except subprocess.TimeoutExpired:
                    worker.proc.kill()
                    escalated[name] = "sigkill"
                    worker.proc.wait()
        for name, worker in self.workers.items():
            if worker.proc.returncode != 0 and name not in escalated:
                raise err.EngineError(worker.failure_detail())
        self.drain_escalations = escalated
        return escalated

    def _all_spawned(self) -> list[WorkerProcess]:
        out = list(getattr(self, "workers", {}).values())
        out.extend(getattr(self, "zombies", {}).values())
        out.extend(getattr(self, "failed_workers", {}).values())
        return out

    def close(self) -> None:
        """Tear everything down, forcefully if needed."""
        for worker in self._all_spawned():
            if worker.proc.poll() is None:
                worker.proc.terminate()
        for worker in self._all_spawned():
            try:
                worker.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
            worker.spool.close()
        if getattr(self, "transport", None) is not None:
            self.transport.close()

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
