"""Process-per-node cluster: real parallelism over real sockets.

:class:`ProcessCluster` is the OS-process counterpart of
:class:`~repro.cluster.ClusterServer`.  Where the thread-per-node
driver shares one Python interpreter (and therefore serializes rule
execution on the GIL), the process cluster launches each node as its
own ``python -m repro.netio.worker`` process with its **own store
directory, own WAL, own interpreter** — CPU-bound rule work scales
with cores.  All coordination is message passing over the
:class:`~repro.netio.SocketTransport`:

* external enqueues go through the same :class:`ClusterRouter` as the
  simulated cluster, now sending over TCP to the owner's ``!shard``
  ingest endpoints;
* control (status, depth reads, membership changes, rebalance, drain)
  uses request/reply envelopes on the workers' ``!ctl`` endpoints,
  correlated by a ``ctlId`` property;
* quiescence is observed, not barriered: the coordinator polls worker
  status until every node reports idle with a stable local-step
  counter across consecutive polls.

The coordinator itself participates in the address book as node
``gate`` — the same transport machinery carries data and control.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Iterable

from ..cluster.membership import ClusterMembership
from ..cluster.router import ClusterRouter
from ..engine import errors as err
from ..network import build_envelope, parse_envelope
from ..obs import (MetricsRegistry, SpoolWriter, Tracer, merge_snapshots,
                   pump_stream_to_spool, stitch)
from ..qdl import compile_application
from ..xmldm import Attribute, Document, Element, parse
from .transport import SocketTransport
from .worker import CTL_REPLY_PATH, READY_BANNER, ctl_endpoint

GATE = "gate"

#: Per-worker stderr spool cap; one rotated generation is kept, so disk
#: use per worker is bounded at roughly twice this.
SPOOL_CAP_BYTES = 512 * 1024


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port that was just free (bind-and-release)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


class WorkerProcess:
    """One spawned node process plus its plumbing."""

    def __init__(self, name: str, proc: subprocess.Popen,
                 spool: SpoolWriter):
        self.name = name
        self.proc = proc
        self.spool = spool

    @property
    def stderr_path(self) -> str:
        return self.spool.path

    def failure_detail(self) -> str:
        tail = self.spool.tail(2000)
        return (f"worker {self.name!r} exited with "
                f"code {self.proc.returncode} "
                f"(spool: {self.stderr_path})"
                + (f"; stderr tail:\n{tail}" if tail.strip() else ""))


class ProcessCluster:
    """A Demaq cluster of OS processes behind a ClusterServer-like API."""

    def __init__(self, app, nodes: int | Iterable[str] = 2,
                 data_dir: str | None = None,
                 host: str = "127.0.0.1",
                 server_kwargs: dict | None = None,
                 boot_timeout: float = 30.0,
                 rpc_timeout: float = 30.0,
                 spool_cap_bytes: int = SPOOL_CAP_BYTES):
        if not isinstance(app, str):
            raise TypeError(
                "ProcessCluster needs the QDL source text (worker "
                "processes compile it themselves); got a compiled "
                f"{type(app).__name__}")
        self.app_source = app
        self.app = compile_application(app)
        self.host = host
        self.server_kwargs = dict(server_kwargs or {})
        self.boot_timeout = boot_timeout
        self.rpc_timeout = rpc_timeout
        self.spool_cap_bytes = spool_cap_bytes
        self._spool = data_dir or tempfile.mkdtemp(prefix="demaq-netio-")
        os.makedirs(self._spool, exist_ok=True)
        self._data_dir = data_dir
        names = [f"node{i}" for i in range(nodes)] \
            if isinstance(nodes, int) else list(nodes)

        self.addresses: dict[str, tuple[str, int]] = {
            GATE: (host, free_port(host))}
        for name in names:
            self.addresses[name] = (host, free_port(host))
        #: coordinator-side telemetry (router spans, gate transport)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(node=GATE)
        self.transport = SocketTransport(GATE, self.addresses,
                                         metrics=self.metrics)
        self.membership = ClusterMembership(self.app, names)
        self.router = ClusterRouter(self.app, self.membership,
                                    self.transport, via_network=True,
                                    tracer=self.tracer)

        self._replies: dict[str, Element] = {}
        self._ctl_seq = 0
        self.transport.register(f"demaq://{GATE}/{CTL_REPLY_PATH}",
                                self._on_ctl_reply)
        self.workers: dict[str, WorkerProcess] = {}
        try:
            for name in names:
                self.workers[name] = self._spawn(name)
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle --------------------------------------------------------

    def _spawn(self, name: str) -> WorkerProcess:
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        stderr_path = os.path.join(self._spool, f"{name}.stderr")
        data_dir = None if self._data_dir is None \
            else os.path.join(self._data_dir, name)
        config = {"name": name,
                  "app": self.app_source,
                  "addresses": {node: list(addr) for node, addr
                                in self.addresses.items()},
                  "nodes": self.node_names + ([name] if name
                                              not in self.node_names
                                              else []),
                  "data_dir": data_dir,
                  "server": self.server_kwargs}
        # The worker's stderr goes through a capped, rotating spool
        # rather than straight into an unbounded file: a crash-looping
        # or chatty worker can no longer fill the disk over a long run.
        spool = SpoolWriter(stderr_path, cap_bytes=self.spool_cap_bytes)
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.netio.worker"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, env=env, text=True)
        except BaseException:
            spool.close()
            raise
        pump_stream_to_spool(proc.stderr, spool)
        worker = WorkerProcess(name, proc, spool)
        proc.stdin.write(json.dumps(config) + "\n")
        proc.stdin.flush()
        self._await_ready(worker)
        return worker

    def _await_ready(self, worker: WorkerProcess) -> None:
        banner: list[str] = []

        def read_line() -> None:
            banner.append(worker.proc.stdout.readline())

        reader = threading.Thread(target=read_line, daemon=True)
        reader.start()
        reader.join(self.boot_timeout)
        if not banner or not banner[0].startswith(READY_BANNER):
            worker.proc.kill()
            worker.proc.wait()
            raise err.EngineError(
                f"worker {worker.name!r} failed to start: "
                + (worker.failure_detail() if banner
                   else f"no ready banner within {self.boot_timeout}s"))

    @property
    def node_names(self) -> list[str]:
        return list(self.membership.nodes)

    # -- control-plane RPC -------------------------------------------------------

    def _on_ctl_reply(self, envelope: Document, source: str) -> None:
        body, properties = parse_envelope(envelope)
        ctl_id = properties.get("ctlId")
        if isinstance(ctl_id, str) and body.root_element is not None:
            self._replies[ctl_id] = body.root_element

    def _rpc(self, node: str, op: str, attrs: dict | None = None,
             children: list[Element] | None = None,
             timeout: float | None = None) -> Element:
        """One request/reply round trip on a worker's control endpoint."""
        self._ctl_seq += 1
        ctl_id = f"ctl-{self._ctl_seq}"
        request = Element("ctl",
                          attributes=[Attribute("op", op)]
                          + [Attribute(key, str(value))
                             for key, value in (attrs or {}).items()],
                          children=list(children or []))
        failures: list[str] = []
        self.transport.send(
            ctl_endpoint(node),
            build_envelope(Document([request]),
                           {"ctlId": ctl_id,
                            "replyTo": f"demaq://{GATE}/{CTL_REPLY_PATH}"}),
            source=f"demaq://{GATE}/{CTL_REPLY_PATH}",
            on_failed=failures.append)
        deadline = time.monotonic() + (timeout or self.rpc_timeout)
        while time.monotonic() < deadline:
            self.transport.pump()
            if ctl_id in self._replies:
                return self._replies.pop(ctl_id)
            if failures:
                raise err.EngineError(
                    f"ctl {op!r} to {node!r} failed: {failures[0]}")
            self._check_workers()
            time.sleep(0.002)
        raise err.EngineError(
            f"ctl {op!r} to {node!r} timed out after "
            f"{timeout or self.rpc_timeout}s")

    def _check_workers(self) -> None:
        for worker in self.workers.values():
            code = worker.proc.poll()
            if code is not None and code != 0:
                raise err.EngineError(worker.failure_detail())

    # -- the ClusterServer-like surface ------------------------------------------

    def enqueue(self, queue: str, body, properties=None) -> str:
        """Route one message to its owner process over TCP."""
        return self.router.enqueue(queue, body, properties)

    def pump(self) -> int:
        return self.transport.pump()

    def status(self, node: str) -> dict[str, str]:
        reply = self._rpc(node, "status")
        return {attr.name.local_name: attr.value
                for attr in reply.attributes}

    def wait_idle(self, timeout: float = 60.0) -> int:
        """Poll until the whole cluster quiesces; returns local steps.

        Quiescent means: the coordinator transport has nothing in
        flight and every worker reports idle (empty scheduler, no
        pending sends, no due timers) with an unchanged cumulative
        step counter across two consecutive polls — the observational
        equivalent of the thread driver's quiescence barrier, reached
        without any shared memory.
        """
        deadline = time.monotonic() + timeout
        previous: tuple | None = None
        while time.monotonic() < deadline:
            self.transport.pump()
            self._check_workers()
            statuses = {name: self.status(name) for name in self.node_names}
            signature = tuple(sorted(
                (name, status["steps"]) for name, status in statuses.items()))
            all_idle = all(status["idle"] == "True"
                           for status in statuses.values()) \
                and self.transport.idle()
            if all_idle and signature == previous:
                return sum(int(status["steps"])
                           for status in statuses.values())
            previous = signature if all_idle else None
            time.sleep(0.01)
        raise err.EngineError(
            f"process cluster did not quiesce within {timeout}s")

    def queue_depth(self, queue: str) -> int:
        return sum(int(self._rpc(name, "depth",
                                 {"queue": queue}).attribute_value("n"))
                   for name in self.node_names)

    def shard_depths(self, queue: str) -> dict[str, int]:
        return {name: int(self._rpc(name, "depth",
                                    {"queue": queue}).attribute_value("n"))
                for name in sorted(self.node_names)}

    def queue_texts(self, queue: str) -> list[str]:
        """Shard contents node-major (sorted node names), like
        :meth:`ClusterServer.queue_texts`."""
        out: list[str] = []
        for name in sorted(self.node_names):
            reply = self._rpc(name, "texts", {"queue": queue})
            out.extend(element.string_value
                       for element in reply.child_elements("t"))
        return out

    def messages_processed(self) -> int:
        return sum(int(self.status(name)["processed"])
                   for name in self.node_names)

    # -- telemetry aggregation ----------------------------------------------------

    def worker_metrics(self, node: str) -> dict:
        """One worker's registry snapshot via its ``!ctl`` endpoint."""
        reply = self._rpc(node, "metrics")
        for element in reply.child_elements("metrics"):
            return json.loads(element.string_value)
        return {}

    def metrics_snapshot(self) -> dict:
        """Cluster-wide snapshot: coordinator + every worker, summed."""
        snapshots = [self.metrics.snapshot()]
        snapshots.extend(self.worker_metrics(name)
                         for name in self.node_names)
        return merge_snapshots(snapshots)

    def worker_spans(self, node: str, trace_id: str | None = None
                     ) -> list[dict]:
        attrs = {"trace": trace_id} if trace_id else None
        reply = self._rpc(node, "trace", attrs)
        for element in reply.child_elements("spans"):
            return json.loads(element.string_value)
        return []

    def trace(self, trace_id: str) -> list[dict]:
        """Stitch one message's lifecycle spans across all processes."""
        span_lists = [self.tracer.spans(trace_id)]
        span_lists.extend(self.worker_spans(name, trace_id)
                          for name in self.node_names)
        return stitch(span_lists, trace_id)

    # -- membership over the wire -------------------------------------------------

    def _membership_elements(self) -> list[Element]:
        return [Element("node",
                        attributes=[Attribute("name", name),
                                    Attribute("host", self.addresses[name][0]),
                                    Attribute("port",
                                              str(self.addresses[name][1]))])
                for name in self.node_names]

    def add_node(self, name: str | None = None) -> int:
        """Join a new worker process and rebalance; returns moved count.

        The new ring is announced to every worker over ``!ctl``
        (``reconfigure``), then each pre-existing worker pushes the
        unprocessed messages it no longer owns to their new owners'
        ingest endpoints — migration traffic rides the same socket
        transport as ordinary cluster forwards.
        """
        if name is None:
            index = len(self.workers)
            while f"node{index}" in self.workers:
                index += 1
            name = f"node{index}"
        veterans = self.node_names
        self.addresses[name] = (self.host, free_port(self.host))
        self.transport.addresses[name] = self.addresses[name]
        self.workers[name] = self._spawn(name)
        self.membership.join(name)
        self.router.keys = type(self.router.keys)(self.app, self.membership)
        roster = self._membership_elements()
        for node in self.node_names:
            self._rpc(node, "reconfigure", children=roster)
        moved = 0
        for node in veterans:
            reply = self._rpc(node, "rebalance")
            moved += int(reply.attribute_value("moved") or 0)
        self.wait_idle()
        return moved

    # -- shutdown ----------------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful cluster stop: every worker drains and exits 0."""
        for name, worker in list(self.workers.items()):
            if worker.proc.poll() is None:
                self._rpc(name, "stop", timeout=timeout)
        for worker in self.workers.values():
            try:
                worker.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
                raise err.EngineError(
                    f"worker {worker.name!r} did not drain within "
                    f"{timeout}s")
            if worker.proc.returncode != 0:
                raise err.EngineError(worker.failure_detail())

    def close(self) -> None:
        """Tear everything down, forcefully if needed."""
        for worker in getattr(self, "workers", {}).values():
            if worker.proc.poll() is None:
                worker.proc.terminate()
        for worker in getattr(self, "workers", {}).values():
            try:
                worker.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
            worker.spool.close()
        if getattr(self, "transport", None) is not None:
            self.transport.close()

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
