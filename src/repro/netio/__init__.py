"""Real network I/O: sockets, OS processes, and the live HTTP gateway.

The production counterpart of the simulated :mod:`repro.network`
backend (DESIGN.md §2):

* :class:`SocketTransport` — envelopes over real TCP behind the shared
  :class:`~repro.network.Transport` interface;
* :class:`ProcessCluster` — each node its own OS process (own store
  directory, own WAL), ingest/control/drain over sockets;
* :class:`HttpGateway` — the live SOAP-over-HTTP listener in front of
  the cluster router, serving the generated WSDL.

The simulated transport remains the deterministic default: nothing in
tier-1 imports sockets; this package is opt-in for deployments,
``tests/netio`` (gated by ``DEMAQ_NET_TESTS=1``), and the
``bench_netcluster`` benchmark.
"""

from .transport import SocketTransport

__all__ = ["HttpGateway", "ProcessCluster", "SocketTransport"]


def __getattr__(name: str):
    # Lazy: the process driver and gateway pull in subprocess/http
    # machinery that plain SocketTransport users don't need.
    if name == "ProcessCluster":
        from .process import ProcessCluster
        return ProcessCluster
    if name == "HttpGateway":
        from .gateway import HttpGateway
        return HttpGateway
    raise AttributeError(name)
