"""The TCP socket transport (real counterpart of the simulated Network).

A :class:`SocketTransport` is one node's view of the cluster network:
it listens on a TCP port for frames addressed to its local endpoints
and dials peers from a static *address book* (``node -> (host, port)``)
to deliver envelopes to theirs.  It implements the same
:class:`~repro.network.base.Transport` interface as the simulated
backend, so servers, routers, and gateways run unchanged over it.

Threading model — the part that keeps store access single-threaded:

* background threads (the listener, one reader per connection) only
  *queue* events: inbound ``send`` frames and completed/failed
  acknowledgements land in an event queue;
* :meth:`pump` — called from the owner's driver loop, exactly like the
  simulated ``Network.pump`` — drains that queue: it parses inbound
  envelopes, runs the registered handlers, writes acknowledgements, and
  fires sender callbacks.  All handler and callback execution happens on
  the pumping thread.

Delivery semantics match the simulated backend's §3.6 taxonomy:

* unreachable peer / unknown endpoint / endpoint down →
  ``disconnectedTransport``;
* injected failure (``fail_next``), handler error, or an
  acknowledgement missing past ``ack_timeout`` → ``deliveryTimeout``.

An acknowledgement is written only *after* the handler returned, so a
delivered ack means the receiving server has committed the enqueue —
at-least-once end to end (a crash between handler and ack duplicates,
never loses, matching WS-RM and the rebalancer's stance).
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from typing import Callable, Optional

from ..backoff import BackoffPolicy
from ..config import read_field
from ..network.base import (DISCONNECTED, TIMEOUT, Handler, OnDelivered,
                            OnFailed, Transport, collision_error,
                            endpoint_node)
from ..xmldm import Document, parse, serialize
from .wire import WireError, recv_frame, send_frame

Address = tuple[str, int]


class ChaosPlan:
    """Deterministic sender-side frame fault injection.

    Budgets are consumed frame by frame in a fixed order — the first
    ``drop`` outbound frames are discarded (the sender's ack deadline
    turns each into ``deliveryTimeout``), the next ``duplicate`` are
    written twice, the next ``delay`` are written ``delay_seconds``
    late (later frames overtake them: genuine reordering).  Determinism
    is the point: a test states exactly which frames misbehave.

    Built from the environment (``DEMAQ_CHAOS_DROP`` /
    ``DEMAQ_CHAOS_DUP`` / ``DEMAQ_CHAOS_DELAY`` /
    ``DEMAQ_CHAOS_DELAY_SECONDS``) for worker processes, or assigned
    directly to ``SocketTransport.chaos`` by tests.
    """

    def __init__(self, drop: int = 0, duplicate: int = 0, delay: int = 0,
                 delay_seconds: float = 0.01):
        self._lock = threading.Lock()
        self.drop_budget = drop
        self.dup_budget = duplicate
        self.delay_budget = delay
        self.delay_seconds = delay_seconds
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def next_action(self) -> str | None:
        with self._lock:
            if self.drop_budget > 0:
                self.drop_budget -= 1
                self.dropped += 1
                return "drop"
            if self.dup_budget > 0:
                self.dup_budget -= 1
                self.duplicated += 1
                return "dup"
            if self.delay_budget > 0:
                self.delay_budget -= 1
                self.delayed += 1
                return "delay"
        return None

    @classmethod
    def from_env(cls) -> "ChaosPlan | None":
        drop = read_field("chaos_drop")
        dup = read_field("chaos_dup")
        delay = read_field("chaos_delay")
        if not (drop or dup or delay):
            return None
        return cls(drop=drop, duplicate=dup, delay=delay,
                   delay_seconds=read_field("chaos_delay_seconds"))


class _Peer:
    """One outbound connection to another node."""

    def __init__(self, node: str, sock: socket.socket):
        self.node = node
        self.sock = sock
        self.write_lock = threading.Lock()
        self.pending_ids: set[int] = set()
        self.alive = True

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _PendingSend:
    """An outbound frame awaiting its acknowledgement."""

    __slots__ = ("on_delivered", "on_failed", "deadline", "peer")

    def __init__(self, on_delivered: Optional[OnDelivered],
                 on_failed: Optional[OnFailed], deadline: float,
                 peer: _Peer | None):
        self.on_delivered = on_delivered
        self.on_failed = on_failed
        self.deadline = deadline
        self.peer = peer


class SocketTransport(Transport):
    """Envelope transport over real TCP sockets.

    *node* is this process's cluster-node name; *addresses* maps every
    node name (including this one) to its ``(host, port)``.  Port 0 in
    the local entry binds an ephemeral port — read it back from
    :attr:`port` after construction.
    """

    def __init__(self, node: str, addresses: dict[str, Address],
                 ack_timeout: float = 10.0,
                 connect_timeout: float = 2.0,
                 metrics=None):
        self.node = node
        self.addresses = dict(addresses)
        self.ack_timeout = ack_timeout
        self.connect_timeout = connect_timeout
        #: Fault injection for outbound frames (None = no chaos).
        self.chaos: ChaosPlan | None = ChaosPlan.from_env()
        #: Full-jitter budget for refused connects (PR 8 backoff helper).
        self.connect_backoff = BackoffPolicy(
            base=read_field("connect_backoff"), cap=0.08)
        self.connect_retries = read_field("connect_retries")
        self.connect_retry_sleeps = 0
        #: Replication fast path: ``repl`` frames are handed to this
        #: callable on the *reader* thread (see repl_send).
        self._repl_handler: Callable[[dict], dict | None] | None = None

        self._mutex = threading.Lock()
        #: serializes concurrent pump() callers (e.g. an HTTP gateway
        #: pump thread next to a coordinator RPC loop) so handlers and
        #: callbacks still never run concurrently with each other
        self._pump_lock = threading.Lock()
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._fail_next: dict[str, int] = {}
        self._peers: dict[str, _Peer] = {}
        self._pending: dict[int, _PendingSend] = {}
        #: ("deliver", frame, conn, write_lock) | ("complete", pending, ok, marker)
        self._events: deque = deque()
        self._send_ids = itertools.count(1)
        self._closed = False
        self.sent = 0
        self.delivered = 0
        self.failed = 0
        #: §3.6 failure taxonomy: marker -> count, mirrored on /metrics
        self.failed_by_marker: dict[str, int] = {}
        #: exceptions raised by handlers during pump (ack'd as failures)
        self.handler_errors: list[BaseException] = []
        if metrics is not None:
            metrics.collect("demaq_net_frames_sent_total",
                            lambda: self.sent, node=node,
                            help="Envelope frames sent")
            metrics.collect("demaq_net_frames_delivered_total",
                            lambda: self.delivered, node=node,
                            help="Inbound frames handled and acknowledged")
            metrics.collect("demaq_net_frames_failed_total",
                            lambda: self.failed, node=node,
                            help="Deliveries that failed (any marker)")
            for marker in (DISCONNECTED, TIMEOUT):
                metrics.collect(
                    "demaq_net_delivery_failures_total",
                    lambda m=marker: self.failed_by_marker.get(m, 0),
                    node=node, marker=marker,
                    help="Delivery failures by §3.6 marker")
            metrics.collect("demaq_net_pending",
                            lambda: self.pending(), kind="gauge", node=node,
                            help="Frames queued or awaiting acknowledgement")

        host, port = self.addresses.get(node, ("127.0.0.1", 0))
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self.addresses[node] = (self.host, self.port)
        self._server_conns: list[socket.socket] = []
        self._threads: list[threading.Thread] = []
        self._spawn(self._accept_loop, f"netio-accept-{node}")

    # -- topology ------------------------------------------------------------

    def register(self, endpoint: str, handler: Handler) -> None:
        with self._mutex:
            if endpoint in self._handlers:
                raise collision_error(endpoint)
            self._handlers[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        with self._mutex:
            self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: str) -> bool:
        """Local endpoints: exact; remote: does the node resolve at all?

        A remote peer's registry is not observable without a probe, so
        any endpoint of a known node counts as reachable — the send
        path reports ``disconnectedTransport`` if the peer then rejects
        or cannot be reached.
        """
        with self._mutex:
            if endpoint in self._handlers:
                return True
        owner = endpoint_node(endpoint)
        return owner is not None and owner != self.node \
            and owner in self.addresses

    def set_down(self, endpoint: str, down: bool = True) -> None:
        with self._mutex:
            if down:
                self._down.add(endpoint)
            else:
                self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        with self._mutex:
            return endpoint in self._down

    def fail_next(self, endpoint: str, count: int = 1) -> None:
        """Force the next *count* deliveries to this local endpoint to
        fail with ``deliveryTimeout`` (receive-side injection)."""
        with self._mutex:
            self._fail_next[endpoint] = \
                self._fail_next.get(endpoint, 0) + count

    # -- sending -------------------------------------------------------------

    def send(self, endpoint: str, envelope: Document, source: str = "",
             on_delivered: OnDelivered | None = None,
             on_failed: OnFailed | None = None) -> None:
        """Frame the envelope toward its owner node; never blocks on the
        outcome (callbacks fire on a later :meth:`pump`)."""
        self.sent += 1
        owner = endpoint_node(endpoint)
        frame = {"kind": "send", "id": next(self._send_ids),
                 "endpoint": endpoint, "source": source,
                 "envelope": serialize(envelope)}
        if self.is_down(endpoint):
            self._complete_later(on_delivered, on_failed, False, DISCONNECTED)
            return
        if owner is None or owner not in self.addresses:
            self._complete_later(on_delivered, on_failed, False, DISCONNECTED)
            return
        if owner == self.node:
            # Loopback: same serialize -> parse hop, no TCP round trip.
            # The same receive-side checks apply before queueing.
            callbacks = _PendingSend(on_delivered, on_failed, 0.0, None)
            with self._mutex:
                if self._fail_next.get(endpoint, 0) > 0:
                    self._fail_next[endpoint] -= 1
                    self._events.append(("complete", callbacks, False,
                                         TIMEOUT))
                elif endpoint not in self._handlers:
                    self._events.append(("complete", callbacks, False,
                                         DISCONNECTED))
                else:
                    self._events.append(("deliver", frame, None, callbacks))
            return
        pending = _PendingSend(on_delivered, on_failed,
                               time.monotonic() + self.ack_timeout, None)
        with self._mutex:
            self._pending[frame["id"]] = pending
        if not self._write_to(owner, frame, pending):
            with self._mutex:
                self._pending.pop(frame["id"], None)
            self._complete_later(on_delivered, on_failed, False, DISCONNECTED)

    def _write_to(self, owner: str, frame: dict,
                  pending: _PendingSend) -> bool:
        """Write over the cached peer connection, redialing once."""
        for attempt in (0, 1):
            try:
                peer = self._peer(owner, fresh=attempt > 0)
            except OSError:
                return False
            try:
                if self._write_frame(peer, frame):
                    with self._mutex:
                        peer.pending_ids.add(frame["id"])
                    pending.peer = peer
                    return True
            except (OSError, WireError):
                self._drop_peer(peer)
        return False

    def _write_frame(self, peer: _Peer, frame: dict) -> bool:
        """Write one frame, applying any chaos plan on the way out.

        A dropped frame still reports True — the loss must look like
        the network ate it, so the sender's ack deadline (not an error
        path) discovers it.  Delayed frames are written by a timer so
        later frames genuinely overtake them.
        """
        action = self.chaos.next_action() if self.chaos is not None else None
        if action == "drop":
            return True
        if action == "delay":
            def later() -> None:
                try:
                    with peer.write_lock:
                        send_frame(peer.sock, frame)
                except (OSError, WireError):
                    pass    # sender's deadline covers the loss
            timer = threading.Timer(self.chaos.delay_seconds, later)
            timer.daemon = True
            timer.start()
            return True
        with peer.write_lock:
            send_frame(peer.sock, frame)
            if action == "dup":
                send_frame(peer.sock, frame)
        return True

    def _peer(self, owner: str, fresh: bool = False) -> _Peer:
        with self._mutex:
            peer = self._peers.get(owner)
            if peer is not None and peer.alive and not fresh:
                return peer
        sock = self._dial(owner)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        peer = _Peer(owner, sock)
        with self._mutex:
            old = self._peers.get(owner)
            self._peers[owner] = peer
        if old is not None:
            old.close()
        self._spawn(lambda: self._reader(peer.sock, peer),
                    f"netio-peer-{self.node}-{owner}")
        return peer

    def _dial(self, owner: str) -> socket.socket:
        """Connect to *owner* with a small full-jitter retry budget.

        A refused connect during worker boot or a failover window is
        transient — the listener is milliseconds away from being back.
        Only connection-refused/reset retries; anything else (timeout,
        unroutable) propagates immediately and maps to
        ``disconnectedTransport`` at the caller.
        """
        attempts = max(1, self.connect_retries)
        for attempt in range(1, attempts + 1):
            try:
                return socket.create_connection(
                    self.addresses[owner], timeout=self.connect_timeout)
            except (ConnectionRefusedError, ConnectionResetError):
                if attempt >= attempts:
                    raise
                self.connect_retry_sleeps += 1
                self.connect_backoff.sleep(attempt)
        raise OSError(f"unreachable: {owner}")   # pragma: no cover

    def _drop_peer(self, peer: _Peer) -> None:
        """Retire a dead outbound connection; fail its in-flight sends."""
        with self._mutex:
            if self._peers.get(peer.node) is peer:
                del self._peers[peer.node]
            orphans = [self._pending.pop(send_id)
                       for send_id in sorted(peer.pending_ids)
                       if send_id in self._pending]
            peer.pending_ids.clear()
            for pending in orphans:
                self._events.append(("complete", pending, False,
                                     DISCONNECTED))
        peer.close()

    def _complete_later(self, on_delivered, on_failed, ok: bool,
                        marker: str | None) -> None:
        pending = _PendingSend(on_delivered, on_failed, 0.0, None)
        with self._mutex:
            self._events.append(("complete", pending, ok, marker))

    # -- replication fast path -------------------------------------------------

    def set_repl_handler(self,
                         handler: Callable[[dict], dict | None]) -> None:
        """Install the handler for inbound ``repl`` frames.

        Unlike envelope delivery, replication frames bypass the event
        queue and run on the *reader* thread (the WAL-receiver model):
        ingest commits execute inside :meth:`pump` holding the pump
        lock, and a ``replica-ack`` commit waiting there for an
        acknowledgement would deadlock if acks also needed the pump.
        The handler's return value (ack or fence) is written straight
        back on the same connection.
        """
        self._repl_handler = handler

    def repl_send(self, node: str, frame: dict) -> bool:
        """Write one replication frame to *node*; True if it left.

        Fire-and-forget at the transport level — the replication
        protocol has its own acknowledgement (LSN acks riding back as
        ``repl`` frames), so there is no pending-send bookkeeping and
        no ack deadline here.
        """
        if node == self.node or node not in self.addresses:
            return False
        frame = dict(frame)
        frame["kind"] = "repl"
        for attempt in (0, 1):
            try:
                peer = self._peer(node, fresh=attempt > 0)
            except OSError:
                return False
            try:
                return self._write_frame(peer, frame)
            except (OSError, WireError):
                self._drop_peer(peer)
        return False

    def _on_repl_frame(self, frame: dict, conn, write_lock) -> None:
        handler = self._repl_handler
        if handler is None:
            return
        try:
            reply = handler(frame)
        except BaseException as exc:    # noqa: BLE001 - reader must survive
            self.handler_errors.append(exc)
            return
        if reply:
            try:
                with write_lock:
                    send_frame(conn, reply)
            except (OSError, WireError):
                pass    # shipper resends; the protocol is idempotent

    # -- pumping (the only thread that runs handlers/callbacks) ---------------

    def pump(self, now: float | None = None) -> int:
        with self._pump_lock:
            return self._pump()

    def _pump(self) -> int:
        handled = 0
        self._expire_pendings()
        while True:
            with self._mutex:
                if not self._events:
                    return handled
                event = self._events.popleft()
            handled += 1
            if event[0] == "deliver":
                self._dispatch(event[1], event[2], event[3])
            else:
                _, pending, ok, marker = event
                if ok:
                    if pending.on_delivered is not None:
                        pending.on_delivered()
                else:
                    self.failed += 1
                    self._note_failure(marker)
                    if pending.on_failed is not None:
                        pending.on_failed(marker or TIMEOUT)

    def _note_failure(self, marker: str | None) -> None:
        key = marker or TIMEOUT
        self.failed_by_marker[key] = self.failed_by_marker.get(key, 0) + 1

    def _dispatch(self, frame: dict, conn, extra) -> None:
        """Run one inbound delivery; *extra* is the connection's write
        lock (TCP) or the sender's callbacks (loopback)."""
        endpoint = frame.get("endpoint", "")
        with self._mutex:
            handler = self._handlers.get(endpoint)
        marker: str | None = None
        if handler is None:
            marker = DISCONNECTED
        else:
            try:
                envelope = parse(frame["envelope"])
                handler(envelope, frame.get("source", ""))
            except BaseException as exc:
                self.handler_errors.append(exc)
                marker = TIMEOUT
        if marker is None:
            self.delivered += 1
        else:
            self.failed += 1
            self._note_failure(marker)
        if conn is None:       # loopback: fire the callbacks in place
            callbacks: _PendingSend = extra
            if marker is None:
                if callbacks.on_delivered is not None:
                    callbacks.on_delivered()
            elif callbacks.on_failed is not None:
                callbacks.on_failed(marker)
            return
        ack = {"kind": "ack", "id": frame["id"],
               "ok": marker is None, "marker": marker}
        try:
            with extra:
                send_frame(conn, ack)
        except (OSError, WireError):
            pass               # sender's deadline covers the lost ack

    # -- background readers ----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._mutex:
                self._server_conns.append(conn)
            self._spawn(lambda c=conn: self._reader(c, None),
                        f"netio-conn-{self.node}")

    def _reader(self, conn: socket.socket, peer: _Peer | None) -> None:
        """Read frames until EOF; queue work, never run handlers here."""
        write_lock = peer.write_lock if peer is not None \
            else threading.Lock()
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    break
                kind = frame.get("kind")
                if kind == "send":
                    self._on_send_frame(frame, conn, write_lock)
                elif kind == "ack":
                    self._on_ack_frame(frame)
                elif kind == "repl":
                    self._on_repl_frame(frame, conn, write_lock)
        except (OSError, WireError):
            pass
        finally:
            if peer is not None:
                self._drop_peer(peer)
            else:
                try:
                    conn.close()
                except OSError:
                    pass

    def _on_send_frame(self, frame: dict, conn, write_lock) -> None:
        """Fast-path failure checks happen here; delivery waits for pump."""
        endpoint = frame.get("endpoint", "")
        with self._mutex:
            if self._fail_next.get(endpoint, 0) > 0:
                self._fail_next[endpoint] -= 1
                marker = TIMEOUT
            elif endpoint in self._down or endpoint not in self._handlers:
                marker = DISCONNECTED
            else:
                self._events.append(("deliver", frame, conn, write_lock))
                return
            self.failed += 1
            key = marker or TIMEOUT
            self.failed_by_marker[key] = \
                self.failed_by_marker.get(key, 0) + 1
        ack = {"kind": "ack", "id": frame["id"], "ok": False,
               "marker": marker}
        try:
            with write_lock:
                send_frame(conn, ack)
        except (OSError, WireError):
            pass

    def _on_ack_frame(self, frame: dict) -> None:
        with self._mutex:
            pending = self._pending.pop(frame.get("id"), None)
            if pending is None:
                return
            if pending.peer is not None:
                pending.peer.pending_ids.discard(frame.get("id"))
            self._events.append(("complete", pending,
                                 bool(frame.get("ok")),
                                 frame.get("marker")))

    def _expire_pendings(self) -> None:
        now = time.monotonic()
        with self._mutex:
            expired = [send_id for send_id, pending in self._pending.items()
                       if pending.deadline <= now]
            for send_id in expired:
                pending = self._pending.pop(send_id)
                if pending.peer is not None:
                    pending.peer.pending_ids.discard(send_id)
                self._events.append(("complete", pending, False, TIMEOUT))

    # -- introspection ----------------------------------------------------------

    def pending(self) -> int:
        with self._mutex:
            return len(self._pending) + len(self._events)

    def idle(self) -> bool:
        """No queued events and nothing awaiting acknowledgement."""
        return self.pending() == 0

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            # shutdown() wakes a thread blocked in accept(); a bare
            # close() would leave it holding the port bound.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._mutex:
            peers = list(self._peers.values())
            conns = list(self._server_conns)
            self._peers.clear()
            self._server_conns.clear()
        for peer in peers:
            peer.close()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=1.0)

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
