"""Live HTTP gateway: the cluster's front door for external producers.

The Demaq paper's gateway queues speak SOAP over a real transport; this
module provides that transport for the process cluster.  An
:class:`HttpGateway` wraps anything with the cluster surface
(``app`` + ``enqueue(queue, body, properties)``, optionally ``pump()``)
— a :class:`~repro.netio.ProcessCluster`, a
:class:`~repro.cluster.ClusterServer`, even a bare ``DemaqServer`` —
and serves:

* ``POST /enqueue/<queue>`` — accepts a SOAP envelope (§4.2: body +
  property header blocks) or a bare XML document, routes it through the
  cluster router to the owning node, and answers ``202 Accepted`` with
  the owner's name (at-least-once hand-off, matching WS-RM: the ack
  means *routed*, the router's §3.6 failover handles delivery faults);
* ``GET /wsdl`` — the generated WSDL view of the application
  (:func:`~repro.network.build_wsdl`) with this gateway's base URL as
  the service address, so the paper's "interface description derives
  from the queue definitions" story is live;
* ``GET /health`` — liveness probe for scripts and CI;
* ``GET /metrics`` — Prometheus text exposition of the whole cluster:
  the target's ``metrics_snapshot()`` (coordinator + every worker over
  the ctl channel) merged with the gateway's own registry.

The gateway is also where lifecycle traces begin: each accepted POST
without a ``traceId`` property gets one minted, recorded as the
``received`` span, and answered back in the ``<routed trace="..."/>``
response so callers can follow their message across the cluster.

A background pump thread drives the target's ``pump()`` so routed
messages actually move while HTTP threads only enqueue; the transport's
pump lock keeps that safe next to coordinator RPC polling.
"""

from __future__ import annotations

import inspect
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..engine import errors as err
from ..network import build_wsdl, parse_envelope
from ..network.base import DISCONNECTED, TIMEOUT
from ..network.wsdl import WSDLError
from ..obs import (MetricsRegistry, Tracer, ensure_trace, merge_snapshots,
                   render_prometheus)
from ..xmldm import XMLError, parse

ENQUEUE_PREFIX = "/enqueue/"
_ENVELOPE_LOCAL = "Envelope"

#: §3.6 transport markers the gateway maps to 503 + ``Retry-After`` —
#: the owner is momentarily unreachable (crash window before failover,
#: network fault); the producer should back off and retry.
_RETRYABLE_MARKERS = (DISCONNECTED, TIMEOUT)


class HttpGateway:
    """Serve one cluster over HTTP; context-managed like the cluster."""

    def __init__(self, cluster, host: str = "127.0.0.1", port: int = 0,
                 pump_interval: float = 0.002,
                 confirm_timeout: float = 2.0,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None):
        self.cluster = cluster
        self.app = cluster.app
        self.pump_interval = pump_interval
        self.confirm_timeout = confirm_timeout
        # Targets whose enqueue reports delivery outcomes (the cluster
        # router) get the 503/Retry-After mapping; bare servers keep
        # the fire-and-forget 202.
        try:
            parameters = inspect.signature(cluster.enqueue).parameters
        except (TypeError, ValueError):        # builtins, C callables
            parameters = {}
        self._confirm_delivery = "on_failed" in parameters
        # Share the cluster's registry/tracer when it has them, so the
        # gateway's "received" spans stitch with the router's "routed".
        self.metrics = metrics or getattr(cluster, "metrics", None) \
            or MetricsRegistry()
        self.tracer = tracer or getattr(cluster, "tracer", None) \
            or Tracer(node="gateway")
        self._accepted = self.metrics.counter(
            "demaq_gateway_accepted_total", "POSTs routed into the cluster")
        self._rejected = self.metrics.counter(
            "demaq_gateway_rejected_total", "POSTs refused")
        self._request_timer = self.metrics.histogram(
            "demaq_gateway_request_seconds",
            "Enqueue request latency", route="enqueue")

        gateway = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self) -> None:
                gateway._handle_post(self)

            def do_GET(self) -> None:
                gateway._handle_get(self)

            def log_message(self, *args) -> None:   # quiet by default
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._closed = False
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"demaq-http-{self.port}", daemon=True)
        self._serve_thread.start()
        self._pump_thread: threading.Thread | None = None
        if hasattr(cluster, "pump"):
            self._pump_thread = threading.Thread(
                target=self._pump_loop,
                name=f"demaq-http-pump-{self.port}", daemon=True)
            self._pump_thread.start()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # registry-backed views; benchmarks and tests read these as ints
    @property
    def accepted(self) -> int:
        return self._accepted.value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    # -- request handling --------------------------------------------------------

    def _reject(self, reason: str) -> None:
        """Count a refused POST, both total and by reason label."""
        self._rejected.inc()
        self.metrics.counter("demaq_gateway_rejected_total",
                             "POSTs refused", reason=reason).inc()

    def _handle_post(self, request: BaseHTTPRequestHandler) -> None:
        timing = self.metrics.enabled
        started = time.perf_counter() if timing else 0.0
        if not request.path.startswith(ENQUEUE_PREFIX):
            self._respond(request, 404, "no such resource\n")
            return
        queue = request.path[len(ENQUEUE_PREFIX):]
        if queue not in self.app.queues:
            self._reject("unknown-queue")
            self._respond(request, 404, f"unknown queue {queue!r}\n")
            return
        length = int(request.headers.get("Content-Length") or 0)
        payload = request.rfile.read(length)
        try:
            document = parse(payload.decode("utf-8"))
        except (UnicodeDecodeError, XMLError) as exc:
            self._reject("bad-xml")
            self._respond(request, 400, f"bad XML: {exc}\n")
            return
        root = document.root_element
        if root is not None and root.name.local_name == _ENVELOPE_LOCAL:
            body, properties = parse_envelope(document)
        else:
            body, properties = document, {}
        trace_id = None
        if self.tracer.enabled:
            # The system boundary mints the correlation id (§4.2 entry
            # point); from here it rides the envelope properties.
            properties, trace_id = ensure_trace(properties)
            self.tracer.record(trace_id, "received", queue=queue,
                               source="http")
        outcome: dict[str, str] = {}
        settled = threading.Event()

        def on_delivered() -> None:
            settled.set()

        def on_failed(marker: str) -> None:
            outcome["marker"] = marker
            settled.set()

        kwargs = {"on_delivered": on_delivered, "on_failed": on_failed} \
            if self._confirm_delivery else {}
        try:
            owner = self.cluster.enqueue(queue, body, properties, **kwargs)
        except (err.EngineError, ValueError) as exc:
            self._reject("enqueue-failed")
            self._respond(request, 400, f"enqueue failed: {exc}\n")
            return
        if self._confirm_delivery:
            # Bounded wait for the transport verdict (the pump thread
            # drives it).  A connect-refused owner fails synchronously;
            # an ack past its deadline fails later — if neither arrives
            # within the window, answer 202: the message is routed and
            # §3.6 failover owns it from here (at-least-once hand-off).
            settled.wait(self.confirm_timeout)
            marker = outcome.get("marker")
            if marker in _RETRYABLE_MARKERS:
                self._reject(marker)
                self._respond(request, 503,
                              f"delivery to owner {owner!r} of queue "
                              f"{queue!r} failed ({marker}); retry later\n",
                              headers={"Retry-After": "1"})
                if timing:
                    self._request_timer.observe(
                        time.perf_counter() - started)
                return
        self._accepted.inc()
        trace_attr = f" trace=\"{trace_id}\"" if trace_id else ""
        self._respond(request, 202,
                      f"<routed queue=\"{queue}\" node=\"{owner}\""
                      f"{trace_attr}/>\n",
                      content_type="text/xml")
        if timing:
            self._request_timer.observe(time.perf_counter() - started)

    def _handle_get(self, request: BaseHTTPRequestHandler) -> None:
        if request.path == "/wsdl":
            try:
                wsdl = build_wsdl(self.app, self.base_url)
            except WSDLError as exc:
                self._respond(request, 500, f"no WSDL: {exc}\n")
                return
            self._respond(request, 200, wsdl, content_type="text/xml")
        elif request.path == "/health":
            self._respond(request, 200, "ok\n")
        elif request.path == "/metrics":
            try:
                text = render_prometheus(self._aggregate_snapshot())
            except err.EngineError as exc:
                self._respond(request, 503, f"metrics unavailable: {exc}\n")
                return
            self._respond(request, 200, text,
                          content_type="text/plain; version=0.0.4")
        else:
            self._respond(request, 404, "no such resource\n")

    def _aggregate_snapshot(self) -> dict:
        """Cluster-wide metrics merged with the gateway's own registry.

        A ProcessCluster scrapes every worker over ctl; targets without
        ``metrics_snapshot`` (a bare server, a simulated cluster) expose
        their own registry; anything else still serves gateway counters.
        """
        cluster_registry = getattr(self.cluster, "metrics", None)
        if hasattr(self.cluster, "metrics_snapshot"):
            # covers the coordinator registry — only add our own when
            # we are not sharing it (explicit metrics= at construction)
            snapshots = [self.cluster.metrics_snapshot()]
            if self.metrics is not cluster_registry:
                snapshots.append(self.metrics.snapshot())
        else:
            snapshots = [self.metrics.snapshot()]
            if cluster_registry is not None \
                    and cluster_registry is not self.metrics:
                snapshots.append(cluster_registry.snapshot())
        return merge_snapshots(snapshots)

    @staticmethod
    def _respond(request: BaseHTTPRequestHandler, code: int, text: str,
                 content_type: str = "text/plain",
                 headers: dict[str, str] | None = None) -> None:
        payload = text.encode("utf-8")
        request.send_response(code)
        request.send_header("Content-Type",
                            f"{content_type}; charset=utf-8")
        request.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            request.send_header(name, value)
        request.end_headers()
        request.wfile.write(payload)

    # -- background pumping ------------------------------------------------------

    def _pump_loop(self) -> None:
        while not self._closed:
            if self.cluster.pump() == 0:
                time.sleep(self.pump_interval)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._serve_thread.join(timeout=5.0)
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=5.0)

    def __enter__(self) -> "HttpGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
