"""Frame protocol of the socket transport.

One frame = a 4-byte big-endian length prefix + a UTF-8 JSON object.
Envelopes travel as serialized XML inside the JSON (the
serialize → TCP → parse hop the round-trip tests pin), so the wire
format is self-describing and debuggable with ``nc``.

Frame kinds:

* ``send`` — ``{id, endpoint, source, envelope}``: deliver *envelope*
  (serialized SOAP XML) to *endpoint* on the receiving node;
* ``ack`` — ``{id, ok, marker}``: the receiver's delivery outcome for
  the ``send`` with the same id.  ``ok=False`` carries a §3.6 failure
  marker (``disconnectedTransport``, ``deliveryTimeout``).

Acknowledgements are sent *after* the receiving server has handled the
envelope (for ingest: after the enqueue transaction committed), so a
delivered ack means the message is owned by the receiver — the WS-RM
at-least-once stance.
"""

from __future__ import annotations

import json
import socket
import struct

_LENGTH = struct.Struct(">I")

#: Upper bound on one frame; a parsed length beyond it means the stream
#: is corrupt (or hostile) and the connection must be dropped.
MAX_FRAME = 64 * 1024 * 1024


class WireError(Exception):
    """Corrupt or oversized frame on a transport connection."""


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one frame; raises OSError on a dead connection."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds MAX_FRAME")
    body = _recv_exact(sock, length)
    if body is None:
        raise WireError("connection closed mid-frame")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError("frame payload must be a JSON object")
    return payload


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """*count* bytes, or None on EOF at the boundary; WireError inside."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
