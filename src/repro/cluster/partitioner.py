"""Consistent-hash partitioning of queues across cluster nodes.

The Demaq paper (§5, "Demaq applications may be distributed among
several queue systems") leaves placement to the application; this module
makes it a first-class runtime concern.  A :class:`HashRing` maps every
*partition key* — a queue name, or ``(queue, slice key)`` for sliced
queues — to an owner node.  Sliced queues are therefore spread across
the whole cluster by slice key while each individual slice stays wholly
local, which preserves slice-rule semantics (``qs:slice()`` only ever
needs one node's store).

Virtual nodes smooth the distribution: each physical node occupies
``replicas`` points on the ring, so load spreads evenly and a
join/leave only moves the keys adjacent to the affected node's points
(minimal disruption).  Hashing uses :mod:`hashlib` — not Python's
salted ``hash()`` — so placement is stable across processes and runs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

DEFAULT_REPLICAS = 64

#: separator that cannot appear in node names / queue names
_SEP = "\x1f"


def _hash(value: str) -> int:
    """A stable 64-bit position on the ring."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def partition_key(queue: str, slice_key: object | None = None) -> str:
    """The ring key for a message: per-queue, or per-slice when sliced."""
    if slice_key is None:
        return queue
    return f"{queue}{_SEP}{slice_key}"


class HashRing:
    """A consistent-hash ring with virtual nodes."""

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._ring: list[tuple[int, str]] = []   # sorted (position, node)
        self._positions: list[int] = []          # parallel sorted positions
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for index in range(self.replicas):
            position = _hash(f"{node}{_SEP}vn{index}")
            at = bisect.bisect_left(self._ring, (position, node))
            self._ring.insert(at, (position, node))
            self._positions.insert(at, position)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        kept = [entry for entry in self._ring if entry[1] != node]
        self._ring = kept
        self._positions = [position for position, _ in kept]

    # -- lookups -----------------------------------------------------------------

    def owner(self, queue: str, slice_key: object | None = None) -> str:
        """The node owning *queue* (or the slice of *queue*)."""
        return self.owner_of_key(partition_key(queue, slice_key))

    def owner_of_key(self, key: str) -> str:
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        index = bisect.bisect_right(self._positions, _hash(key))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def preference_list(self, queue: str, slice_key: object | None = None,
                        count: Optional[int] = None) -> list[str]:
        """Distinct nodes in ring order starting at the key's owner.

        The first entry is the owner; the rest are the failover
        successors a router walks when the owner is unreachable.
        """
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        wanted = len(self._nodes) if count is None else count
        start = bisect.bisect_right(self._positions,
                                    _hash(partition_key(queue, slice_key)))
        out: list[str] = []
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in out:
                out.append(node)
                if len(out) >= wanted:
                    break
        return out

    def successors(self, node: str, count: int = 1) -> list[str]:
        """Up to *count* distinct other nodes after *node*'s first vnode.

        The replica set for a shard (DESIGN.md §9): deterministic given
        the membership, independent of any key, and stable under the
        same minimal-disruption property as ownership — a join/leave
        only reassigns the replicas adjacent to the affected node.
        """
        if node not in self._nodes:
            raise LookupError(f"node {node!r} is not on the ring")
        if count <= 0 or len(self._nodes) < 2:
            return []
        start = bisect.bisect_right(self._positions,
                                    _hash(f"{node}{_SEP}vn0"))
        out: list[str] = []
        for offset in range(len(self._ring)):
            other = self._ring[(start + offset) % len(self._ring)][1]
            if other != node and other not in out:
                out.append(other)
                if len(out) >= count:
                    break
        return out

    # -- diagnostics ----------------------------------------------------------------

    def load_distribution(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of *keys* each node owns (balance diagnostics)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner_of_key(key)] += 1
        return counts
