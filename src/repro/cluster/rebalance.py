"""Rebalancing: move messages of reassigned partitions to new owners.

Executes a :class:`~repro.cluster.membership.RebalancePlan`:

* whole-queue **moves** ship every live message of the queue from the
  old owner's store to the new owner's — under MVCC the export reads a
  registered store snapshot (a consistent cut that pins its versions
  against purge) instead of quiescing the source's readers under one
  long latch hold;
* **rescans** walk each node's local shard of every per-message-placed
  queue (sliced queues and echo queues) and move the messages that now
  belong to a different node — resolved through the same
  :class:`~repro.cluster.router.RoutingKeys` logic the router uses, so
  routing and migration can never disagree on placement.

A migrated message keeps its resolved properties (the paper fixes them
at creation time), its *live* slice memberships, and its processed
flag.  Slice generations travel with the messages: the target's slice
lifetime is first caught up to the source's (replaying resets in the
same transaction), and memberships of already-reset generations are
dropped rather than resurrected into the target's current slice.  The
transfer uses the store's transaction ops on both sides — an insert
(+ processed mark) committed at the target before a delete commits at
the source, so a crash mid-migration duplicates a message (at-least-
once, matching the WS-RM stance of the gateway layer) but never loses
one.  Unprocessed arrivals re-enter the target's scheduler, echo timer
(with *remaining* timeout), and gateway machinery through
``DemaqServer.register_unprocessed``; incoming-gateway endpoint
registrations move with their queue.

Property-value secondary indexes stay consistent across migrations for
free: every node registers the application's declared indexes at spawn,
and a migration is an ordinary insert transaction at the target and
delete transaction at the source — the same committed operations that
maintain the indexes on any other write.  After any join/leave the
target's index therefore equals a fresh rebuild from its catalog
(asserted by tests and ``bench_indexing``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..qdl.model import QueueKind
from ..storage.transactions import InsertOp
from ..xmldm import parse
from .membership import ClusterMembership, RebalancePlan
from .router import RoutingKeys, routing_property

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.server import DemaqServer


@dataclass
class MigrationReport:
    """What one rebalance actually moved."""

    epoch: int
    moved_by_queue: dict[str, int] = field(default_factory=dict)

    @property
    def total_moved(self) -> int:
        return sum(self.moved_by_queue.values())

    def record(self, queue: str, count: int) -> None:
        if count:
            self.moved_by_queue[queue] = \
                self.moved_by_queue.get(queue, 0) + count


def stored_message_owner(membership: ClusterMembership, keys: RoutingKeys,
                         queue: str, meta, source: "DemaqServer") -> str:
    """Where a *stored* message belongs under the current ring.

    Mirrors the router's placement: echo messages go with their target's
    shard (re-deriving the key from the body), sliced queues place by
    the resolved slicing property, everything else by queue name.
    """
    app = membership.app
    if app.queues[queue].kind is QueueKind.ECHO:
        target = meta.properties.get("target")
        if isinstance(target, str) and target in app.queues:
            body = parse(source.store.body_bytes(meta.msg_id)
                         .decode("utf-8"))
            return membership.owner_for(target, keys.key_for(target, body))
        return membership.owner_for(queue)
    prop_name = routing_property(app, queue) \
        if membership.is_sliced(queue) else None
    if prop_name is None:
        return membership.owner_for(queue)
    raw = meta.properties.get(prop_name)
    return membership.owner_for(queue, None if raw is None else str(raw))


def migrate_message(meta, payload: bytes, queue: str,
                    source: "DemaqServer", target: "DemaqServer") -> None:
    """Hand one stored message over, preserving its catalog state."""
    txn = target.store.begin()
    # Carry slice generations across: catch the target's lifetime up to
    # the source's (the insert below then joins the *current* slice),
    # and drop memberships whose generation was already reset — they
    # must not resurrect into the target's live slice.
    live_slices = []
    for slicing, key, lifetime in meta.slices:
        current = source.store.slice_lifetime(slicing, key)
        if lifetime != current:
            continue
        behind = current - target.store.slice_lifetime(slicing, key)
        for _ in range(behind):
            txn.reset_slice(slicing, key)
        live_slices.append((slicing, key))
    txn.insert_message(queue, payload, dict(meta.properties), live_slices,
                       persistent=meta.persistent)
    target.store.commit(txn)
    target.locking.release(txn.txn_id)
    new_id = next(op.msg_id for op in txn.ops if isinstance(op, InsertOp))
    if meta.processed:
        mark = target.store.begin()
        mark.mark_processed(new_id)
        target.store.commit(mark)
        target.locking.release(mark.txn_id)
    else:
        # recovered state, not a fresh enqueue: echo timers resume with
        # their remaining timeout, gateway sends re-arm, rules reschedule
        target.register_unprocessed(target.store.get(new_id))

    drop = source.store.begin()
    drop.delete_message(meta.msg_id)
    source.store.commit(drop)
    source.locking.release(drop.txn_id)


def migrate_queue(queue: str, source: "DemaqServer",
                  target: "DemaqServer") -> int:
    """Move every message of *queue*; returns how many moved."""
    moved = 0
    for meta, payload in source.store.export_queue_messages(queue):
        migrate_message(meta, payload, queue, source, target)
        moved += 1
    return moved


def _migrate_misplaced(queue: str, node: str, source: "DemaqServer",
                       membership: ClusterMembership, keys: RoutingKeys,
                       servers: "dict[str, DemaqServer]",
                       report: MigrationReport) -> None:
    """Move every message of *queue* on *node* that belongs elsewhere.

    Filters on catalog entries first; payloads are fetched only for the
    (typically ~1/N) messages that actually move.
    """
    for meta in source.store.queue_messages(queue):
        owner = stored_message_owner(membership, keys, queue, meta, source)
        # a departing node is off the ring, so everything leaves it
        if owner == node:
            continue
        target = servers.get(owner)
        if target is None or target is source:
            continue
        migrate_message(meta, source.store.body_bytes(meta.msg_id),
                        queue, source, target)
        report.record(queue, 1)


def apply_plan(plan: RebalancePlan, membership: ClusterMembership,
               servers: "dict[str, DemaqServer]") -> MigrationReport:
    """Execute a rebalance plan against the live servers."""
    report = MigrationReport(epoch=plan.epoch)
    app = membership.app
    keys = RoutingKeys(app, membership)

    for move in plan.moves:
        source = servers.get(move.source)
        target = servers.get(move.target)
        if source is None or target is None:
            continue
        report.record(move.queue,
                      migrate_queue(move.queue, source, target))
        if app.queues[move.queue].kind is QueueKind.INCOMING_GATEWAY:
            source.unregister_incoming_gateway(move.queue)
            target.register_incoming_gateway(move.queue)

    for queue in plan.rescans:
        for node, source in sorted(servers.items()):
            _migrate_misplaced(queue, node, source, membership, keys,
                               servers, report)
    return report


def drain_node(name: str, membership: ClusterMembership,
               servers: "dict[str, DemaqServer]",
               report: MigrationReport | None = None) -> MigrationReport:
    """Move *every* message off one node to the ring owners.

    Rule-triggered enqueues are node-local (rules never hop the network
    mid-transaction), so a node can legitimately hold messages of queues
    it does not own.  Removing a node therefore drains its whole store,
    not just the partitions a rebalance plan names.
    """
    source = servers[name]
    report = report or MigrationReport(epoch=membership.epoch)
    keys = RoutingKeys(membership.app, membership)
    for queue in membership.app.queues:
        _migrate_misplaced(queue, name, source, membership, keys,
                           servers, report)
    return report
