"""Sharded cluster runtime: partitioned queues, routing, concurrency.

The paper scopes one Demaq instance to one node and leaves distribution
to the application (§5); this package makes scale-out a runtime concern:

* :mod:`~repro.cluster.partitioner` — consistent-hash ring (virtual
  nodes) mapping queues and slice keys to owners;
* :mod:`~repro.cluster.membership` — node registry with join/leave and
  deterministic rebalance plans;
* :mod:`~repro.cluster.router` — owner resolution plus envelope
  forwarding, with §3.6 error-queue fallback;
* :mod:`~repro.cluster.driver` — thread-per-node concurrent execution
  with a shared quiescence barrier;
* :mod:`~repro.cluster.rebalance` — transactional message migration;
* :mod:`~repro.cluster.server` — the :class:`ClusterServer` facade.

See DESIGN.md §6 for the partitioning and routing model.
"""

from .driver import ClusterDriver, run_cluster_concurrent
from .membership import (ClusterMembership, QueueMove, RebalancePlan,
                         partitioned_queues, per_message_queues,
                         sliced_queues)
from .partitioner import DEFAULT_REPLICAS, HashRing, partition_key
from .rebalance import (MigrationReport, apply_plan, drain_node,
                        migrate_queue, stored_message_owner)
from .router import ClusterRouter, RoutingKeys, routing_property
from .server import ClusterServer

__all__ = [
    "ClusterDriver", "run_cluster_concurrent",
    "ClusterMembership", "QueueMove", "RebalancePlan",
    "partitioned_queues", "per_message_queues", "sliced_queues",
    "DEFAULT_REPLICAS", "HashRing", "partition_key",
    "MigrationReport", "apply_plan", "drain_node", "migrate_queue",
    "stored_message_owner",
    "ClusterRouter", "RoutingKeys", "routing_property",
    "ClusterServer",
]
