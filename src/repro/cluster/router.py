"""The cluster front-end: route enqueues to partition owners.

A :class:`ClusterRouter` is what external producers talk to instead of a
single :class:`~repro.engine.DemaqServer`.  For every enqueue it

1. extracts the *routing key* — for sliced queues, the value of the
   slicing property evaluated against the message body (the same
   expression the owner's property resolver will use), so all messages
   of one slice land on one node;
2. resolves the owner through the membership ring;
3. forwards the message, either as a gateway envelope over the shared
   :class:`~repro.network.Network` (the default — exercises the same
   transport path as inter-node traffic) or by a direct in-process call.

Failures follow the paper's §3.6 taxonomy: a delivery that fails (owner
down, endpoint unregistered, transport timeout) becomes an XML error
message which the router enqueues into the application's error queue on
the first *reachable* node of that queue's preference list.  Only when
no error queue is configured, or no node can take it, does the error
surface on ``router.undeliverable``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..engine import errors as err
from ..network import build_envelope
from ..network.transport import Network, node_endpoint
from ..obs import TRACE_PROPERTY
from ..qdl.model import Application, QueueKind
from ..xmldm import Document, parse
from ..xquery import DynamicContext, make_evaluator
from ..xquery.atomics import UntypedAtomic, cast_atomic
from ..xquery.errors import XQueryError
from ..xquery.sequence import atomize
from .membership import ClusterMembership

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.server import DemaqServer

ROUTER_SOURCE = "demaq://router"


def routing_property(app: Application, queue: str) -> Optional[str]:
    """The slicing property that partitions *queue*, if any.

    The first slicing (in declaration order) whose property is defined
    on the queue; rebalancing uses the same choice so routing and
    migration always agree.
    """
    slicings = app.slicings_on_queue(queue)
    return slicings[0].property_name if slicings else None


class RouterStatistics:
    """Counters the cluster benchmarks read."""

    def __init__(self) -> None:
        self.routed = 0
        self.forwarded_by_node: dict[str, int] = {}
        self.failovers = 0
        self.errors_routed = 0


class RoutingKeys:
    """Slice-key extraction shared by the router and the rebalancer.

    Casts through the property's declared type exactly like the owner's
    :class:`~repro.queues.PropertyResolver` will, so everything that
    places messages — router forwards, rescans, drains — hashes the
    same lexical form: ``007`` routes as the integer ``7`` for an
    ``xs:integer`` key.
    """

    def __init__(self, app: Application, membership: ClusterMembership):
        self.app = app
        self.membership = membership
        self._key_exprs = {
            queue: self._binding_expr(queue)
            for queue in app.queues if membership.is_sliced(queue)}

    def _binding_expr(self, queue: str):
        prop_name = routing_property(self.app, queue)
        if prop_name is None:
            return None
        prop = self.app.properties[prop_name]
        binding = prop.binding_for(queue)
        if binding is None:
            return None
        # Compiled once per router: key extraction runs on every routed
        # enqueue, the same hot shape as the engine's property resolver.
        return make_evaluator(binding.value), prop.type_name

    def key_for(self, queue: str, body: Document) -> str | None:
        """The slice key that places *body* on the ring (None: by queue)."""
        compiled = self._key_exprs.get(queue)
        if compiled is None:
            return None
        run, type_name = compiled
        try:
            result = atomize(run(DynamicContext(item=body)))
            if not result:
                return None
            value = result[0]
            if isinstance(value, UntypedAtomic):
                value = str(value)
            return str(cast_atomic(value, type_name))
        except XQueryError:
            # the owner's resolver will raise the proper PropertyError
            return None

    def owner_for_document(self, queue: str, body: Document,
                           properties: dict[str, object] | None) -> str:
        """The node a new message belongs on, echo-aware.

        Echo messages are placed with their *target*'s shard: the timer
        delivery is node-local, so the echoed message must already sit
        where the target queue's slice lives for correlation to work.
        """
        queue_def = self.app.queues[queue]
        if queue_def.kind is QueueKind.ECHO:
            target = (properties or {}).get("target")
            if isinstance(target, str) and target in self.app.queues:
                return self.membership.owner_for(
                    target, self.key_for(target, body))
        return self.membership.owner_for(queue, self.key_for(queue, body))


class ClusterRouter:
    """Routes external enqueues to the owning cluster node."""

    def __init__(self, app: Application, membership: ClusterMembership,
                 network: Network,
                 servers: "dict[str, DemaqServer] | None" = None,
                 via_network: bool = True,
                 tracer=None):
        self.app = app
        self.membership = membership
        self.network = network
        self.servers = servers or {}
        self.via_network = via_network
        self.tracer = tracer
        self.stats = RouterStatistics()
        self.undeliverable: list[Document] = []
        self.keys = RoutingKeys(app, membership)

    # -- enqueue path -----------------------------------------------------------

    def routing_key(self, queue: str, body: Document) -> str | None:
        return self.keys.key_for(queue, body)

    def owner_of(self, queue: str, body: Document | None = None) -> str:
        key = None if body is None else self.keys.key_for(queue, body)
        return self.membership.owner_for(queue, key)

    def _resolve_owner(self, queue: str, document: Document,
                       properties: dict[str, object] | None) -> str:
        return self.keys.owner_for_document(queue, document, properties)

    def enqueue(self, queue: str, body: str | Document,
                properties: dict[str, object] | None = None,
                on_delivered=None, on_failed=None) -> str:
        """Route one message to its owner; returns the owner node name.

        *on_delivered* / *on_failed* (optional) are forwarded to the
        transport so callers that need per-message delivery outcomes —
        the HTTP gateway's 503 mapping, the replication benchmarks —
        can observe them; §3.6 error-queue fallback still runs first on
        failure, so the message is never silently dropped either way.
        """
        if queue not in self.app.queues:
            raise err.EngineError(f"enqueue into unknown queue {queue!r}")
        document = parse(body) if isinstance(body, str) else body
        owner = self._resolve_owner(queue, document, properties)
        self.stats.routed += 1
        self.stats.forwarded_by_node[owner] = \
            self.stats.forwarded_by_node.get(owner, 0) + 1
        if self.tracer is not None and self.tracer.enabled and properties:
            self.tracer.record(properties.get(TRACE_PROPERTY), "routed",
                               queue=queue, owner=owner)
        if not self.via_network and owner in self.servers:
            self.servers[owner].enqueue(queue, document, properties)
            if on_delivered is not None:
                on_delivered()
            return owner
        envelope = build_envelope(document, dict(properties or {}))

        def forward_failed(marker: str) -> None:
            self._forward_failed(queue, document, owner, marker)
            if on_failed is not None:
                on_failed(marker)

        self.network.send(
            node_endpoint(owner, queue), envelope, source=ROUTER_SOURCE,
            on_delivered=on_delivered, on_failed=forward_failed)
        return owner

    # -- failure fallback (§3.6) -------------------------------------------------

    def _forward_failed(self, queue: str, document: Document, owner: str,
                        marker: str) -> None:
        error = err.build_error_message(
            err.NETWORK,
            f"cluster delivery to owner {owner!r} of queue {queue!r} "
            f"failed ({marker})",
            queue=queue, marker=marker, initial_message=document)
        target = err.resolve_error_queue(self.app, None, queue)
        if target is None:
            self.undeliverable.append(error)
            return
        for node in self.membership.ring.preference_list(target):
            endpoint = node_endpoint(node, target)
            if node == owner or self.network.is_down(endpoint) \
                    or not self.network.is_registered(endpoint):
                continue
            self.stats.failovers += 1
            self.stats.errors_routed += 1
            self.network.send(
                endpoint, build_envelope(error, {}), source=ROUTER_SOURCE,
                on_failed=lambda _marker: self.undeliverable.append(error))
            return
        self.undeliverable.append(error)
