"""The sharded cluster facade: one Demaq application over many nodes.

A :class:`ClusterServer` looks like a single
:class:`~repro.engine.DemaqServer` from the outside — ``enqueue``,
``run_until_idle``, ``advance_time``, ``queue_texts`` — but internally
deploys the application onto N nodes that share one clock and one
simulated network:

* placement comes from the consistent-hash ring
  (:mod:`~repro.cluster.partitioner`): unsliced queues live wholly on
  their owner node, sliced queues are spread per slice key;
* external enqueues go through the :class:`~repro.cluster.router`,
  which forwards gateway envelopes to the owner;
* execution uses the concurrent :class:`~repro.cluster.driver`
  (thread per node, shared quiescence barrier);
* ``add_node``/``remove_node`` change membership at runtime and migrate
  messages via :mod:`~repro.cluster.rebalance`.

Reads (``queue_texts`` …) gather node-major: each node's shard in its
local arrival order, nodes in sorted name order.
"""

from __future__ import annotations

from typing import Iterable, Optional

import os

from ..engine.server import DemaqServer
from ..network.transport import Network, node_endpoint
from ..obs import Tracer, merge_snapshots, stitch
from ..qdl import Application, compile_application
from ..qdl.model import QueueKind
from ..queues import Clock, Message, VirtualClock
from .driver import ClusterDriver
from .membership import ClusterMembership, RebalancePlan
from .partitioner import DEFAULT_REPLICAS
from .rebalance import MigrationReport, apply_plan, drain_node
from .router import ClusterRouter


class ClusterServer:
    """A sharded Demaq cluster behind a single-server-like interface."""

    def __init__(self, app: Application | str,
                 nodes: int | Iterable[str] = 4,
                 clock: Clock | None = None,
                 network: Network | None = None,
                 replicas: int = DEFAULT_REPLICAS,
                 latency: float = 0.0,
                 via_network: bool = True,
                 data_dir: str | None = None,
                 real_time: bool = False,
                 **server_kwargs):
        if isinstance(app, str):
            app = compile_application(app)
        self.app = app
        self.clock = clock or VirtualClock()
        self.network = network or Network(self.clock, latency=latency)
        names = [f"node{i}" for i in range(nodes)] \
            if isinstance(nodes, int) else list(nodes)
        self._data_dir = data_dir
        self._server_kwargs = dict(server_kwargs)

        self.membership = ClusterMembership(app, names, replicas=replicas)
        self.servers: dict[str, DemaqServer] = {
            name: self._spawn(name) for name in names}
        for name in names:
            self._register_ingests(name)
        self._place_gateways()

        self.router = ClusterRouter(app, self.membership, self.network,
                                    servers=self.servers,
                                    via_network=via_network,
                                    tracer=Tracer(node="router"))
        self.driver = ClusterDriver(list(self.servers.values()),
                                    network=self.network,
                                    real_time=real_time)

    # -- node lifecycle ---------------------------------------------------------

    def _spawn(self, name: str) -> DemaqServer:
        directory = None if self._data_dir is None \
            else os.path.join(self._data_dir, name)
        return DemaqServer(self.app, clock=self.clock, network=self.network,
                           name=name, data_dir=directory,
                           register_gateways=False, **self._server_kwargs)

    def _register_ingests(self, name: str) -> None:
        server = self.servers[name]
        for queue in self.app.queues:
            server.register_ingest(node_endpoint(name, queue), queue)

    def _unregister_ingests(self, name: str) -> None:
        for queue in self.app.queues:
            self.network.unregister(node_endpoint(name, queue))

    def _place_gateways(self) -> None:
        for queue_def in self.app.queues.values():
            if queue_def.kind is QueueKind.INCOMING_GATEWAY:
                owner = self.membership.ring.owner(queue_def.name)
                self.servers[owner].register_incoming_gateway(queue_def.name)

    def node(self, name: str) -> DemaqServer:
        return self.servers[name]

    @property
    def node_names(self) -> list[str]:
        return self.membership.nodes

    def add_node(self, name: str | None = None
                 ) -> tuple[RebalancePlan, MigrationReport]:
        """Join a node, rebalance, and return what moved."""
        if name is None:
            index = len(self.servers)
            while f"node{index}" in self.servers:
                index += 1
            name = f"node{index}"
        server = self._spawn(name)
        self.servers[name] = server
        self._register_ingests(name)
        plan = self.membership.join(name)
        report = apply_plan(plan, self.membership, self.servers)
        self.driver.add_server(server)
        return plan, report

    def remove_node(self, name: str
                    ) -> tuple[RebalancePlan, MigrationReport]:
        """Drain a node out of the cluster, migrating its messages."""
        server = self.servers[name]
        plan = self.membership.leave(name)
        report = apply_plan(plan, self.membership, self.servers)
        drain_node(name, self.membership, self.servers, report)
        self._unregister_ingests(name)
        self.driver.remove_server(server)
        del self.servers[name]
        server.close()
        return plan, report

    # -- the single-server-like surface ----------------------------------------

    def enqueue(self, queue: str, body, properties=None) -> str:
        """Route a message to its owner; returns the owner node name."""
        return self.router.enqueue(queue, body, properties)

    def run_until_idle(self, max_rounds: int = 100_000) -> int:
        return self.driver.run_until_idle(max_rounds)

    def request_stop(self) -> None:
        """Gracefully wind down a concurrent :meth:`run_until_idle`."""
        self.driver.request_stop()

    def advance_time(self, seconds: float) -> int:
        if isinstance(self.clock, VirtualClock):
            self.clock.advance(seconds)
        return self.run_until_idle()

    def live_messages(self, queue: str) -> list[Message]:
        out: list[Message] = []
        for name in sorted(self.servers):
            out.extend(self.servers[name].live_messages(queue))
        return out

    def queue_documents(self, queue: str):
        return [message.body for message in self.live_messages(queue)]

    def queue_texts(self, queue: str) -> list[str]:
        return [message.body_text() for message in self.live_messages(queue)]

    def queue_depth(self, queue: str) -> int:
        return sum(server.store.queue_depth(queue)
                   for server in self.servers.values())

    def shard_depths(self, queue: str) -> dict[str, int]:
        """Per-node depth of one queue (skew diagnostics)."""
        return {name: server.store.queue_depth(queue)
                for name, server in sorted(self.servers.items())}

    @property
    def unhandled_errors(self) -> list:
        out = list(self.router.undeliverable)
        for name in sorted(self.servers):
            out.extend(self.servers[name].unhandled_errors)
        return out

    def messages_processed(self) -> int:
        return sum(server.executor.stats.messages_processed
                   for server in self.servers.values())

    def metrics_snapshot(self) -> dict:
        """Cluster-wide metrics: router tracer aside, every node summed."""
        return merge_snapshots(server.metrics.snapshot()
                               for server in self.servers.values())

    def trace(self, trace_id: str) -> list[dict]:
        """One message's lifecycle spans stitched across all nodes."""
        span_lists = [self.router.tracer.spans(trace_id)] \
            if self.router.tracer is not None else []
        span_lists.extend(server.tracer.spans(trace_id)
                          for server in self.servers.values())
        return stitch(span_lists, trace_id)

    def collect_garbage(self) -> int:
        return sum(server.collect_garbage()
                   for server in self.servers.values())

    def checkpoint(self) -> None:
        for server in self.servers.values():
            server.checkpoint()

    def load_collection(self, name: str, documents) -> None:
        """Replicate master data to every node (fn:collection reads)."""
        documents = list(documents)
        for server in self.servers.values():
            server.load_collection(name, documents)

    def close(self) -> None:
        for server in self.servers.values():
            server.close()

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
