"""The concurrent cluster driver (replaces serial ``run_cluster`` loops).

One thread per node, synchronized by a shared quiescence barrier:

* **work phase** — every node thread drains its *local* work
  (:meth:`DemaqServer.step_local`: rule processing, echo deliveries,
  gateway send initiation) in parallel.  Node threads only touch their
  own store, scheduler, and timers; the only shared object they write is
  the thread-safe :class:`~repro.network.Network` send queue.
* **barrier action** — exactly one thread pumps the shared network,
  delivering every due envelope serially into the destination nodes'
  ingest handlers, then decides quiescence: a round in which no node did
  local work and the pump delivered nothing ends the run.

With a :class:`~repro.queues.VirtualClock` this is deterministic per
node: each node consumes its own scheduler heap in the same order a
serial ``run_cluster`` would, and cross-node deliveries happen at a
serialization point, never concurrently with rule execution.  With a
:class:`~repro.queues.RealClock` (``real_time=True``) the driver keeps
polling while messages are in flight or timers are pending instead of
declaring quiescence, giving wall-time runs.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Iterable, Optional

from ..engine import errors as err
from ..network.transport import Network
from ..queues import VirtualClock

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.server import DemaqServer


class DriverStatistics:
    """Per-run counters."""

    def __init__(self) -> None:
        self.rounds = 0
        self.local_steps = 0
        self.deliveries = 0
        self.runs = 0


class ClusterDriver:
    """Drives a set of connected servers to quiescence, concurrently."""

    def __init__(self, servers: "Iterable[DemaqServer]",
                 network: Network | None = None,
                 real_time: bool = False,
                 poll_interval: float = 0.002):
        self.servers = list(servers)
        if not self.servers:
            raise ValueError("driver needs at least one server")
        self.network = network if network is not None \
            else self.servers[0].network
        self.real_time = real_time
        self.poll_interval = poll_interval
        self.stats = DriverStatistics()
        self._stop_requested = threading.Event()

    # -- membership (kept in sync by ClusterServer) -----------------------------

    def add_server(self, server: "DemaqServer") -> None:
        self.servers.append(server)

    def remove_server(self, server: "DemaqServer") -> None:
        self.servers.remove(server)

    # -- graceful shutdown -------------------------------------------------------

    def request_stop(self) -> None:
        """Signal a running :meth:`run_until_idle` to wind down cleanly.

        Safe to call from any thread (a signal handler, a control
        endpoint).  Node threads finish the execution step they are in —
        an in-flight batch transaction runs to its single COMMIT, never
        torn — then exit at the next quiescence barrier; the driver
        drains the group-commit coordinator before returning, so every
        acknowledged commit is forced to the log.  The §3.6 state left
        behind is exactly a crash-free restart point: unprocessed
        messages stay unprocessed, processed ones are durably marked.
        """
        self._stop_requested.set()

    def stop_pending(self) -> bool:
        return self._stop_requested.is_set()

    # -- the run loop -----------------------------------------------------------

    def run_until_idle(self, max_rounds: int = 100_000) -> int:
        """Run all nodes until the whole cluster is idle; returns steps.

        A concurrent :meth:`request_stop` ends the run early at the next
        barrier, after in-flight work committed and the log drained.
        """
        self._stop_requested.clear()
        workers = list(self.servers)
        count = len(workers)
        work = [0] * count
        state = {"done": False, "steps": 0, "rounds": 0}
        errors: list[BaseException] = []

        def finish_round() -> None:
            delivered = self.network.pump() if self.network is not None else 0
            local = sum(work)
            state["steps"] += local + delivered
            self.stats.rounds += 1
            self.stats.local_steps += local
            self.stats.deliveries += delivered
            if self._stop_requested.is_set():
                state["done"] = True
                return
            if local == 0 and delivered == 0:
                # Idle wall-time waits don't count toward max_rounds:
                # a cluster waiting on a timer is patient, not livelocked.
                if self.real_time and self._in_flight_work():
                    time.sleep(self._wait_interval())
                    return
                state["done"] = True
                return
            state["rounds"] += 1
            if state["rounds"] >= max_rounds:
                state["done"] = True
                errors.append(err.EngineError(
                    f"cluster did not quiesce within {max_rounds} rounds"))

        barrier = threading.Barrier(count, action=finish_round)

        def run_node(index: int, server: "DemaqServer") -> None:
            try:
                while True:
                    steps = 0
                    while server.step_local():
                        steps += 1
                    work[index] = steps
                    barrier.wait()
                    if state["done"]:
                        return
            except threading.BrokenBarrierError:
                return
            except BaseException as exc:   # surface node failures to caller
                errors.append(exc)
                state["done"] = True
                barrier.abort()

        threads = [threading.Thread(target=run_node, args=(i, server),
                                    name=f"demaq-node-{server.name}",
                                    daemon=True)
                   for i, server in enumerate(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Quiescence drain: under the ``group``/``async`` durability
        # policies a shard may still carry acknowledged-but-unforced
        # commits; a completed run leaves every shard durable.
        for server in workers:
            server.store.group_commit.drain()
        self.stats.runs += 1
        if errors:
            raise errors[0]
        return state["steps"]

    def _in_flight_work(self) -> bool:
        """Anything pending that mere waiting will make due (real time)?"""
        if self.network is not None and self.network.pending() > 0:
            return True
        return any(server.echo.pending_count() > 0
                   for server in self.servers)

    def _wait_interval(self) -> float:
        """Sleep until the earliest pending due time (bounded both ways)."""
        dues = [server.echo.next_due() for server in self.servers]
        if self.network is not None:
            dues.append(self.network.next_due())
        dues = [due for due in dues if due is not None]
        if not dues:
            return self.poll_interval
        remaining = min(dues) - self.servers[0].clock.now()
        return min(max(remaining, self.poll_interval), 0.25)

    def advance_time(self, seconds: float) -> int:
        """Advance a shared virtual clock, then drain newly due work."""
        clock = self.servers[0].clock
        if isinstance(clock, VirtualClock):
            clock.advance(seconds)
        return self.run_until_idle()


def run_cluster_concurrent(servers: "Iterable[DemaqServer]",
                           network: Optional[Network] = None,
                           max_rounds: int = 100_000) -> int:
    """Drop-in concurrent replacement for :func:`repro.run_cluster`."""
    return ClusterDriver(servers, network=network).run_until_idle(max_rounds)
