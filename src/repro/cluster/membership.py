"""Cluster membership: the node registry and rebalancing plans.

Membership is static-first (a fixed node list at construction) with
dynamic join/leave on top.  Every change bumps an *epoch* and yields a
deterministic :class:`RebalancePlan` — the same sequence of joins and
leaves always produces the same plan, because placement comes from the
stable hashes of :mod:`repro.cluster.partitioner`.

A plan has two parts:

* **moves** — whole queues whose owner changed (they live on exactly
  one node, so the plan can name source and target up front);
* **rescans** — queues whose messages are placed individually: sliced
  queues (per slice key) and echo queues (with their target's shard).
  The key population cannot be enumerated without reading the stores, so
  the plan names the queues and :mod:`repro.cluster.rebalance` resolves
  them into per-message migrations against the new ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..qdl.model import Application, QueueKind
from .partitioner import DEFAULT_REPLICAS, HashRing


@dataclass(frozen=True)
class QueueMove:
    """Reassignment of one whole (unsliced) queue."""

    queue: str
    source: str
    target: str


@dataclass
class RebalancePlan:
    """What has to move after one membership change."""

    epoch: int
    joined: tuple[str, ...] = ()
    left: tuple[str, ...] = ()
    moves: list[QueueMove] = field(default_factory=list)
    rescans: list[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.moves and not self.rescans


def partitioned_queues(app: Application) -> list[str]:
    """The queues the cluster distributes: every declared queue.

    Gateway and echo queues ride along — their owner runs the pumps —
    so a node failure never silently orphans a queue kind.
    """
    return sorted(app.queues)


def sliced_queues(app: Application) -> set[str]:
    """Queues distributed per slice key rather than as one unit."""
    return {name for name in app.queues
            if app.slicings_on_queue(name)
            and app.queues[name].kind is QueueKind.BASIC}


def per_message_queues(app: Application) -> set[str]:
    """Queues whose messages are placed individually, not as one unit:
    sliced queues (by slice key) and echo queues (by target shard)."""
    return sliced_queues(app) | {
        name for name, queue_def in app.queues.items()
        if queue_def.kind is QueueKind.ECHO}


class ClusterMembership:
    """Tracks live nodes and derives rebalancing plans from changes."""

    def __init__(self, app: Application, nodes: Iterable[str],
                 replicas: int = DEFAULT_REPLICAS):
        names = list(nodes)
        if not names:
            raise ValueError("a cluster needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names")
        self.app = app
        self.ring = HashRing(names, replicas=replicas)
        self.epoch = 0
        self._queues = partitioned_queues(app)
        self._sliced = sliced_queues(app)
        self._per_message = per_message_queues(app)
        # Sliced queues are partitioned in their *slicing's* namespace so
        # all members of one slice — across every queue the slicing spans
        # (paper §2.3.1) — land on the same node.
        self._routing_slicing = {
            queue: app.slicings_on_queue(queue)[0].name
            for queue in self._sliced}

    # -- introspection ---------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return self.ring.nodes

    def is_sliced(self, queue: str) -> bool:
        return queue in self._sliced

    def owner_for(self, queue: str, key: object | None = None) -> str:
        """The node a message of *queue* with slice key *key* lives on."""
        slicing = self._routing_slicing.get(queue)
        if key is None or slicing is None:
            return self.ring.owner(queue)
        return self.ring.owner(slicing, key)

    def owner_map(self) -> dict[str, str]:
        """Owner of every whole-unit queue.

        Sliced and echo queues are absent — their messages are placed
        individually (by slice key / by target shard), so they have no
        single owner to move.
        """
        return {queue: self.ring.owner(queue) for queue in self._queues
                if queue not in self._per_message}

    # -- changes ---------------------------------------------------------------

    def join(self, node: str) -> RebalancePlan:
        """Add *node*; plan the partitions it takes over."""
        before = self.owner_map()
        self.ring.add_node(node)
        self.epoch += 1
        return self._plan(before, joined=(node,))

    def leave(self, node: str) -> RebalancePlan:
        """Remove *node*; plan the handoff of everything it owned."""
        if len(self.ring) == 1:
            raise ValueError("cannot remove the last node")
        before = self.owner_map()
        self.ring.remove_node(node)
        self.epoch += 1
        return self._plan(before, left=(node,))

    def _plan(self, before: dict[str, str], joined: tuple[str, ...] = (),
              left: tuple[str, ...] = ()) -> RebalancePlan:
        after = self.owner_map()
        moves = [QueueMove(queue, before[queue], after[queue])
                 for queue in sorted(before)
                 if before[queue] != after[queue]]
        return RebalancePlan(epoch=self.epoch, joined=joined, left=left,
                             moves=moves, rescans=sorted(self._per_message))
