"""The simulated transport network.

Substitutes for the real TCP/HTTP/SMTP stack (see DESIGN.md §2): an
in-process registry of endpoints with configurable latency and
deterministic failure injection.  Deliveries are scheduled against the
server clock and released by ``pump()`` — so network behaviour composes
with virtual time and stays reproducible.

Failure modes mirror the paper's §3.6 taxonomy of network errors:
endpoints can be *down* (→ ``disconnectedTransport``), individual sends
can be told to fail, and a random drop rate models lossy links for the
reliable-messaging benchmark.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..queues.timers import Clock
from ..xmldm import Document

#: handler(envelope, source_endpoint) — registered per endpoint.
Handler = Callable[[Document, str], None]
#: callbacks for the sender
OnDelivered = Callable[[], None]
OnFailed = Callable[[str], None]   # receives a failure marker name


@dataclass(order=True)
class _InFlight:
    due: float
    order: int
    envelope: Document = field(compare=False)
    endpoint: str = field(compare=False)
    source: str = field(compare=False)
    on_delivered: Optional[OnDelivered] = field(compare=False, default=None)
    on_failed: Optional[OnFailed] = field(compare=False, default=None)


class Network:
    """Endpoint registry plus a latency/failure simulator."""

    def __init__(self, clock: Clock, latency: float = 0.0,
                 drop_rate: float = 0.0, seed: int = 7):
        self.clock = clock
        self.latency = latency
        self.drop_rate = drop_rate
        self._random = random.Random(seed)
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._fail_next: dict[str, int] = {}
        self._in_flight: list[_InFlight] = []
        self._order = itertools.count()
        self.sent = 0
        self.delivered = 0
        self.failed = 0

    # -- topology ------------------------------------------------------------------

    def register(self, endpoint: str, handler: Handler) -> None:
        if endpoint in self._handlers:
            raise ValueError(f"endpoint {endpoint!r} already registered")
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        self._handlers.pop(endpoint, None)

    def set_down(self, endpoint: str, down: bool = True) -> None:
        if down:
            self._down.add(endpoint)
        else:
            self._down.discard(endpoint)

    def fail_next(self, endpoint: str, count: int = 1) -> None:
        """Force the next *count* sends to this endpoint to fail."""
        self._fail_next[endpoint] = self._fail_next.get(endpoint, 0) + count

    # -- sending ----------------------------------------------------------------------

    def send(self, endpoint: str, envelope: Document, source: str = "",
             on_delivered: OnDelivered | None = None,
             on_failed: OnFailed | None = None) -> None:
        """Queue a delivery; outcome is decided when it comes due."""
        self.sent += 1
        due = self.clock.now() + self.latency
        heapq.heappush(self._in_flight,
                       _InFlight(due, next(self._order), envelope, endpoint,
                                 source, on_delivered, on_failed))

    def pump(self, now: float | None = None) -> int:
        """Deliver (or fail) every due in-flight message; returns count."""
        now = self.clock.now() if now is None else now
        handled = 0
        while self._in_flight and self._in_flight[0].due <= now:
            entry = heapq.heappop(self._in_flight)
            handled += 1
            self._complete(entry)
        return handled

    def pending(self) -> int:
        return len(self._in_flight)

    def _complete(self, entry: _InFlight) -> None:
        endpoint = entry.endpoint
        if self._fail_next.get(endpoint, 0) > 0:
            self._fail_next[endpoint] -= 1
            self._fail(entry, "deliveryTimeout")
            return
        if endpoint in self._down or endpoint not in self._handlers:
            self._fail(entry, "disconnectedTransport")
            return
        if self.drop_rate and self._random.random() < self.drop_rate:
            self._fail(entry, "deliveryTimeout")
            return
        self._handlers[endpoint](entry.envelope, entry.source)
        self.delivered += 1
        if entry.on_delivered is not None:
            entry.on_delivered()

    def _fail(self, entry: _InFlight, marker: str) -> None:
        self.failed += 1
        if entry.on_failed is not None:
            entry.on_failed(marker)
