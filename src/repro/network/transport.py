"""The simulated transport network.

Substitutes for the real TCP/HTTP/SMTP stack (see DESIGN.md §2): an
in-process registry of endpoints with configurable latency and
deterministic failure injection.  Deliveries are scheduled against the
server clock and released by ``pump()`` — so network behaviour composes
with virtual time and stays reproducible.

Failure modes mirror the paper's §3.6 taxonomy of network errors:
endpoints can be *down* (→ ``disconnectedTransport``), individual sends
can be told to fail, and a random drop rate models lossy links for the
reliable-messaging benchmark.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
from dataclasses import dataclass, field
from typing import Optional

from ..queues.timers import Clock
from ..xmldm import Document
from .base import (Handler, OnDelivered, OnFailed, Transport,
                   collision_error)


def node_endpoint(node: str, queue: str) -> str:
    """Canonical transport address of *queue* on cluster node *node*.

    The ``!shard`` path segment keeps cluster-ingest addresses disjoint
    from application-declared gateway endpoints
    (``demaq://<node>/<queue>``), so a sharded node can also expose
    ordinary incoming gateways without collisions.
    """
    return f"demaq://{node}/!shard/{queue}"


@dataclass(order=True)
class _InFlight:
    due: float
    order: int
    envelope: Document = field(compare=False)
    endpoint: str = field(compare=False)
    source: str = field(compare=False)
    on_delivered: Optional[OnDelivered] = field(compare=False, default=None)
    on_failed: Optional[OnFailed] = field(compare=False, default=None)


class Network(Transport):
    """Endpoint registry plus a latency/failure simulator.

    Thread-safe: several cluster node threads may ``send`` concurrently
    while one driver thread pumps.  The mutex covers the in-flight heap
    and the topology maps; handlers themselves run outside the lock so a
    delivery may trigger further sends without deadlocking.
    """

    def __init__(self, clock: Clock, latency: float = 0.0,
                 drop_rate: float = 0.0, seed: int = 7):
        self.clock = clock
        self.latency = latency
        self.drop_rate = drop_rate
        self._random = random.Random(seed)
        self._mutex = threading.Lock()
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._fail_next: dict[str, int] = {}
        self._in_flight: list[_InFlight] = []
        self._order = itertools.count()
        self.sent = 0
        self.delivered = 0
        self.failed = 0

    # -- topology ------------------------------------------------------------------

    def register(self, endpoint: str, handler: Handler) -> None:
        with self._mutex:
            if endpoint in self._handlers:
                raise collision_error(endpoint)
            self._handlers[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        with self._mutex:
            self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: str) -> bool:
        with self._mutex:
            return endpoint in self._handlers

    def set_down(self, endpoint: str, down: bool = True) -> None:
        with self._mutex:
            if down:
                self._down.add(endpoint)
            else:
                self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        with self._mutex:
            return endpoint in self._down

    def fail_next(self, endpoint: str, count: int = 1) -> None:
        """Force the next *count* sends to this endpoint to fail."""
        with self._mutex:
            self._fail_next[endpoint] = \
                self._fail_next.get(endpoint, 0) + count

    # -- sending ----------------------------------------------------------------------

    def send(self, endpoint: str, envelope: Document, source: str = "",
             on_delivered: OnDelivered | None = None,
             on_failed: OnFailed | None = None) -> None:
        """Queue a delivery; outcome is decided when it comes due."""
        due = self.clock.now() + self.latency
        with self._mutex:
            self.sent += 1
            heapq.heappush(self._in_flight,
                           _InFlight(due, next(self._order), envelope,
                                     endpoint, source, on_delivered,
                                     on_failed))

    def pump(self, now: float | None = None) -> int:
        """Deliver (or fail) every due in-flight message; returns count."""
        now = self.clock.now() if now is None else now
        handled = 0
        while True:
            with self._mutex:
                if not self._in_flight or self._in_flight[0].due > now:
                    return handled
                entry = heapq.heappop(self._in_flight)
            handled += 1
            self._complete(entry)

    def pending(self) -> int:
        with self._mutex:
            return len(self._in_flight)

    def next_due(self) -> float | None:
        """Due time of the earliest in-flight delivery, if any."""
        with self._mutex:
            return self._in_flight[0].due if self._in_flight else None

    def _complete(self, entry: _InFlight) -> None:
        endpoint = entry.endpoint
        with self._mutex:
            if self._fail_next.get(endpoint, 0) > 0:
                self._fail_next[endpoint] -= 1
                marker, handler = "deliveryTimeout", None
            elif endpoint in self._down or endpoint not in self._handlers:
                marker, handler = "disconnectedTransport", None
            elif self.drop_rate and self._random.random() < self.drop_rate:
                marker, handler = "deliveryTimeout", None
            else:
                marker, handler = None, self._handlers[endpoint]
            if marker is None:
                self.delivered += 1
            else:
                self.failed += 1
        if marker is not None:
            if entry.on_failed is not None:
                entry.on_failed(marker)
            return
        handler(entry.envelope, entry.source)
        if entry.on_delivered is not None:
            entry.on_delivered()
