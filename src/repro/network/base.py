"""The abstract transport interface both network backends implement.

Two backends carry gateway envelopes between ``demaq://`` endpoints
(DESIGN.md §2):

* the **simulated** :class:`~repro.network.transport.Network` — an
  in-process endpoint registry with virtual-time latency and
  deterministic failure injection; the default for tests and anything
  that needs reproducibility;
* the **socket** :class:`~repro.netio.transport.SocketTransport` — real
  TCP between OS processes, same envelopes, same failure markers.

Everything above the transport (servers, routers, drivers, gateways)
talks to this interface only, so the backends are interchangeable: the
same application runs unchanged over either.

Addressing is uniform: ``demaq://<node>/<path>``.  Path segments
starting with ``!`` are reserved for the runtime (``!shard/<queue>`` is
cluster ingest, ``!ctl`` the process-cluster control channel) and may
not be claimed by application-declared gateway endpoints.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..xmldm import Document

#: handler(envelope, source_endpoint) — registered per endpoint.
Handler = Callable[[Document, str], None]
#: callbacks for the sender
OnDelivered = Callable[[], None]
OnFailed = Callable[[str], None]   # receives a failure marker name

#: §3.6 failure markers shared by both backends.
DISCONNECTED = "disconnectedTransport"
TIMEOUT = "deliveryTimeout"

#: First character of reserved path segments (cluster ingest, control).
RESERVED_MARK = "!"


class EndpointCollisionError(ValueError):
    """An endpoint registration clashed with an existing one."""


def endpoint_node(endpoint: str) -> Optional[str]:
    """The ``<node>`` of a ``demaq://<node>/...`` address, if any."""
    if not endpoint.startswith("demaq://"):
        return None
    rest = endpoint[len("demaq://"):]
    node = rest.split("/", 1)[0]
    return node or None


def endpoint_path(endpoint: str) -> str:
    """The path part of a ``demaq://<node>/<path>`` address ('' if none)."""
    if not endpoint.startswith("demaq://"):
        return ""
    rest = endpoint[len("demaq://"):]
    return rest.split("/", 1)[1] if "/" in rest else ""


def is_reserved_endpoint(endpoint: str) -> bool:
    """Does the address use a runtime-reserved (``!``-prefixed) segment?"""
    return any(segment.startswith(RESERVED_MARK)
               for segment in endpoint_path(endpoint).split("/"))


def collision_error(endpoint: str) -> EndpointCollisionError:
    """A registration collision, explained in the caller's terms."""
    if is_reserved_endpoint(endpoint):
        return EndpointCollisionError(
            f"endpoint {endpoint!r} is already registered — it lies in "
            f"the runtime-reserved '!' namespace (cluster ingest / "
            f"control); application gateways must not claim it")
    return EndpointCollisionError(
        f"endpoint {endpoint!r} is already registered — each address "
        f"has exactly one handler; unregister the holder first")


class Transport:
    """Abstract envelope transport between ``demaq://`` endpoints.

    The contract both backends honour:

    * ``register`` raises :class:`EndpointCollisionError` on a duplicate
      address instead of silently replacing the handler;
    * ``send`` never blocks on the outcome — delivery and failure are
      reported through the optional callbacks, which fire during a later
      ``pump()`` on the pumping thread (handlers and callbacks therefore
      run single-threaded per transport);
    * failures carry the paper's §3.6 markers: ``disconnectedTransport``
      (endpoint down / unreachable / unregistered) and
      ``deliveryTimeout`` (forced failure, drop, or lost acknowledgement).
    """

    # -- topology ------------------------------------------------------------

    def register(self, endpoint: str, handler: Handler) -> None:
        raise NotImplementedError

    def unregister(self, endpoint: str) -> None:
        raise NotImplementedError

    def is_registered(self, endpoint: str) -> bool:
        raise NotImplementedError

    def set_down(self, endpoint: str, down: bool = True) -> None:
        raise NotImplementedError

    def is_down(self, endpoint: str) -> bool:
        raise NotImplementedError

    def fail_next(self, endpoint: str, count: int = 1) -> None:
        raise NotImplementedError

    # -- sending -------------------------------------------------------------

    def send(self, endpoint: str, envelope: Document, source: str = "",
             on_delivered: OnDelivered | None = None,
             on_failed: OnFailed | None = None) -> None:
        raise NotImplementedError

    def pump(self, now: float | None = None) -> int:
        """Dispatch every due delivery/callback; returns the count."""
        raise NotImplementedError

    def pending(self) -> int:
        raise NotImplementedError

    def next_due(self) -> float | None:
        return None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release transport resources (sockets, threads).  Idempotent."""
