"""SOAP-style envelopes for gateway traffic (paper §4.2).

Demaq "provides SOAP bindings to transport protocols such as HTTP and
SMTP".  The simulated transport carries the same structure: an Envelope
with a Header holding message properties and a Body holding the payload.
"""

from __future__ import annotations

from ..storage.store import decode_value, encode_value
from ..xmldm import Document, Element, Text, deep_copy

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"


def build_envelope(body: Document, properties: dict[str, object]
                   ) -> Document:
    """Wrap a message body and its transport properties."""
    header = Element("Header")
    for name, value in sorted(properties.items()):
        tag, lexical = encode_value(value)
        header.append(Element("property", children=[
            Element("name", children=[Text(name)]),
            Element("type", children=[Text(tag)]),
            Element("value", children=[Text(str(lexical))]),
        ]))
    body_wrapper = Element("Body")
    root = body.root_element
    if root is not None:
        body_wrapper.append(deep_copy(root))
    envelope = Element("Envelope", namespaces={"soap": ENVELOPE_NS},
                       children=[header, body_wrapper])
    return Document([envelope])


def parse_envelope(envelope: Document) -> tuple[Document, dict[str, object]]:
    """Unwrap an envelope into (body document, properties)."""
    root = envelope.root_element
    if root is None or root.name.local_name != "Envelope":
        raise ValueError("not a SOAP envelope")
    properties: dict[str, object] = {}
    header = root.first_child("Header")
    if header is not None:
        for prop in header.child_elements("property"):
            name = prop.first_child("name")
            tag = prop.first_child("type")
            value = prop.first_child("value")
            if name is None or tag is None or value is None:
                raise ValueError("malformed envelope property")
            raw: object = value.text
            if tag.text in ("i",):
                raw = int(value.text)
            elif tag.text == "f":
                raw = float(value.text)
            elif tag.text == "b":
                raw = value.text in ("True", "true", "1")
            properties[name.text] = decode_value([tag.text, raw])
    body_wrapper = root.first_child("Body")
    body = Document()
    if body_wrapper is not None and body_wrapper.child_elements():
        body.append(deep_copy(body_wrapper.child_elements()[0]))
    return body, properties
