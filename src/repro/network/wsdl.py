"""WSDL-lite interface descriptors (paper §2.1.2).

``create queue … interface supplier.wsdl port CapacityRequestPort``
imports a service interface.  We implement a compact WSDL dialect
(services → ports → operations with input element names and an address)
sufficient to (a) resolve a gateway's remote endpoint and (b) check that
outgoing messages match a declared operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..xmldm import Attribute, Document, Element, parse, serialize

if TYPE_CHECKING:  # pragma: no cover
    from ..qdl.model import Application


class WSDLError(Exception):
    """Malformed interface description or unknown port."""


@dataclass
class Operation:
    name: str
    input_element: str


@dataclass
class Port:
    name: str
    address: str
    operations: dict[str, Operation] = field(default_factory=dict)

    def accepts(self, root_element: str) -> bool:
        return any(op.input_element == root_element
                   for op in self.operations.values())


@dataclass
class WSDLInterface:
    """A parsed interface: named ports with operations."""

    name: str
    ports: dict[str, Port] = field(default_factory=dict)

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise WSDLError(
                f"interface {self.name!r} has no port {name!r} "
                f"(available: {sorted(self.ports)})") from None


def parse_wsdl(source: str | Document) -> WSDLInterface:
    """Parse the compact WSDL dialect.

    >>> wsdl = parse_wsdl('''
    ...   <definitions name="supplier">
    ...     <port name="CapacityRequestPort"
    ...           address="demaq://supplier/requests">
    ...       <operation name="checkCapacity" input="plantCapacityInfo"/>
    ...     </port>
    ...   </definitions>''')
    >>> wsdl.port("CapacityRequestPort").accepts("plantCapacityInfo")
    True
    """
    document = parse(source) if isinstance(source, str) else source
    root = document.root_element
    if root is None or root.name.local_name != "definitions":
        raise WSDLError("interface description must have a "
                        "<definitions> root")
    interface = WSDLInterface(root.attribute_value("name") or "")
    for port_el in root.child_elements("port"):
        name = port_el.attribute_value("name")
        address = port_el.attribute_value("address")
        if not name or not address:
            raise WSDLError("port needs name and address attributes")
        port = Port(name, address)
        for op_el in port_el.child_elements("operation"):
            op_name = op_el.attribute_value("name")
            input_el = op_el.attribute_value("input")
            if not op_name or not input_el:
                raise WSDLError(
                    f"operation in port {name!r} needs name and input")
            port.operations[op_name] = Operation(op_name, input_el)
        if name in interface.ports:
            raise WSDLError(f"duplicate port {name!r}")
        interface.ports[name] = port
    if not interface.ports:
        raise WSDLError("interface declares no ports")
    return interface


#: Generated operations accept any payload root; the live gateway takes
#: whole SOAP envelopes, so there is no single input element to name.
ANY_INPUT = "any"


def build_wsdl(app: "Application", address_base: str,
               name: str | None = None) -> str:
    """Generate the live-gateway interface description for *app*.

    One port per externally enqueueable queue (incoming gateways and
    basic queues — echo and outgoing queues are runtime-fed), addressed
    under *address_base* the way the HTTP gateway routes them
    (``<base>/enqueue/<queue>``).  The output round-trips through
    :func:`parse_wsdl`, so a remote Demaq node can import it with
    ``create queue … interface … port <Queue>Port``.
    """
    from ..qdl.model import QueueKind
    ports: list[Element] = []
    for queue_def in app.queues.values():
        if queue_def.kind not in (QueueKind.BASIC,
                                  QueueKind.INCOMING_GATEWAY):
            continue
        ports.append(Element("port", attributes=[
            Attribute("name", f"{queue_def.name}Port"),
            Attribute("address",
                      f"{address_base.rstrip('/')}/enqueue/{queue_def.name}"),
        ], children=[
            Element("operation", attributes=[
                Attribute("name", "enqueue"),
                Attribute("input", ANY_INPUT),
            ]),
        ]))
    if not ports:
        raise WSDLError("application exposes no enqueueable queues")
    definitions = Element("definitions",
                          attributes=[Attribute("name", name or "demaq")],
                          children=ports)
    return serialize(Document([definitions]), indent=2)
