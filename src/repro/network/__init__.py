"""Simulated network: transport, SOAP envelopes, WSDL-lite interfaces."""

from .soap import build_envelope, parse_envelope
from .transport import Network
from .wsdl import Operation, Port, WSDLError, WSDLInterface, parse_wsdl

__all__ = [
    "build_envelope", "parse_envelope",
    "Network",
    "Operation", "Port", "WSDLError", "WSDLInterface", "parse_wsdl",
]
