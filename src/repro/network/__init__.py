"""Network layer: transports, SOAP envelopes, WSDL-lite interfaces.

Two transport backends implement the shared :class:`Transport`
interface: the simulated in-process :class:`Network` (deterministic,
the tier-1 default) and the TCP :class:`~repro.netio.SocketTransport`
(real sockets between OS processes, in :mod:`repro.netio`).
"""

from .base import (DISCONNECTED, TIMEOUT, EndpointCollisionError,
                   Transport, endpoint_node, is_reserved_endpoint)
from .soap import build_envelope, parse_envelope
from .transport import Network, node_endpoint
from .wsdl import (Operation, Port, WSDLError, WSDLInterface, build_wsdl,
                   parse_wsdl)

__all__ = [
    "DISCONNECTED", "TIMEOUT",
    "EndpointCollisionError", "Transport",
    "endpoint_node", "is_reserved_endpoint", "node_endpoint",
    "build_envelope", "parse_envelope",
    "Network",
    "Operation", "Port", "WSDLError", "WSDLInterface",
    "build_wsdl", "parse_wsdl",
]
