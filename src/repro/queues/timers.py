"""Clocks and the echo-queue timer service (paper §2.1.3).

Echo queues "enqueue any message sent to them into some target queue
after a timeout has expired.  Both the timeout and target queue are
specified as message properties."  The :class:`EchoService` keeps a heap
of pending deliveries ordered by due time; the server pumps it.

Time is pluggable: the :class:`VirtualClock` makes timer tests and
benchmarks deterministic, :class:`RealClock` runs on wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field

from ..xquery.atomics import XSDateTime


class Clock:
    """Abstract time source (seconds since epoch)."""

    def now(self) -> float:
        raise NotImplementedError

    def now_datetime(self) -> XSDateTime:
        return XSDateTime.from_epoch(self.now())


class RealClock(Clock):
    def now(self) -> float:
        return _time.time()


class VirtualClock(Clock):
    """Deterministic simulated time, advanced explicitly."""

    def __init__(self, start: float = 1_000_000.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds


@dataclass(order=True)
class _PendingDelivery:
    due: float
    order: int
    msg_id: int = field(compare=False)
    target: str = field(compare=False)


class EchoService:
    """Schedules echo-queue deliveries on a clock."""

    def __init__(self, clock: Clock):
        self.clock = clock
        self._heap: list[_PendingDelivery] = []
        self._counter = itertools.count()
        self.scheduled = 0
        self.delivered = 0

    def schedule(self, msg_id: int, timeout_seconds: float,
                 target: str) -> None:
        """Register a message for delivery after *timeout_seconds*."""
        due = self.clock.now() + max(0.0, float(timeout_seconds))
        heapq.heappush(self._heap,
                       _PendingDelivery(due, next(self._counter), msg_id,
                                        target))
        self.scheduled += 1

    def due_deliveries(self) -> list[tuple[int, str]]:
        """Pop every delivery whose time has come: [(msg_id, target)]."""
        now = self.clock.now()
        out: list[tuple[int, str]] = []
        while self._heap and self._heap[0].due <= now:
            entry = heapq.heappop(self._heap)
            out.append((entry.msg_id, entry.target))
            self.delivered += 1
        return out

    def next_due(self) -> float | None:
        """Due time of the earliest pending delivery, if any."""
        return self._heap[0].due if self._heap else None

    def pending_count(self) -> int:
        return len(self._heap)
