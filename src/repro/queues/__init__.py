"""Queue runtime: messages, property resolution, clocks and echo timers."""

from .message import Message
from .properties import PropertyError, PropertyResolver
from .timers import Clock, EchoService, RealClock, VirtualClock

__all__ = [
    "Message",
    "PropertyError", "PropertyResolver",
    "Clock", "EchoService", "RealClock", "VirtualClock",
]
