"""Message property resolution (paper §2.2).

Properties are key/value pairs "determined during message creation and
remain fixed over the message's lifetime".  Four sources, resolved here
in the order the paper implies:

* **fixed/computed** — a *fixed* property always takes its computed value
  (explicit settings are rejected at compile time; a runtime attempt is a
  property error);
* **explicit** — a ``with name value expr`` clause on the enqueue;
* **inherited** — copied from the triggering message if the property is
  declared ``inherited``;
* **computed default** — the ``queue … value <expr>`` expression evaluated
  against the new message's body.

System properties (``creationTime``, ``creatingRule``, ``sourceQueue``,
``Sender``, ``connectionHandle`` …) are merged in by the executor and the
gateway subsystem and cannot be shadowed (enforced by the validator).
"""

from __future__ import annotations

from typing import Optional

from ..qdl.model import Application
from ..xmldm import Document
from ..xquery import DynamicContext, active_backend, make_evaluator
from ..xquery.atomics import UntypedAtomic, cast_atomic
from ..xquery.errors import XQueryError
from ..xquery.sequence import atomize


class PropertyError(Exception):
    """A property could not be established for a new message."""


class PropertyResolver:
    """Computes the full property set of a message entering a queue.

    Within one resolution, computed expressions are cached by their
    source text: when several consumers bind the same expression on a
    queue (a property, a slicing key, an index key), the expression is
    evaluated once against the body instead of once per consumer.
    ``evaluations`` counts actual expression evaluations (cache misses).
    """

    def __init__(self, app: Application):
        self.app = app
        self.evaluations = 0
        #: (backend, value source) -> evaluation callable; property value
        #: expressions are compiled once per deployment, not per message.
        self._evaluators: dict[tuple[str, str], object] = {}

    def resolve(self, queue: str, body: Document,
                explicit: dict[str, object] | None = None,
                trigger_properties: dict[str, object] | None = None,
                system: dict[str, object] | None = None
                ) -> dict[str, object]:
        """The property dict for a new message.

        *explicit* comes from ``with`` clauses, *trigger_properties* from
        the message whose processing created this one, *system* from the
        engine (clock, rule name, transport metadata).
        """
        explicit = dict(explicit or {})
        trigger_properties = trigger_properties or {}
        resolved: dict[str, object] = {}
        computed_cache: dict[str, list] = {}

        for prop in self.app.properties.values():
            binding = prop.binding_for(queue)
            if binding is None:
                continue
            if prop.fixed:
                if prop.name in explicit:
                    raise PropertyError(
                        f"property {prop.name!r} is fixed and may not be "
                        "set explicitly")
                value = self._compute(binding, body, prop.type_name,
                                      prop.name, computed_cache)
            elif prop.name in explicit:
                value = self._cast(explicit.pop(prop.name), prop.type_name,
                                   prop.name)
            elif prop.inherited and prop.name in trigger_properties:
                value = trigger_properties[prop.name]
            else:
                value = self._compute(binding, body, prop.type_name,
                                      prop.name, computed_cache)
            if value is not None:
                resolved[prop.name] = value

        # Ad-hoc explicit properties (undeclared): kept as-is — the paper's
        # Fig. 5 sets "Sender" this way for the communication subsystem.
        for name, value in explicit.items():
            resolved[name] = _plain(value)

        # Inherited-but-undeclared system values (e.g. connectionHandle)
        # propagate when the app marks them inherited; system values win.
        for name, value in (system or {}).items():
            resolved[name] = _plain(value)
        return resolved

    def inheritable(self, trigger_properties: dict[str, object]
                    ) -> dict[str, object]:
        """The subset of a trigger's properties that may be inherited."""
        out = {}
        for prop in self.app.properties.values():
            if prop.inherited and prop.name in trigger_properties:
                out[prop.name] = trigger_properties[prop.name]
        return out

    def _compute(self, binding, body: Document, type_name: str,
                 prop_name: str,
                 cache: dict[str, list] | None = None) -> object | None:
        key = binding.value_source
        if cache is not None and key in cache:
            result = cache[key]
        else:
            ctx = DynamicContext(item=body)
            try:
                self.evaluations += 1
                result = atomize(self._evaluator(binding)(ctx))
            except XQueryError as exc:
                raise PropertyError(
                    f"computing property {prop_name!r}: {exc}") from exc
            if cache is not None:
                cache[key] = result
        if not result:
            return None
        if len(result) > 1:
            raise PropertyError(
                f"property {prop_name!r} expression produced "
                f"{len(result)} values")
        return self._cast(result[0], type_name, prop_name)

    def _evaluator(self, binding):
        backend = active_backend()
        key = (backend, binding.value_source)
        run = self._evaluators.get(key)
        if run is None:
            run = make_evaluator(binding.value, backend)
            self._evaluators[key] = run
        return run

    def _cast(self, value: object, type_name: str, prop_name: str) -> object:
        if isinstance(value, UntypedAtomic):
            value = str(value)
        try:
            return cast_atomic(value, type_name)
        except XQueryError as exc:
            raise PropertyError(
                f"property {prop_name!r}: {exc}") from exc


def _plain(value: object) -> object:
    return str(value) if isinstance(value, UntypedAtomic) else value
