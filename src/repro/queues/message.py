"""Runtime message objects.

A :class:`Message` wraps a catalog entry from the store.  Body decoding
and parsing live in the store's bounded parsed-document cache (messages
are append-only, so the parse can be shared safely across every handle
over the same message — queue scans create many short-lived handles).
Everything rules see — ``qs:message()``, ``qs:queue()``, ``qs:slice()``
— goes through these wrappers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..xmldm import Document

if TYPE_CHECKING:  # pragma: no cover
    from ..storage import MessageStore, StoredMessage


class Message:
    """A live message: metadata plus lazily-parsed XML body."""

    __slots__ = ("meta", "_store", "_body")

    def __init__(self, meta: "StoredMessage", store: "MessageStore"):
        self.meta = meta
        self._store = store
        self._body: Optional[Document] = None

    @property
    def msg_id(self) -> int:
        return self.meta.msg_id

    @property
    def queue(self) -> str:
        return self.meta.queue

    @property
    def seqno(self) -> int:
        return self.meta.seqno

    @property
    def processed(self) -> bool:
        return self.meta.processed

    @property
    def properties(self) -> dict[str, object]:
        return self.meta.properties

    @property
    def body(self) -> Document:
        if self._body is None:
            self._body = self._store.parsed_body(self.msg_id)
        return self._body

    # Defined after the decorated members: the method name shadows the
    # builtin ``property`` for the rest of the class body.
    def property(self, name: str) -> object | None:
        return self.meta.properties.get(name)

    def body_text(self) -> str:
        return self._store.body_text(self.msg_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Message {self.msg_id} in {self.queue!r}>"
