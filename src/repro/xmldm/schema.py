"""A compact XML-Schema-subset validator for queue message schemas.

The paper (§2.1.1) lets ``create queue`` name "a schema all queued
messages have to conform to"; enqueueing a non-conforming message is a
*message related error* (§3.6) routed to an error queue.  Full W3C XML
Schema is far out of scope; this module implements the structural subset
that queue validation needs:

* element declarations with ``sequence`` / ``choice`` content models,
* occurrence constraints (``minOccurs`` / ``maxOccurs`` / ``unbounded``),
* simple-typed leaves (``xs:string``, ``xs:integer``, ``xs:decimal``,
  ``xs:double``, ``xs:boolean``, ``xs:dateTime``, ``xs:anyType``),
* attribute declarations with ``use="required|optional"``,
* wildcard ``any`` particles.

Schemas are themselves written as XML (a compact, XSD-flavoured dialect),
so applications keep the everything-is-XML property.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .nodes import Comment, Document, Element, Node, ProcessingInstruction, Text
from .parser import parse

_UNBOUNDED = float("inf")


class SchemaError(Exception):
    """Raised for malformed schema documents."""


@dataclass
class ValidationError:
    """One validation failure with a /path/to/the/offender."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


# -- simple type checks ------------------------------------------------------

_BOOLEAN_VALUES = {"true", "false", "0", "1"}
_INTEGER_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)$")
_DOUBLE_RE = re.compile(r"^([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|INF|-INF|NaN)$")
_DATETIME_RE = re.compile(
    r"^-?\d{4,}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(\.\d+)?(Z|[+-]\d{2}:\d{2})?$")


def check_simple_type(type_name: str, value: str) -> bool:
    """True if *value*'s lexical form conforms to the named ``xs:`` type."""
    if type_name in ("xs:string", "xs:anyType", "string"):
        return True
    stripped = value.strip()
    if type_name in ("xs:integer", "xs:int", "xs:long"):
        return bool(_INTEGER_RE.match(stripped))
    if type_name == "xs:decimal":
        return bool(_DECIMAL_RE.match(stripped))
    if type_name == "xs:double":
        return bool(_DOUBLE_RE.match(stripped))
    if type_name == "xs:boolean":
        return stripped in _BOOLEAN_VALUES
    if type_name == "xs:dateTime":
        return bool(_DATETIME_RE.match(stripped))
    raise SchemaError(f"unknown simple type {type_name!r}")


# -- schema components -------------------------------------------------------

@dataclass
class AttributeDecl:
    name: str
    type_name: str = "xs:string"
    required: bool = False


@dataclass
class Particle:
    """A slot in a content model: an element decl, wildcard, or group."""

    min_occurs: int = 1
    max_occurs: float = 1


@dataclass
class ElementDecl(Particle):
    name: str = ""
    type_name: str | None = None           # simple content type, if a leaf
    content: "Group | None" = None         # complex content model
    attributes: list[AttributeDecl] = field(default_factory=list)


@dataclass
class AnyParticle(Particle):
    """Matches any single element (xs:any)."""


@dataclass
class Group(Particle):
    kind: str = "sequence"                  # "sequence" | "choice"
    particles: list[Particle] = field(default_factory=list)


@dataclass
class Schema:
    """A compiled schema: one or more permitted root element declarations."""

    roots: dict[str, ElementDecl] = field(default_factory=dict)

    def validate(self, document: Document | Element) -> list[ValidationError]:
        """Validate a message; an empty list means the message conforms."""
        root = (document.root_element if isinstance(document, Document)
                else document)
        if root is None:
            return [ValidationError("/", "document has no root element")]
        decl = self.roots.get(root.name.local_name)
        if decl is None:
            allowed = ", ".join(sorted(self.roots)) or "(none)"
            return [ValidationError(
                "/", f"unexpected root element <{root.name.local_name}>; "
                     f"schema allows: {allowed}")]
        errors: list[ValidationError] = []
        _validate_element(root, decl, f"/{root.name.local_name}", errors)
        return errors

    def is_valid(self, document: Document | Element) -> bool:
        return not self.validate(document)


def _content_children(element: Element) -> list[Element]:
    return [c for c in element.children if isinstance(c, Element)]


def _validate_element(element: Element, decl: ElementDecl, path: str,
                      errors: list[ValidationError]) -> None:
    declared = {attr.name: attr for attr in decl.attributes}
    seen = set()
    for attr in element.attributes:
        name = attr.name.local_name
        seen.add(name)
        attr_decl = declared.get(name)
        if attr_decl is None:
            errors.append(ValidationError(path, f"undeclared attribute @{name}"))
        elif not check_simple_type(attr_decl.type_name, attr.value):
            errors.append(ValidationError(
                path, f"@{name}={attr.value!r} is not a valid "
                      f"{attr_decl.type_name}"))
    for name, attr_decl in declared.items():
        if attr_decl.required and name not in seen:
            errors.append(ValidationError(path, f"missing required attribute @{name}"))

    if decl.content is not None:
        children = _content_children(element)
        saved = len(errors)
        result = _match_group_once(children, 0, decl.content, path, errors)
        if result is None:
            if len(errors) == saved:
                errors.append(ValidationError(
                    path, f"content does not match the "
                          f"{decl.content.kind} model"))
        elif result < len(children):
            extra = children[result]
            errors.append(ValidationError(
                f"{path}/{extra.name.local_name}",
                "element not allowed by the content model"))
    else:
        type_name = decl.type_name or "xs:string"
        if _content_children(element):
            errors.append(ValidationError(
                path, f"element declared with simple type {type_name} "
                      "must not have element children"))
        elif not check_simple_type(type_name, element.string_value):
            errors.append(ValidationError(
                path, f"value {element.string_value!r} is not a valid {type_name}"))


def _match_particle(children: list[Element], pos: int, particle: Particle,
                    path: str, errors: list[ValidationError]) -> int | None:
    """Try to match one occurrence; return new position or None."""
    if isinstance(particle, AnyParticle):
        return pos + 1 if pos < len(children) else None
    if isinstance(particle, ElementDecl):
        if pos < len(children) and children[pos].name.local_name == particle.name:
            child = children[pos]
            _validate_element(child, particle,
                              f"{path}/{particle.name}", errors)
            return pos + 1
        return None
    if isinstance(particle, Group):
        saved = len(errors)
        result = _match_group_once(children, pos, particle, path, errors)
        if result is None:
            del errors[saved:]
        return result
    raise SchemaError(f"unknown particle {particle!r}")


def _match_group_once(children: list[Element], pos: int, group: Group,
                      path: str, errors: list[ValidationError]) -> int | None:
    if group.kind == "sequence":
        for particle in group.particles:
            new_pos = _match_occurrences(children, pos, particle, path, errors)
            if new_pos is None:
                return None
            pos = new_pos
        return pos
    if group.kind == "choice":
        for particle in group.particles:
            new_pos = _match_occurrences(children, pos, particle, path, errors,
                                         choice_branch=True)
            if new_pos is not None:
                return new_pos
        return None
    raise SchemaError(f"unknown group kind {group.kind!r}")


def _match_occurrences(children: list[Element], pos: int, particle: Particle,
                       path: str, errors: list[ValidationError],
                       choice_branch: bool = False) -> int | None:
    count = 0
    while count < particle.max_occurs:
        new_pos = _match_particle(children, pos, particle, path, errors)
        if new_pos is None:
            break
        pos = new_pos
        count += 1
    if count < particle.min_occurs:
        if choice_branch:
            return None
        label = (particle.name if isinstance(particle, ElementDecl)
                 else getattr(particle, "kind", "any"))
        errors.append(ValidationError(
            path, f"expected at least {particle.min_occurs} <{label}>, "
                  f"found {count}"))
        return None
    return pos


# -- schema compilation from the XML dialect ---------------------------------

def _occurs(element: Element) -> tuple[int, float]:
    min_raw = element.attribute_value("minOccurs")
    max_raw = element.attribute_value("maxOccurs")
    min_occurs = int(min_raw) if min_raw is not None else 1
    if max_raw is None:
        max_occurs: float = 1
    elif max_raw == "unbounded":
        max_occurs = _UNBOUNDED
    else:
        max_occurs = int(max_raw)
    if min_occurs < 0 or max_occurs < min_occurs:
        raise SchemaError(
            f"bad occurrence bounds on <{element.name.local_name}>: "
            f"{min_occurs}..{max_raw}")
    return min_occurs, max_occurs


def _compile_element(element: Element) -> ElementDecl:
    name = element.attribute_value("name")
    if not name:
        raise SchemaError("element declaration needs a name attribute")
    min_occurs, max_occurs = _occurs(element)
    decl = ElementDecl(name=name, min_occurs=min_occurs, max_occurs=max_occurs,
                       type_name=element.attribute_value("type"))
    for child in element.child_elements():
        local = child.name.local_name
        if local == "attribute":
            attr_name = child.attribute_value("name")
            if not attr_name:
                raise SchemaError(f"attribute declaration in <{name}> needs a name")
            decl.attributes.append(AttributeDecl(
                name=attr_name,
                type_name=child.attribute_value("type") or "xs:string",
                required=child.attribute_value("use") == "required"))
        elif local in ("sequence", "choice"):
            if decl.content is not None:
                raise SchemaError(f"<{name}> has more than one content model")
            decl.content = _compile_group(child)
        else:
            raise SchemaError(f"unexpected <{local}> inside element declaration")
    if decl.content is not None and decl.type_name is not None:
        raise SchemaError(f"<{name}> cannot have both a type and a content model")
    return decl


def _compile_group(element: Element) -> Group:
    min_occurs, max_occurs = _occurs(element)
    group = Group(kind=element.name.local_name,
                  min_occurs=min_occurs, max_occurs=max_occurs)
    for child in element.child_elements():
        local = child.name.local_name
        if local == "element":
            group.particles.append(_compile_element(child))
        elif local in ("sequence", "choice"):
            group.particles.append(_compile_group(child))
        elif local == "any":
            any_min, any_max = _occurs(child)
            group.particles.append(AnyParticle(any_min, any_max))
        else:
            raise SchemaError(f"unexpected <{local}> inside a content model")
    if not group.particles:
        raise SchemaError(f"empty <{group.kind}> group")
    return group


def compile_schema(source: str | Document) -> Schema:
    """Compile a schema document into a :class:`Schema`.

    >>> schema = compile_schema('''
    ...   <schema>
    ...     <element name="order">
    ...       <sequence><element name="id" type="xs:integer"/></sequence>
    ...     </element>
    ...   </schema>''')
    >>> schema.is_valid(parse("<order><id>12</id></order>"))
    True
    >>> [str(e) for e in schema.validate(parse("<order><id>x</id></order>"))]
    ["/order/id: value 'x' is not a valid xs:integer"]
    """
    document = parse(source) if isinstance(source, str) else source
    root = document.root_element
    if root is None or root.name.local_name != "schema":
        raise SchemaError("schema document must have a <schema> root")
    schema = Schema()
    for child in root.child_elements("element"):
        decl = _compile_element(child)
        if decl.name in schema.roots:
            raise SchemaError(f"duplicate root declaration <{decl.name}>")
        schema.roots[decl.name] = decl
    if not schema.roots:
        raise SchemaError("schema declares no root elements")
    return schema
