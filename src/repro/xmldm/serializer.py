"""Serialization of XML data model trees back to markup.

The round-trip property ``parse(serialize(parse(x)))`` ≡ ``parse(x)`` is
exercised by property-based tests; the message store persists messages in
serialized form, so correctness here is load-bearing for recovery.
"""

from __future__ import annotations

from io import StringIO

from .nodes import (Attribute, Comment, Document, Element, Node,
                    ProcessingInstruction, Text, XMLError)


def escape_text(value: str) -> str:
    """Escape character data."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace('"', "&quot;")
                 .replace("\n", "&#10;")
                 .replace("\t", "&#9;"))


def serialize(node: Node, indent: int | None = None,
              xml_declaration: bool = False) -> str:
    """Serialize a node (document, element, or leaf) to markup.

    *indent* enables pretty printing with the given step; note that pretty
    printing inserts whitespace text and therefore does not round-trip
    mixed content — the store always serializes compactly.
    """
    out = StringIO()
    if xml_declaration:
        out.write('<?xml version="1.0" encoding="UTF-8"?>')
        if indent is not None:
            out.write("\n")
    _write(node, out, indent, 0)
    return out.getvalue()


def _write(node: Node, out: StringIO, indent: int | None, depth: int) -> None:
    if isinstance(node, Document):
        first = True
        for child in node.children:
            if indent is not None and not first:
                out.write("\n")
            _write(child, out, indent, depth)
            first = False
    elif isinstance(node, Element):
        _write_element(node, out, indent, depth)
    elif isinstance(node, Text):
        out.write(escape_text(node.value))
    elif isinstance(node, Comment):
        out.write(f"<!--{node.value}-->")
    elif isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        out.write(f"<?{node.target}{data}?>")
    elif isinstance(node, Attribute):
        out.write(f'{node.name.lexical}="{escape_attribute(node.value)}"')
    else:
        raise XMLError(f"cannot serialize node kind {node.kind!r}")


def _write_element(element: Element, out: StringIO,
                   indent: int | None, depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    out.write(f"{pad}<{element.name.lexical}")
    for prefix, uri in sorted(element.namespaces.items()):
        attr = "xmlns" if prefix == "" else f"xmlns:{prefix}"
        out.write(f' {attr}="{escape_attribute(uri)}"')
    for attr in element.attributes:
        out.write(f' {attr.name.lexical}="{escape_attribute(attr.value)}"')
    children = element.children
    if not children:
        out.write("/>")
        return
    out.write(">")
    only_elements = all(isinstance(c, (Element, Comment, ProcessingInstruction))
                        for c in children)
    pretty_children = indent is not None and only_elements
    for child in children:
        if pretty_children:
            out.write("\n")
            if not isinstance(child, Element):
                out.write(" " * (indent * (depth + 1)))
        _write(child, out, indent if pretty_children else None, depth + 1)
    if pretty_children:
        out.write("\n" + pad)
    out.write(f"</{element.name.lexical}>")
