"""A hand-written, namespace-aware XML parser.

Produces :mod:`repro.xmldm.nodes` trees.  Supports the XML subset that
matters for message processing: elements, attributes, character data with
the five predefined entities and numeric character references, CDATA
sections, comments, processing instructions, an optional XML declaration,
and namespace declarations (``xmlns``/``xmlns:p``).

DTDs are intentionally rejected: messages come from untrusted remote
peers, and DTD processing (entity expansion, external subsets) is the
classic XML attack surface.  A truncated or malformed message raises
:class:`XMLParseError` carrying line/column information — the rule engine
turns these into error-queue messages (paper §3.6, "message related
errors").
"""

from __future__ import annotations

from .nodes import (Attribute, Comment, Document, Element, Node,
                    ProcessingInstruction, Text, XMLError)
from .qname import XMLNS_NAMESPACE, QName

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class XMLParseError(XMLError):
    """Raised on malformed input; carries 1-based line and column."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class _Scanner:
    """Cursor over the input with line/column tracking."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self, pos: int | None = None) -> tuple[int, int]:
        pos = self.pos if pos is None else pos
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        column = pos - last_nl
        return line, column

    def error(self, message: str, pos: int | None = None) -> XMLParseError:
        line, column = self.location(pos)
        return XMLParseError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or self.text[self.pos] not in _NAME_START:
            raise self.error("expected an XML name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start:self.pos]

    def read_until(self, token: str, what: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        value = self.text[self.pos:end]
        self.pos = end + len(token)
        return value


def _decode_entity(scanner: _Scanner) -> str:
    """Decode an entity/char reference; scanner sits just past the ``&``."""
    if scanner.peek() == "#":
        scanner.advance()
        if scanner.peek() in ("x", "X"):
            scanner.advance()
            digits = scanner.read_until(";", "character reference")
            try:
                return chr(int(digits, 16))
            except (ValueError, OverflowError):
                raise scanner.error(f"bad hex character reference &#x{digits};")
        digits = scanner.read_until(";", "character reference")
        try:
            return chr(int(digits, 10))
        except (ValueError, OverflowError):
            raise scanner.error(f"bad character reference &#{digits};")
    name = scanner.read_until(";", "entity reference")
    try:
        return _PREDEFINED_ENTITIES[name]
    except KeyError:
        raise scanner.error(f"unknown entity &{name};") from None


def _decode_text(scanner: _Scanner, stop_char: str,
                 forbid_lt: bool = False) -> str:
    """Read character data until *stop_char*, decoding references.

    With *forbid_lt*, a literal ``<`` is a well-formedness error (attribute
    values); a ``&lt;`` reference is still fine.
    """
    parts: list[str] = []
    while not scanner.at_end():
        char = scanner.peek()
        if char == stop_char:
            break
        if char == "<" and forbid_lt:
            raise scanner.error("'<' not allowed in attribute values")
        scanner.advance()
        if char == "&":
            parts.append(_decode_entity(scanner))
        else:
            parts.append(char)
    return "".join(parts)


class XMLParser:
    """Parses a complete document (or fragment) into a :class:`Document`."""

    def __init__(self, text: str, base_uri: str | None = None):
        self._scanner = _Scanner(text)
        self._base_uri = base_uri

    def parse_document(self) -> Document:
        scanner = self._scanner
        document = Document(base_uri=self._base_uri)
        self._parse_prolog(document)
        scanner.skip_whitespace()
        if scanner.at_end() or scanner.peek() != "<":
            raise scanner.error("expected a root element")
        root = self._parse_element(parent_namespaces={})
        document.append(root)
        # Trailing misc: comments / PIs / whitespace only.
        while not scanner.at_end():
            scanner.skip_whitespace()
            if scanner.at_end():
                break
            if scanner.startswith("<!--"):
                document.append(self._parse_comment())
            elif scanner.startswith("<?"):
                document.append(self._parse_pi())
            else:
                raise scanner.error("content after the root element")
        document.ensure_order()
        return document

    # -- pieces ----------------------------------------------------------

    def _parse_prolog(self, document: Document) -> None:
        scanner = self._scanner
        scanner.skip_whitespace()
        if scanner.startswith("<?xml"):
            scanner.read_until("?>", "XML declaration")
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("<!--"):
                document.append(self._parse_comment())
            elif scanner.startswith("<!DOCTYPE"):
                raise scanner.error("DTDs are not accepted in messages")
            elif scanner.startswith("<?"):
                document.append(self._parse_pi())
            else:
                return

    def _parse_comment(self) -> Comment:
        scanner = self._scanner
        scanner.expect("<!--")
        value = scanner.read_until("-->", "comment")
        if "--" in value:
            raise scanner.error("'--' not allowed inside a comment")
        return Comment(value)

    def _parse_pi(self) -> ProcessingInstruction:
        scanner = self._scanner
        scanner.expect("<?")
        target = scanner.read_name()
        if target.lower() == "xml":
            raise scanner.error("reserved processing-instruction target 'xml'")
        scanner.skip_whitespace()
        data = scanner.read_until("?>", "processing instruction")
        return ProcessingInstruction(target, data)

    def _parse_element(self, parent_namespaces: dict[str, str]) -> Element:
        scanner = self._scanner
        open_pos = scanner.pos
        scanner.expect("<")
        raw_name = scanner.read_name()

        raw_attributes: list[tuple[str, str]] = []
        declared: dict[str, str] = {}
        default_ns_declared: str | None = None
        has_default_decl = False

        while True:
            had_space = scanner.peek() in " \t\r\n"
            scanner.skip_whitespace()
            char = scanner.peek()
            if char == ">" or scanner.startswith("/>"):
                break
            if scanner.at_end():
                raise scanner.error("unterminated start tag", open_pos)
            if not had_space:
                raise scanner.error("expected whitespace before attribute")
            attr_name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            quote = scanner.peek()
            if quote not in ("'", '"'):
                raise scanner.error("attribute value must be quoted")
            scanner.advance()
            value = _decode_text(scanner, quote, forbid_lt=True)
            scanner.expect(quote)
            if attr_name == "xmlns":
                has_default_decl = True
                default_ns_declared = value or None
            elif attr_name.startswith("xmlns:"):
                prefix = attr_name[len("xmlns:"):]
                if not value:
                    raise scanner.error(f"cannot undeclare prefix {prefix!r}")
                declared[prefix] = value
            else:
                raw_attributes.append((attr_name, value))

        namespaces = dict(parent_namespaces)
        namespaces.update(declared)
        if has_default_decl:
            if default_ns_declared is None:
                namespaces.pop("", None)
            else:
                namespaces[""] = default_ns_declared

        default_uri = namespaces.get("")
        try:
            name = QName.parse(raw_name, namespaces, default_uri)
        except ValueError as exc:
            raise scanner.error(str(exc), open_pos) from None

        own_decls = dict(declared)
        if has_default_decl:
            own_decls[""] = default_ns_declared or ""
        element = Element(name, namespaces=own_decls)

        for attr_name, value in raw_attributes:
            try:
                # Unprefixed attributes are in *no* namespace, never the default.
                attr_qname = QName.parse(attr_name, namespaces, None)
            except ValueError as exc:
                raise scanner.error(str(exc), open_pos) from None
            try:
                element.set_attribute(Attribute(attr_qname, value))
            except XMLError as exc:
                raise scanner.error(str(exc), open_pos) from None

        if scanner.startswith("/>"):
            scanner.advance(2)
            return element

        scanner.expect(">")
        self._parse_content(element, namespaces)
        scanner.expect("</")
        close_name = scanner.read_name()
        if close_name != raw_name:
            raise scanner.error(
                f"mismatched end tag: expected </{raw_name}>, got </{close_name}>")
        scanner.skip_whitespace()
        scanner.expect(">")
        return element

    def _parse_content(self, element: Element, namespaces: dict[str, str]) -> None:
        scanner = self._scanner
        pending_text: list[str] = []

        def flush_text() -> None:
            if pending_text:
                element.append(Text("".join(pending_text)))
                pending_text.clear()

        while True:
            if scanner.at_end():
                raise scanner.error(f"unterminated element <{element.name}>")
            if scanner.startswith("</"):
                flush_text()
                return
            if scanner.startswith("<![CDATA["):
                scanner.advance(len("<![CDATA["))
                pending_text.append(scanner.read_until("]]>", "CDATA section"))
            elif scanner.startswith("<!--"):
                flush_text()
                element.append(self._parse_comment())
            elif scanner.startswith("<?"):
                flush_text()
                element.append(self._parse_pi())
            elif scanner.peek() == "<":
                flush_text()
                element.append(self._parse_element(namespaces))
            else:
                text = _decode_text(scanner, "<")
                if "]]>" in text:
                    raise scanner.error("']]>' not allowed in character data")
                pending_text.append(text)


def parse(text: str, base_uri: str | None = None) -> Document:
    """Parse an XML document string into a :class:`Document`.

    >>> doc = parse("<order><id>7</id></order>")
    >>> doc.root_element.first_child("id").text
    '7'
    """
    if not isinstance(text, str):
        raise TypeError(f"parse() needs str, got {type(text).__name__}")
    return XMLParser(text, base_uri).parse_document()


def parse_fragment(text: str) -> list[Node]:
    """Parse mixed content (no single-root requirement) into a node list."""
    wrapped = parse(f"<fragment-wrapper>{text}</fragment-wrapper>")
    children = list(wrapped.root_element.children)
    for child in children:
        child.parent = None
    return children
