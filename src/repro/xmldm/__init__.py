"""XML data model: nodes, parser, serializer, schema validation.

This package is the Natix-style "native XML" substrate every other layer
builds on.  See DESIGN.md §3.
"""

from .nodes import (Attribute, Comment, Document, Element, Node,
                    ProcessingInstruction, Text, XMLError, deep_copy)
from .parser import XMLParseError, parse, parse_fragment
from .qname import QName
from .schema import (Schema, SchemaError, ValidationError, check_simple_type,
                     compile_schema)
from .serializer import escape_attribute, escape_text, serialize

__all__ = [
    "Attribute", "Comment", "Document", "Element", "Node",
    "ProcessingInstruction", "Text", "XMLError", "deep_copy",
    "XMLParseError", "parse", "parse_fragment",
    "QName",
    "Schema", "SchemaError", "ValidationError", "check_simple_type",
    "compile_schema",
    "escape_attribute", "escape_text", "serialize",
]
