"""XML data model node classes.

This is the tree model every other subsystem builds on: the XQuery engine
navigates it, the message store serializes it, and queue schemas validate
it.  The model is deliberately close to the XQuery/XPath Data Model (XDM):

* seven node kinds, of which we implement the six that can occur in
  messages (document, element, attribute, text, comment,
  processing-instruction — namespace nodes are folded into elements);
* every node knows its parent, so reverse axes work;
* nodes are ordered by *document order*, maintained lazily per document
  so construction stays O(1) amortized.

Demaq messages are append-only — trees are built once and then only read —
so the model favours cheap construction and fast navigation over in-place
mutation (mutators exist for tree *construction* but are not part of the
public message API).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from .qname import QName

_DOC_COUNTER = itertools.count(1)


class XMLError(Exception):
    """Base class for XML data model errors."""


class Node:
    """Abstract base of all node kinds."""

    __slots__ = ("parent", "_ord")

    kind: str = "node"

    def __init__(self) -> None:
        self.parent: Optional[Node] = None
        self._ord: int = -1

    # -- tree navigation ------------------------------------------------

    @property
    def children(self) -> list["Node"]:
        """Child nodes (empty for leaf kinds)."""
        return []

    @property
    def root(self) -> "Node":
        """The root of the containing tree (a Document for parsed messages)."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    @property
    def document(self) -> Optional["Document"]:
        """The owning document, or ``None`` for parentless fragments."""
        root = self.root
        return root if isinstance(root, Document) else None

    def ancestors(self) -> Iterator["Node"]:
        """Ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["Node"]:
        """Descendants in document order (attributes excluded, per XDM)."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def descendants_or_self(self) -> Iterator["Node"]:
        yield self
        yield from self.descendants()

    def following_siblings(self) -> Iterator["Node"]:
        if self.parent is None:
            return
        siblings = self.parent.children
        try:
            idx = siblings.index(self)
        except ValueError:
            return
        yield from siblings[idx + 1:]

    def preceding_siblings(self) -> Iterator["Node"]:
        """Preceding siblings in *reverse* document order (axis order)."""
        if self.parent is None:
            return
        siblings = self.parent.children
        try:
            idx = siblings.index(self)
        except ValueError:
            return
        yield from reversed(siblings[:idx])

    # -- document order ---------------------------------------------------

    def order_key(self) -> tuple[int, int]:
        """A sortable key implementing document order across documents.

        Nodes from different trees compare by tree identity (creation
        order of their root), nodes within a tree by pre-order position.
        """
        root = self.root
        if isinstance(root, Document):
            root.ensure_order()
            return (root.doc_id, self._ord)
        # Parentless fragment: give it a stable per-tree numbering.
        _number_tree(root)
        return (id(root), self._ord)

    # -- values -----------------------------------------------------------

    @property
    def string_value(self) -> str:
        raise NotImplementedError

    @property
    def node_name(self) -> Optional[QName]:
        """The node's expanded name, or ``None`` for unnamed kinds."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {self.node_name or ''}>"


def _number_tree(root: Node) -> None:
    """Assign pre-order positions to every node under *root*."""
    counter = itertools.count(0)
    stack = [root]
    while stack:
        node = stack.pop()
        node._ord = next(counter)
        if isinstance(node, Element):
            for attr in node.attributes:
                attr._ord = next(counter)
        stack.extend(reversed(node.children))


class Document(Node):
    """A document node: the root of every parsed message."""

    __slots__ = ("_children", "doc_id", "base_uri", "_order_clean")

    kind = "document"

    def __init__(self, children: list[Node] | None = None, base_uri: str | None = None):
        super().__init__()
        self._children: list[Node] = []
        self.doc_id = next(_DOC_COUNTER)
        self.base_uri = base_uri
        self._order_clean = False
        for child in children or []:
            self.append(child)

    @property
    def children(self) -> list[Node]:
        return self._children

    def append(self, child: Node) -> None:
        if isinstance(child, (Attribute, Document)):
            raise XMLError(f"cannot append {child.kind} node to a document")
        child.parent = self
        self._children.append(child)
        self._order_clean = False

    @property
    def root_element(self) -> Optional["Element"]:
        """The single element child, or ``None`` for element-less documents."""
        for child in self._children:
            if isinstance(child, Element):
                return child
        return None

    @property
    def string_value(self) -> str:
        return "".join(c.string_value for c in self._children
                       if isinstance(c, (Element, Text)))

    def ensure_order(self) -> None:
        if not self._order_clean:
            _number_tree(self)
            self._order_clean = True

    def invalidate_order(self) -> None:
        self._order_clean = False


class Element(Node):
    """An element node with attributes and children."""

    __slots__ = ("name", "attributes", "_children", "namespaces")

    kind = "element"

    def __init__(self, name: QName | str,
                 attributes: list["Attribute"] | None = None,
                 children: list[Node] | None = None,
                 namespaces: dict[str, str] | None = None):
        super().__init__()
        self.name = QName(name) if isinstance(name, str) else name
        self.attributes: list[Attribute] = []
        self._children: list[Node] = []
        #: In-scope namespace declarations made *on this element*.
        self.namespaces: dict[str, str] = dict(namespaces or {})
        for attr in attributes or []:
            self.set_attribute(attr)
        for child in children or []:
            self.append(child)

    @property
    def children(self) -> list[Node]:
        return self._children

    @property
    def node_name(self) -> QName:
        return self.name

    def append(self, child: Node) -> None:
        if isinstance(child, Document):
            # Appending a document node splices in its children (XQuery
            # constructor semantics).
            for sub in list(child.children):
                self.append(sub)
            return
        if isinstance(child, Attribute):
            self.set_attribute(child)
            return
        child.parent = self
        self._children.append(child)
        self._invalidate()

    def set_attribute(self, attr: "Attribute") -> None:
        if any(existing.name == attr.name for existing in self.attributes):
            raise XMLError(f"duplicate attribute {attr.name} on <{self.name}>")
        attr.parent = self
        self.attributes.append(attr)
        self._invalidate()

    def _invalidate(self) -> None:
        doc = self.document
        if doc is not None:
            doc.invalidate_order()

    # -- convenience accessors used throughout the code base ------------

    def attribute_value(self, name: str | QName) -> Optional[str]:
        """The value of the named attribute, or ``None``."""
        want = QName(name) if isinstance(name, str) else name
        for attr in self.attributes:
            if attr.name == want:
                return attr.value
        return None

    def child_elements(self, name: str | QName | None = None) -> list["Element"]:
        """Element children, optionally filtered by name."""
        want = QName(name) if isinstance(name, str) else name
        return [c for c in self._children
                if isinstance(c, Element) and (want is None or c.name == want)]

    def first_child(self, name: str | QName) -> Optional["Element"]:
        elements = self.child_elements(name)
        return elements[0] if elements else None

    @property
    def text(self) -> str:
        """Concatenated text of *direct* text-node children."""
        return "".join(c.value for c in self._children if isinstance(c, Text))

    @property
    def string_value(self) -> str:
        return "".join(c.string_value for c in self._children
                       if isinstance(c, (Element, Text)))

    def in_scope_namespaces(self) -> dict[str, str]:
        """Prefix→URI bindings visible at this element."""
        scopes: list[dict[str, str]] = [self.namespaces]
        for ancestor in self.ancestors():
            if isinstance(ancestor, Element):
                scopes.append(ancestor.namespaces)
        result: dict[str, str] = {}
        for scope in reversed(scopes):
            result.update(scope)
        return result


class Attribute(Node):
    """An attribute node.  Not a child of its element, per XDM."""

    __slots__ = ("name", "value")

    kind = "attribute"

    def __init__(self, name: QName | str, value: str):
        super().__init__()
        self.name = QName(name) if isinstance(name, str) else name
        self.value = str(value)

    @property
    def node_name(self) -> QName:
        return self.name

    @property
    def string_value(self) -> str:
        return self.value


class Text(Node):
    """A text node."""

    __slots__ = ("value",)

    kind = "text"

    def __init__(self, value: str):
        super().__init__()
        self.value = str(value)

    @property
    def string_value(self) -> str:
        return self.value


class Comment(Node):
    """A comment node."""

    __slots__ = ("value",)

    kind = "comment"

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    @property
    def string_value(self) -> str:
        return self.value


class ProcessingInstruction(Node):
    """A processing-instruction node."""

    __slots__ = ("target", "data")

    kind = "processing-instruction"

    def __init__(self, target: str, data: str = ""):
        super().__init__()
        self.target = target
        self.data = data

    @property
    def node_name(self) -> QName:
        return QName(self.target)

    @property
    def string_value(self) -> str:
        return self.data


def deep_copy(node: Node) -> Node:
    """Structurally copy a node (new identity, fresh document order).

    XQuery constructors copy their content; enqueue copies message bodies
    into the store.  Parents are not copied — the copy is parentless.
    """
    if isinstance(node, Document):
        return Document([deep_copy(c) for c in node.children],
                        base_uri=node.base_uri)
    if isinstance(node, Element):
        return Element(
            node.name,
            attributes=[Attribute(a.name, a.value) for a in node.attributes],
            children=[deep_copy(c) for c in node.children],
            namespaces=dict(node.namespaces),
        )
    if isinstance(node, Attribute):
        return Attribute(node.name, node.value)
    if isinstance(node, Text):
        return Text(node.value)
    if isinstance(node, Comment):
        return Comment(node.value)
    if isinstance(node, ProcessingInstruction):
        return ProcessingInstruction(node.target, node.data)
    raise XMLError(f"cannot copy node kind {node.kind!r}")
