"""Qualified names for the XML data model.

A :class:`QName` carries an optional namespace URI, a local name, and the
prefix it was written with (kept only for serialization; equality and
hashing ignore the prefix, as required by the XML namespaces
recommendation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Reserved namespace bound to the ``xml`` prefix.
XML_NAMESPACE = "http://www.w3.org/XML/1998/namespace"

#: Reserved namespace bound to the ``xmlns`` prefix.
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"

#: Namespace of the built-in Demaq queue-system function library (``qs:``).
QS_NAMESPACE = "http://demaq.net/queue-system"

#: Namespace of the XQuery/XPath functions library (``fn:``).
FN_NAMESPACE = "http://www.w3.org/2005/xpath-functions"

#: Namespace of XML Schema atomic types (``xs:``).
XS_NAMESPACE = "http://www.w3.org/2001/XMLSchema"


@dataclass(frozen=True, slots=True)
class QName:
    """An expanded XML name: ``(namespace_uri, local_name)`` plus prefix.

    >>> QName("order") == QName("order")
    True
    >>> QName("order", "urn:x") == QName("order")
    False
    >>> QName("order", "urn:x", prefix="p") == QName("order", "urn:x")
    True
    """

    local_name: str
    namespace_uri: str | None = None
    prefix: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.local_name:
            raise ValueError("QName local name must be non-empty")

    @property
    def lexical(self) -> str:
        """The name as written in a document (``prefix:local`` or ``local``)."""
        if self.prefix:
            return f"{self.prefix}:{self.local_name}"
        return self.local_name

    @property
    def clark(self) -> str:
        """Clark notation: ``{uri}local`` (or just ``local`` if unqualified)."""
        if self.namespace_uri:
            return f"{{{self.namespace_uri}}}{self.local_name}"
        return self.local_name

    def __str__(self) -> str:
        return self.lexical

    @classmethod
    def parse(cls, lexical: str, namespaces: dict[str, str] | None = None,
              default_namespace: str | None = None) -> "QName":
        """Parse ``prefix:local`` using a prefix→URI mapping.

        Unprefixed names resolve to *default_namespace* (``None`` means the
        name stays in no namespace, which is the common case for Demaq
        applications).
        """
        namespaces = namespaces or {}
        if ":" in lexical:
            prefix, local = lexical.split(":", 1)
            if not prefix or not local:
                raise ValueError(f"malformed QName: {lexical!r}")
            if prefix == "xml":
                return cls(local, XML_NAMESPACE, prefix)
            try:
                uri = namespaces[prefix]
            except KeyError:
                raise ValueError(f"undeclared namespace prefix: {prefix!r}") from None
            return cls(local, uri, prefix)
        return cls(lexical, default_namespace)
