"""Workload generators shared by tests, examples, and benchmarks."""

from .generators import (WorkloadConfig, offer_request, order_message,
                         payment_confirmation, procurement_application,
                         request_stream)

__all__ = [
    "WorkloadConfig", "offer_request", "order_message",
    "payment_confirmation", "procurement_application", "request_stream",
]
