"""Synthetic message workloads modelled on the paper's procurement
scenario (Fig. 3/4): offer requests, orders, confirmations, payments.

Deterministic by seed so benchmark runs are comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class WorkloadConfig:
    customers: int = 50
    items_per_order: int = 3
    seed: int = 42


def offer_request(request_id: str, customer_id: str,
                  items: int = 3, restricted: bool = False) -> str:
    flag = ' restricted="true"' if restricted else ""
    body = "".join(f"<item{flag if i == 0 else ''}>substance-{i}</item>"
                   for i in range(items))
    return (f"<offerRequest><requestID>{request_id}</requestID>"
            f"<customerID>{customer_id}</customerID>"
            f"<items>{body}</items></offerRequest>")


def order_message(order_id: int, customer_id: str, items: int = 3) -> str:
    lines = "".join(
        f"<line><sku>SKU-{i}</sku><qty>{(i % 5) + 1}</qty></line>"
        for i in range(items))
    return (f"<customerOrder><orderID>{order_id}</orderID>"
            f"<customerID>{customer_id}</customerID>{lines}</customerOrder>")


def payment_confirmation(request_id: str) -> str:
    return (f"<paymentConfirmation><requestID>{request_id}</requestID>"
            f"</paymentConfirmation>")


def request_stream(count: int, config: WorkloadConfig | None = None):
    """Yield (request_id, customer_id, body) triples."""
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    for index in range(count):
        customer = f"cust-{rng.randrange(config.customers)}"
        request_id = f"req-{index}"
        yield request_id, customer, offer_request(
            request_id, customer, config.items_per_order)


def procurement_application(priority_crm: int = 0) -> str:
    """A compact procurement app used by throughput benchmarks."""
    return f"""
create queue crm kind basic mode persistent priority {priority_crm};
create queue finance kind basic mode persistent;
create queue legal kind basic mode persistent;
create queue customer kind basic mode persistent;
create property requestID as xs:string fixed
    queue crm, customer value //requestID;
create slicing requestMsgs on requestID;
create rule fork for crm
    if (//offerRequest) then (
        do enqueue <check kind="credit">{{//requestID}}</check> into finance,
        do enqueue <check kind="legal">{{//requestID}}</check> into legal
    );
create rule credit for finance
    if (//check) then
        do enqueue <result kind="credit"><requestID>
            {{string(//requestID)}}</requestID><accept/></result> into crm;
create rule legalCheck for legal
    if (//check) then
        do enqueue <result kind="legal"><requestID>
            {{string(//requestID)}}</requestID><accept/></result> into crm;
create rule join for requestMsgs
    if (count(qs:slice()[//result]) = 2
        and not(qs:slice()[/offer])) then
        do enqueue <offer><requestID>{{string(qs:slicekey())}}</requestID>
            </offer> into customer;
create rule cleanup for requestMsgs
    if (qs:slice()[/offer]) then do reset
"""
