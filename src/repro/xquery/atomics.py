"""Atomic values of the XQuery data model.

We map XDM atomic types onto Python natives where the semantics line up —
``xs:string``→``str``, ``xs:integer``→``int``, ``xs:decimal``→``Decimal``,
``xs:double``→``float``, ``xs:boolean``→``bool`` — plus two dedicated
classes: :class:`UntypedAtomic` (atomization of unvalidated nodes, with
its special coercion rules) and :class:`XSDateTime` (timestamps for
message metadata and echo queues).

The helpers here implement the coercion machinery the evaluator needs:
casting, numeric promotion, untyped-atomic comparison rules.
"""

from __future__ import annotations

import math
import re
from datetime import datetime, timedelta, timezone
from decimal import Decimal, InvalidOperation

from .errors import DynamicError, FunctionError, TypeError_

AtomicValue = object  # str | int | float | bool | Decimal | UntypedAtomic | XSDateTime


class UntypedAtomic(str):
    """The ``xs:untypedAtomic`` type: a string that coerces by context."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"untypedAtomic({str.__repr__(self)})"


_DATETIME_RE = re.compile(
    r"^(?P<y>-?\d{4,})-(?P<mo>\d{2})-(?P<d>\d{2})"
    r"T(?P<h>\d{2}):(?P<mi>\d{2}):(?P<s>\d{2})(?P<frac>\.\d+)?"
    r"(?P<tz>Z|[+-]\d{2}:\d{2})?$")


class XSDateTime:
    """An ``xs:dateTime`` value.

    Backed by :class:`datetime.datetime`; values without a timezone are
    treated as UTC (Demaq stamps all message metadata in UTC).
    """

    __slots__ = ("value",)

    def __init__(self, value: datetime):
        if value.tzinfo is None:
            value = value.replace(tzinfo=timezone.utc)
        self.value = value

    @classmethod
    def parse(cls, lexical: str) -> "XSDateTime":
        match = _DATETIME_RE.match(lexical.strip())
        if not match:
            raise FunctionError(f"invalid xs:dateTime literal: {lexical!r}",
                                "FORG0001")
        frac = match.group("frac") or ""
        microsecond = int(float(frac) * 1_000_000) if frac else 0
        tz_raw = match.group("tz")
        if tz_raw in (None, "Z"):
            tzinfo = timezone.utc
        else:
            sign = 1 if tz_raw[0] == "+" else -1
            hours, minutes = int(tz_raw[1:3]), int(tz_raw[4:6])
            tzinfo = timezone(sign * timedelta(hours=hours, minutes=minutes))
        try:
            value = datetime(int(match.group("y")), int(match.group("mo")),
                             int(match.group("d")), int(match.group("h")),
                             int(match.group("mi")), int(match.group("s")),
                             microsecond, tzinfo)
        except ValueError as exc:
            raise FunctionError(f"invalid xs:dateTime: {exc}", "FORG0001")
        return cls(value)

    @classmethod
    def from_epoch(cls, seconds: float) -> "XSDateTime":
        return cls(datetime.fromtimestamp(seconds, tz=timezone.utc))

    def epoch(self) -> float:
        return self.value.timestamp()

    def __str__(self) -> str:
        base = self.value.astimezone(timezone.utc)
        text = base.strftime("%Y-%m-%dT%H:%M:%S")
        if base.microsecond:
            text += f".{base.microsecond:06d}".rstrip("0")
        return text + "Z"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"XSDateTime({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, XSDateTime) and self.value == other.value

    def __lt__(self, other: "XSDateTime") -> bool:
        if not isinstance(other, XSDateTime):
            raise TypeError_(f"cannot compare xs:dateTime with {type_name(other)}")
        return self.value < other.value

    def __le__(self, other: "XSDateTime") -> bool:
        return self == other or self < other

    def __gt__(self, other: "XSDateTime") -> bool:
        return not self <= other

    def __ge__(self, other: "XSDateTime") -> bool:
        return not self < other

    def __hash__(self) -> int:
        return hash(self.value)


def is_atomic(item: object) -> bool:
    """True for any XDM atomic value (as opposed to a node)."""
    return isinstance(item, (str, int, float, bool, Decimal, XSDateTime))


def is_numeric(item: object) -> bool:
    return isinstance(item, (int, float, Decimal)) and not isinstance(item, bool)


def type_name(item: object) -> str:
    """The ``xs:`` type name of an atomic value (diagnostics)."""
    if isinstance(item, UntypedAtomic):
        return "xs:untypedAtomic"
    if isinstance(item, bool):
        return "xs:boolean"
    if isinstance(item, int):
        return "xs:integer"
    if isinstance(item, Decimal):
        return "xs:decimal"
    if isinstance(item, float):
        return "xs:double"
    if isinstance(item, str):
        return "xs:string"
    if isinstance(item, XSDateTime):
        return "xs:dateTime"
    return type(item).__name__


def atomic_to_string(value: AtomicValue) -> str:
    """The canonical lexical form (fn:string of an atomic)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_double(value)
    if isinstance(value, Decimal):
        return format_decimal(value)
    return str(value)


def format_double(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "INF" if value > 0 else "-INF"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def format_decimal(value: Decimal) -> str:
    text = format(value, "f")
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


def cast_to_boolean(value: AtomicValue) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (UntypedAtomic, str)):
        stripped = value.strip()
        if stripped in ("true", "1"):
            return True
        if stripped in ("false", "0"):
            return False
        raise FunctionError(f"cannot cast {value!r} to xs:boolean", "FORG0001")
    if is_numeric(value):
        return bool(value) and not (isinstance(value, float) and math.isnan(value))
    raise TypeError_(f"cannot cast {type_name(value)} to xs:boolean")


def cast_to_integer(value: AtomicValue) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, (Decimal, float)):
        if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
            raise FunctionError(f"cannot cast {value} to xs:integer", "FOCA0002")
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            raise FunctionError(f"cannot cast {value!r} to xs:integer", "FORG0001")
    raise TypeError_(f"cannot cast {type_name(value)} to xs:integer")


def cast_to_decimal(value: AtomicValue) -> Decimal:
    if isinstance(value, bool):
        return Decimal(int(value))
    if isinstance(value, Decimal):
        return value
    if isinstance(value, int):
        return Decimal(value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise FunctionError(f"cannot cast {value} to xs:decimal", "FOCA0002")
        return Decimal(str(value))
    if isinstance(value, str):
        try:
            return Decimal(value.strip())
        except InvalidOperation:
            raise FunctionError(f"cannot cast {value!r} to xs:decimal", "FORG0001")
    raise TypeError_(f"cannot cast {type_name(value)} to xs:decimal")


def cast_to_double(value: AtomicValue) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Decimal):
        return float(value)
    if isinstance(value, str):
        stripped = value.strip()
        specials = {"INF": math.inf, "+INF": math.inf,
                    "-INF": -math.inf, "NaN": math.nan}
        if stripped in specials:
            return specials[stripped]
        try:
            return float(stripped)
        except ValueError:
            raise FunctionError(f"cannot cast {value!r} to xs:double", "FORG0001")
    raise TypeError_(f"cannot cast {type_name(value)} to xs:double")


def cast_to_datetime(value: AtomicValue) -> XSDateTime:
    if isinstance(value, XSDateTime):
        return value
    if isinstance(value, str):
        return XSDateTime.parse(value)
    raise TypeError_(f"cannot cast {type_name(value)} to xs:dateTime")


#: Casts used by property typing and the ``xs:`` constructor functions.
CASTS = {
    "xs:string": lambda v: atomic_to_string(v),
    "xs:boolean": cast_to_boolean,
    "xs:integer": cast_to_integer,
    "xs:int": cast_to_integer,
    "xs:long": cast_to_integer,
    "xs:decimal": cast_to_decimal,
    "xs:double": cast_to_double,
    "xs:dateTime": cast_to_datetime,
    "xs:untypedAtomic": lambda v: UntypedAtomic(atomic_to_string(v)),
}


def cast_atomic(value: AtomicValue, target: str) -> AtomicValue:
    """Cast *value* to the named ``xs:`` type."""
    try:
        cast = CASTS[target]
    except KeyError:
        raise DynamicError(f"unsupported atomic type {target!r}", "XPST0051")
    return cast(value)


def numeric_pair(left: AtomicValue, right: AtomicValue):
    """Promote two values for arithmetic, per the XQuery promotion rules.

    untypedAtomic operands are cast to xs:double first.
    """
    if isinstance(left, UntypedAtomic):
        left = cast_to_double(left)
    if isinstance(right, UntypedAtomic):
        right = cast_to_double(right)
    for value in (left, right):
        if not is_numeric(value):
            raise TypeError_(
                f"arithmetic on non-numeric operand of type {type_name(value)}")
    if isinstance(left, float) or isinstance(right, float):
        return cast_to_double(left), cast_to_double(right)
    if isinstance(left, Decimal) or isinstance(right, Decimal):
        return cast_to_decimal(left), cast_to_decimal(right)
    return left, right
