"""The built-in function library: ``fn:`` core, ``xs:`` constructors, and
the Demaq ``qs:`` queue-system functions (paper §3.4/§3.5).

Every function takes the dynamic context plus already-evaluated argument
sequences and returns a sequence.  ``qs:`` functions delegate to the
context's :class:`~repro.xquery.context.Environment`, which is how the
rule executor injects the current message, queue, and slice.
"""

from __future__ import annotations

import math
import re
from decimal import Decimal

from ..xmldm import Attribute, Document, Element, Node
from .atomics import (UntypedAtomic, XSDateTime, atomic_to_string,
                      cast_atomic, cast_to_double, is_numeric, numeric_pair,
                      type_name)
from .context import DynamicContext
from .errors import DynamicError, FunctionError, TypeError_
from .sequence import (Sequence, atomize, atomize_item, deep_equal_items,
                       document_order, effective_boolean_value,
                       optional_singleton, string_value)

Registry = dict  # name -> {arity | VARIADIC: callable}

VARIADIC = -1

_REGISTRY: Registry = {}


def register(name: str, arity: int):
    """Class-less registration decorator for builtin functions."""

    def wrap(fn):
        _REGISTRY.setdefault(name, {})[arity] = fn
        return fn

    return wrap


def lookup(name: str, arity: int):
    """Resolve a function by lexical name and argument count.

    The default function namespace is ``fn:``, so both ``count`` and
    ``fn:count`` resolve; ``qs:`` and ``xs:`` must be prefixed.
    """
    candidates = []
    if name.startswith("fn:"):
        candidates.append(name[3:])
    candidates.append(name)
    for candidate in candidates:
        by_arity = _REGISTRY.get(candidate)
        if by_arity:
            fn = by_arity.get(arity) or by_arity.get(VARIADIC)
            if fn is not None:
                return fn
            arities = sorted(a for a in by_arity if a != VARIADIC)
            raise TypeError_(
                f"function {name}() exists but not with {arity} argument(s) "
                f"(expected {arities})", "XPST0017")
    raise DynamicError(f"unknown function {name}()", "XPST0017")


def _single_string(args: Sequence, what: str) -> str:
    item = optional_singleton(atomize(args), what)
    if item is None:
        return ""
    return atomic_to_string(item)


def _context_node(ctx: DynamicContext, args: list[Sequence],
                  what: str) -> Node | None:
    if args:
        item = optional_singleton(args[0], what)
    else:
        item = ctx.require_context_item()
    if item is None:
        return None
    if not isinstance(item, Node):
        raise TypeError_(f"{what} requires a node")
    return item


# --- sequences ---------------------------------------------------------------

@register("count", 1)
def fn_count(ctx, args):
    return [len(args[0])]


@register("empty", 1)
def fn_empty(ctx, args):
    return [not args[0]]


@register("exists", 1)
def fn_exists(ctx, args):
    return [bool(args[0])]


@register("not", 1)
def fn_not(ctx, args):
    return [not effective_boolean_value(args[0])]


@register("boolean", 1)
def fn_boolean(ctx, args):
    return [effective_boolean_value(args[0])]


@register("true", 0)
def fn_true(ctx, args):
    return [True]


@register("false", 0)
def fn_false(ctx, args):
    return [False]


@register("data", 1)
def fn_data(ctx, args):
    return atomize(args[0])


@register("distinct-values", 1)
def fn_distinct_values(ctx, args):
    seen: list = []
    for value in atomize(args[0]):
        if not any(deep_equal_items(value, other) for other in seen):
            seen.append(value)
    return seen


@register("reverse", 1)
def fn_reverse(ctx, args):
    return list(reversed(args[0]))


@register("subsequence", 2)
@register("subsequence", 3)
def fn_subsequence(ctx, args):
    source = args[0]
    start = round(cast_to_double(optional_singleton(atomize(args[1]), "start") or 0))
    if len(args) == 3:
        length = round(cast_to_double(
            optional_singleton(atomize(args[2]), "length") or 0))
        end = start + length
    else:
        end = len(source) + 1
    return [item for pos, item in enumerate(source, 1) if start <= pos < end]


@register("index-of", 2)
def fn_index_of(ctx, args):
    target = optional_singleton(atomize(args[1]), "fn:index-of target")
    out = []
    for pos, value in enumerate(atomize(args[0]), 1):
        if target is not None and deep_equal_items(value, target):
            out.append(pos)
    return out


@register("insert-before", 3)
def fn_insert_before(ctx, args):
    source, inserts = args[0], args[2]
    pos = optional_singleton(atomize(args[1]), "fn:insert-before position")
    index = max(1, min(int(pos), len(source) + 1)) if pos is not None else 1
    return source[:index - 1] + inserts + source[index - 1:]


@register("remove", 2)
def fn_remove(ctx, args):
    pos = optional_singleton(atomize(args[1]), "fn:remove position")
    if pos is None:
        return args[0]
    index = int(pos)
    return [item for p, item in enumerate(args[0], 1) if p != index]


@register("exactly-one", 1)
def fn_exactly_one(ctx, args):
    if len(args[0]) != 1:
        raise FunctionError(
            f"fn:exactly-one got {len(args[0])} items", "FORG0005")
    return args[0]


@register("zero-or-one", 1)
def fn_zero_or_one(ctx, args):
    if len(args[0]) > 1:
        raise FunctionError(
            f"fn:zero-or-one got {len(args[0])} items", "FORG0003")
    return args[0]


@register("one-or-more", 1)
def fn_one_or_more(ctx, args):
    if not args[0]:
        raise FunctionError("fn:one-or-more got an empty sequence", "FORG0004")
    return args[0]


@register("deep-equal", 2)
def fn_deep_equal(ctx, args):
    left, right = args
    if len(left) != len(right):
        return [False]
    return [all(deep_equal_items(a, b) for a, b in zip(left, right))]


# --- strings -----------------------------------------------------------------

@register("string", 0)
@register("string", 1)
def fn_string(ctx, args):
    if args:
        item = optional_singleton(args[0], "fn:string")
        if item is None:
            return [""]
    else:
        item = ctx.require_context_item()
    return [string_value(item)]


@register("string-length", 0)
@register("string-length", 1)
def fn_string_length(ctx, args):
    if args:
        return [len(_single_string(args[0], "fn:string-length"))]
    return [len(string_value(ctx.require_context_item()))]


@register("concat", VARIADIC)
def fn_concat(ctx, args):
    if len(args) < 2:
        raise TypeError_("fn:concat requires at least two arguments",
                         "XPST0017")
    return ["".join(_single_string(a, "fn:concat") for a in args)]


@register("string-join", 1)
@register("string-join", 2)
def fn_string_join(ctx, args):
    separator = _single_string(args[1], "separator") if len(args) == 2 else ""
    return [separator.join(atomic_to_string(v) for v in atomize(args[0]))]


@register("contains", 2)
def fn_contains(ctx, args):
    return [_single_string(args[1], "needle") in
            _single_string(args[0], "haystack")]


@register("starts-with", 2)
def fn_starts_with(ctx, args):
    return [_single_string(args[0], "s").startswith(
        _single_string(args[1], "prefix"))]


@register("ends-with", 2)
def fn_ends_with(ctx, args):
    return [_single_string(args[0], "s").endswith(
        _single_string(args[1], "suffix"))]


@register("substring", 2)
@register("substring", 3)
def fn_substring(ctx, args):
    source = _single_string(args[0], "fn:substring")
    start_raw = optional_singleton(atomize(args[1]), "start")
    start = cast_to_double(start_raw) if start_raw is not None else math.nan
    if math.isnan(start):
        return [""]
    begin = round(start)
    if len(args) == 3:
        length_raw = optional_singleton(atomize(args[2]), "length")
        length = cast_to_double(length_raw) if length_raw is not None else math.nan
        if math.isnan(length):
            return [""]
        end = begin + round(length)
    else:
        end = len(source) + 1
    return ["".join(ch for pos, ch in enumerate(source, 1)
                    if begin <= pos < end)]


@register("substring-before", 2)
def fn_substring_before(ctx, args):
    source = _single_string(args[0], "s")
    needle = _single_string(args[1], "needle")
    index = source.find(needle) if needle else -1
    return [source[:index] if index >= 0 else ""]


@register("substring-after", 2)
def fn_substring_after(ctx, args):
    source = _single_string(args[0], "s")
    needle = _single_string(args[1], "needle")
    if not needle:
        return [source]
    index = source.find(needle)
    return [source[index + len(needle):] if index >= 0 else ""]


@register("upper-case", 1)
def fn_upper_case(ctx, args):
    return [_single_string(args[0], "fn:upper-case").upper()]


@register("lower-case", 1)
def fn_lower_case(ctx, args):
    return [_single_string(args[0], "fn:lower-case").lower()]


@register("normalize-space", 0)
@register("normalize-space", 1)
def fn_normalize_space(ctx, args):
    if args:
        text = _single_string(args[0], "fn:normalize-space")
    else:
        text = string_value(ctx.require_context_item())
    return [" ".join(text.split())]


@register("translate", 3)
def fn_translate(ctx, args):
    source = _single_string(args[0], "source")
    from_chars = _single_string(args[1], "map")
    to_chars = _single_string(args[2], "trans")
    table = {}
    for index, char in enumerate(from_chars):
        if char not in table:
            table[char] = to_chars[index] if index < len(to_chars) else None
    return ["".join(table.get(c, c) for c in source
                    if table.get(c, c) is not None)]


def _compile_pattern(pattern: str) -> "re.Pattern[str]":
    try:
        return re.compile(pattern)
    except re.error as exc:
        raise FunctionError(f"invalid regular expression: {exc}", "FORX0002")


@register("matches", 2)
def fn_matches(ctx, args):
    source = _single_string(args[0], "source")
    return [_compile_pattern(_single_string(args[1], "pattern"))
            .search(source) is not None]


@register("replace", 3)
def fn_replace(ctx, args):
    source = _single_string(args[0], "source")
    pattern = _compile_pattern(_single_string(args[1], "pattern"))
    replacement = _single_string(args[2], "replacement")
    return [pattern.sub(replacement.replace("\\$", "$"), source)]


@register("tokenize", 2)
def fn_tokenize(ctx, args):
    source = _single_string(args[0], "source")
    pattern = _compile_pattern(_single_string(args[1], "pattern"))
    if not source:
        return []
    return list(pattern.split(source))


# --- numbers -----------------------------------------------------------------

@register("number", 0)
@register("number", 1)
def fn_number(ctx, args):
    if args:
        item = optional_singleton(atomize(args[0]), "fn:number")
    else:
        item = atomize_item(ctx.require_context_item())
    if item is None:
        return [math.nan]
    try:
        return [cast_to_double(item)]
    except (FunctionError, TypeError_):
        return [math.nan]


def _numeric_aggregate(args, what):
    values = atomize(args[0])
    out = []
    for value in values:
        if isinstance(value, UntypedAtomic):
            value = cast_to_double(value)
        elif not (is_numeric(value) or isinstance(value, XSDateTime)):
            raise FunctionError(
                f"{what} over non-numeric {type_name(value)}", "FORG0006")
        out.append(value)
    return out


@register("sum", 1)
@register("sum", 2)
def fn_sum(ctx, args):
    values = _numeric_aggregate(args, "fn:sum")
    if not values:
        return atomize(args[1]) if len(args) == 2 else [0]
    total = values[0]
    for value in values[1:]:
        left, right = numeric_pair(total, value)
        total = left + right
    return [total]


@register("avg", 1)
def fn_avg(ctx, args):
    values = _numeric_aggregate(args, "fn:avg")
    if not values:
        return []
    total = fn_sum(ctx, [values])[0]
    left, right = numeric_pair(total, len(values))
    if isinstance(left, int):
        left = Decimal(left)
        right = Decimal(right)
    return [left / right]


@register("max", 1)
def fn_max(ctx, args):
    values = _numeric_aggregate(args, "fn:max")
    if not values:
        return []
    best = values[0]
    for value in values[1:]:
        if _order_lt(best, value):
            best = value
    return [best]


@register("min", 1)
def fn_min(ctx, args):
    values = _numeric_aggregate(args, "fn:min")
    if not values:
        return []
    best = values[0]
    for value in values[1:]:
        if _order_lt(value, best):
            best = value
    return [best]


def _order_lt(a, b) -> bool:
    if isinstance(a, XSDateTime) or isinstance(b, XSDateTime):
        if not (isinstance(a, XSDateTime) and isinstance(b, XSDateTime)):
            raise TypeError_("cannot mix xs:dateTime with numbers")
        return a < b
    left, right = numeric_pair(a, b)
    return left < right


@register("abs", 1)
def fn_abs(ctx, args):
    value = optional_singleton(atomize(args[0]), "fn:abs")
    if value is None:
        return []
    if isinstance(value, UntypedAtomic):
        value = cast_to_double(value)
    if not is_numeric(value):
        raise TypeError_(f"fn:abs on {type_name(value)}")
    return [abs(value)]


def _rounding(args, what, rounder):
    value = optional_singleton(atomize(args[0]), what)
    if value is None:
        return []
    if isinstance(value, UntypedAtomic):
        value = cast_to_double(value)
    if not is_numeric(value):
        raise TypeError_(f"{what} on {type_name(value)}")
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return [value]
    result = rounder(value)
    if isinstance(value, float):
        return [float(result)]
    if isinstance(value, Decimal):
        return [Decimal(result)]
    return [int(result)]


@register("floor", 1)
def fn_floor(ctx, args):
    return _rounding(args, "fn:floor", math.floor)


@register("ceiling", 1)
def fn_ceiling(ctx, args):
    return _rounding(args, "fn:ceiling", math.ceil)


@register("round", 1)
def fn_round(ctx, args):
    return _rounding(args, "fn:round", lambda v: math.floor(float(v) + 0.5))


# --- nodes -------------------------------------------------------------------

@register("name", 0)
@register("name", 1)
def fn_name(ctx, args):
    node = _context_node(ctx, args, "fn:name")
    if node is None or node.node_name is None:
        return [""]
    return [node.node_name.lexical]


@register("local-name", 0)
@register("local-name", 1)
def fn_local_name(ctx, args):
    node = _context_node(ctx, args, "fn:local-name")
    if node is None or node.node_name is None:
        return [""]
    return [node.node_name.local_name]


@register("namespace-uri", 0)
@register("namespace-uri", 1)
def fn_namespace_uri(ctx, args):
    node = _context_node(ctx, args, "fn:namespace-uri")
    if node is None or node.node_name is None:
        return [""]
    return [node.node_name.namespace_uri or ""]


@register("root", 0)
@register("root", 1)
def fn_root(ctx, args):
    node = _context_node(ctx, args, "fn:root")
    if node is None:
        return []
    return [node.root]


# --- position / focus ----------------------------------------------------------

@register("position", 0)
def fn_position(ctx, args):
    ctx.require_context_item()
    return [ctx.position]


@register("last", 0)
def fn_last(ctx, args):
    ctx.require_context_item()
    return [ctx.size]


# --- dates, errors, documents ----------------------------------------------------

@register("current-dateTime", 0)
def fn_current_datetime(ctx, args):
    return [ctx.environment.current_datetime()]


@register("error", 0)
@register("error", 1)
@register("error", 2)
def fn_error(ctx, args):
    code = _single_string(args[0], "code") if args else "FOER0000"
    message = (_single_string(args[1], "description")
               if len(args) >= 2 else "error raised by fn:error()")
    raise FunctionError(message, code or "FOER0000")


@register("collection", 1)
def fn_collection(ctx, args):
    name = _single_string(args[0], "fn:collection")
    return list(ctx.environment.collection(name))


# --- Demaq queue-system functions (qs:) -----------------------------------------

@register("qs:message", 0)
def qs_message(ctx, args):
    return [ctx.environment.message()]


@register("qs:queue", 0)
@register("qs:queue", 1)
def qs_queue(ctx, args):
    name = _single_string(args[0], "qs:queue") if args else None
    return document_order(list(ctx.environment.queue(name)))


@register("qs:queue-index", 3)
def qs_queue_index(ctx, args):
    """Index-backed queue access (compiler-generated, paper §4.3).

    ``qs:queue-index(queue, property, probe)`` returns the messages of
    *queue* whose *property* equals any atomized probe value — the
    access path the rule compiler emits for indexable equality
    predicates over ``qs:queue()``.
    """
    queue = _single_string(args[0], "qs:queue-index")
    prop = _single_string(args[1], "qs:queue-index")
    probes = atomize(args[2])
    if not probes:
        return []
    return document_order(
        list(ctx.environment.queue_lookup(queue, prop, probes)))


@register("qs:slice", 0)
def qs_slice(ctx, args):
    return document_order(list(ctx.environment.slice_messages()))


@register("qs:slicekey", 0)
def qs_slicekey(ctx, args):
    return [ctx.environment.slice_key()]


@register("qs:property", 1)
def qs_property(ctx, args):
    name = _single_string(args[0], "qs:property")
    value = ctx.environment.property(name)
    return [] if value is None else [value]


# --- xs: constructor functions ----------------------------------------------------

def _xs_constructor(target: str):
    def construct(ctx, args):
        item = optional_singleton(atomize(args[0]), target)
        if item is None:
            return []
        return [cast_atomic(item, target)]

    return construct


for _type in ("xs:string", "xs:boolean", "xs:integer", "xs:int", "xs:long",
              "xs:decimal", "xs:double", "xs:dateTime", "xs:untypedAtomic"):
    _REGISTRY.setdefault(_type, {})[1] = _xs_constructor(_type)
