"""XQuery error conditions.

Errors carry the W3C-style error codes (``err:XPST0003`` …) so rule
authors get diagnoses comparable to a conforming processor, and so the
engine's error-queue messages (paper §3.6) can embed a stable code.
"""

from __future__ import annotations


class XQueryError(Exception):
    """Base class: a static, dynamic, or type error with a W3C code."""

    default_code = "FOER0000"

    def __init__(self, message: str, code: str | None = None):
        self.code = code or self.default_code
        super().__init__(f"[err:{self.code}] {message}")
        self.bare_message = message


class StaticError(XQueryError):
    """Grammar or static-context violation (XPST*)."""

    default_code = "XPST0003"


class TypeError_(XQueryError):
    """Dynamic type mismatch (XPTY*)."""

    default_code = "XPTY0004"


class DynamicError(XQueryError):
    """Runtime evaluation failure (XPDY*, FO*)."""

    default_code = "XPDY0002"


class FunctionError(XQueryError):
    """Raised by fn:error() and library functions (FO*)."""

    default_code = "FORG0001"


class UpdateError(XQueryError):
    """Violation of update semantics (XUTY*, XUDY*)."""

    default_code = "XUTY0004"
