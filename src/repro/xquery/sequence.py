"""Sequence operations of the XQuery data model.

A *sequence* is a flat Python list whose items are either
:class:`repro.xmldm.Node` instances or atomic values
(:mod:`repro.xquery.atomics`).  This module provides the core operations
the evaluator leans on: atomization, effective boolean value, string
value, and document-order normalization for path results.
"""

from __future__ import annotations

import math
from decimal import Decimal

from ..xmldm import Node
from .atomics import (UntypedAtomic, XSDateTime, atomic_to_string, is_atomic,
                      is_numeric)
from .errors import TypeError_

Sequence = list


def atomize_item(item: object) -> object:
    """Atomize one item: nodes yield untypedAtomic of their string value."""
    if isinstance(item, Node):
        return UntypedAtomic(item.string_value)
    if is_atomic(item):
        return item
    raise TypeError_(f"cannot atomize {type(item).__name__}")


def atomize(sequence: Sequence) -> Sequence:
    """fn:data — atomize every item."""
    return [atomize_item(item) for item in sequence]


def string_value(item: object) -> str:
    """fn:string of a single item."""
    if isinstance(item, Node):
        return item.string_value
    if is_atomic(item):
        return atomic_to_string(item)
    raise TypeError_(f"no string value for {type(item).__name__}")


def effective_boolean_value(sequence: Sequence) -> bool:
    """The EBV rules of XQuery 1.0 §2.4.3."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, Node):
        return True
    if len(sequence) > 1:
        raise TypeError_(
            "effective boolean value of a multi-item atomic sequence",
            "FORG0006")
    if isinstance(first, bool):
        return first
    if isinstance(first, (UntypedAtomic, str)):
        return len(first) > 0
    if is_numeric(first):
        if isinstance(first, float) and math.isnan(first):
            return False
        return first != 0
    raise TypeError_(
        f"no effective boolean value for a {type(first).__name__}", "FORG0006")


def singleton(sequence: Sequence, what: str) -> object:
    """Require exactly one item (for operators that demand singletons)."""
    if len(sequence) != 1:
        raise TypeError_(
            f"{what} requires a singleton sequence, got {len(sequence)} items")
    return sequence[0]


def optional_singleton(sequence: Sequence, what: str) -> object | None:
    """Require zero or one items; empty returns None."""
    if not sequence:
        return None
    return singleton(sequence, what)


def document_order(nodes: list[Node]) -> list[Node]:
    """Sort nodes into document order and drop duplicates (by identity)."""
    seen: set[int] = set()
    unique: list[Node] = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    unique.sort(key=lambda n: n.order_key())
    return unique


def all_nodes(sequence: Sequence) -> bool:
    return all(isinstance(item, Node) for item in sequence)


def deep_equal_items(a: object, b: object) -> bool:
    """fn:deep-equal on two items."""
    if isinstance(a, Node) and isinstance(b, Node):
        return _deep_equal_nodes(a, b)
    if isinstance(a, Node) or isinstance(b, Node):
        return False
    if isinstance(a, (UntypedAtomic, str)) and isinstance(b, (UntypedAtomic, str)):
        return str(a) == str(b)
    if is_numeric(a) and is_numeric(b) and not (
            isinstance(a, bool) or isinstance(b, bool)):
        return float(a) == float(b)
    if isinstance(a, bool) and isinstance(b, bool):
        return a == b
    if isinstance(a, XSDateTime) and isinstance(b, XSDateTime):
        return a == b
    return False


def _deep_equal_nodes(a: Node, b: Node) -> bool:
    from ..xmldm import Attribute, Comment, Document, Element, Text
    if type(a) is not type(b):
        return False
    if isinstance(a, Element):
        if a.name != b.name:
            return False
        attrs_a = sorted((x.name.clark, x.value) for x in a.attributes)
        attrs_b = sorted((x.name.clark, x.value) for x in b.attributes)
        if attrs_a != attrs_b:
            return False
        kids_a = [c for c in a.children if isinstance(c, (Element, Text))]
        kids_b = [c for c in b.children if isinstance(c, (Element, Text))]
        if len(kids_a) != len(kids_b):
            return False
        return all(_deep_equal_nodes(x, y) for x, y in zip(kids_a, kids_b))
    if isinstance(a, Document):
        kids_a = [c for c in a.children if isinstance(c, (Element, Text))]
        kids_b = [c for c in b.children if isinstance(c, (Element, Text))]
        if len(kids_a) != len(kids_b):
            return False
        return all(_deep_equal_nodes(x, y) for x, y in zip(kids_a, kids_b))
    if isinstance(a, (Text, Comment)):
        return a.value == b.value
    if isinstance(a, Attribute):
        return a.name == b.name and a.value == b.value
    return a.string_value == b.string_value
