"""Static and dynamic evaluation contexts.

The *environment* is the bridge between the language and the Demaq
engine: the ``qs:`` function library (``qs:message()``, ``qs:queue()``,
``qs:slice()``, ``qs:slicekey()``, ``qs:property()``) and
``fn:collection()`` delegate to it.  Stand-alone expression evaluation
uses the default :class:`Environment`, whose hooks raise — exactly the
behaviour the paper implies for e.g. ``qs:slice()`` outside a slicing
rule (§3.5.2: "only available to rules defined on slicings").
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from ..xmldm import Node
from .atomics import XSDateTime
from .errors import DynamicError

if TYPE_CHECKING:  # pragma: no cover
    from .updates import PendingUpdateList


class Environment:
    """Host hooks available to an evaluation.

    The rule executor subclasses this; the defaults make every hook an
    explicit dynamic error so stand-alone queries fail loudly rather
    than silently returning nothing.
    """

    def message(self) -> Node:
        raise DynamicError("qs:message() is only available inside a rule")

    def queue(self, name: str | None) -> list[Node]:
        raise DynamicError("qs:queue() is only available inside a rule")

    def queue_lookup(self, name: str, prop: str,
                     values: list[object]) -> list[Node]:
        raise DynamicError(
            "qs:queue-index() is only available inside a rule")

    def slice_messages(self) -> list[Node]:
        raise DynamicError(
            "qs:slice() is only available in rules defined on slicings")

    def slice_key(self) -> object:
        raise DynamicError(
            "qs:slicekey() is only available in rules defined on slicings")

    def property(self, name: str) -> object:
        raise DynamicError("qs:property() is only available inside a rule")

    def collection(self, name: str) -> list[Node]:
        raise DynamicError(f"no collection {name!r} is available")

    def current_datetime(self) -> XSDateTime:
        return XSDateTime.from_epoch(time.time())


class DynamicContext:
    """The focus (item, position, size), variables, and host environment."""

    __slots__ = ("item", "position", "size", "variables", "environment",
                 "namespaces", "updates")

    def __init__(self, item: object = None, position: int = 1, size: int = 1,
                 variables: dict[str, list] | None = None,
                 environment: Environment | None = None,
                 namespaces: dict[str, str] | None = None,
                 updates: Optional["PendingUpdateList"] = None):
        from .updates import PendingUpdateList
        self.item = item
        self.position = position
        self.size = size
        self.variables = variables if variables is not None else {}
        self.environment = environment or Environment()
        self.namespaces = namespaces or {}
        self.updates = updates if updates is not None else PendingUpdateList()

    def focus(self, item: object, position: int, size: int) -> "DynamicContext":
        """A new context with a different focus, sharing everything else."""
        ctx = DynamicContext.__new__(DynamicContext)
        ctx.item = item
        ctx.position = position
        ctx.size = size
        ctx.variables = self.variables
        ctx.environment = self.environment
        ctx.namespaces = self.namespaces
        ctx.updates = self.updates
        return ctx

    def bind(self, name: str, value: list) -> "DynamicContext":
        """A new context with one extra variable binding."""
        ctx = DynamicContext.__new__(DynamicContext)
        ctx.item = self.item
        ctx.position = self.position
        ctx.size = self.size
        ctx.variables = dict(self.variables)
        ctx.variables[name] = value
        ctx.environment = self.environment
        ctx.namespaces = self.namespaces
        ctx.updates = self.updates
        return ctx

    def require_context_item(self) -> object:
        if self.item is None:
            raise DynamicError("the context item is undefined", "XPDY0002")
        return self.item
