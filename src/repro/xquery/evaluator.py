"""The dynamic evaluator for the XQuery subset.

Evaluation is a structural recursion over the AST: every handler takes
``(expr, ctx)`` and returns a sequence (a Python list of nodes/atomics).
Update primitives append to ``ctx.updates`` — the pending update list —
and return the empty sequence, implementing the XQuery Update Facility's
snapshot semantics (paper §3.1/§3.2: evaluation never observes its own
updates; the executor applies the list afterwards).
"""

from __future__ import annotations

import math
from decimal import Decimal, DivisionByZero, InvalidOperation

from ..xmldm import (Attribute, Comment, Document, Element, Node, QName, Text,
                     deep_copy)
from . import ast
from .atomics import (UntypedAtomic, XSDateTime, atomic_to_string,
                      cast_to_boolean, cast_to_datetime, cast_to_double,
                      is_numeric, numeric_pair, type_name)
from .context import DynamicContext
from .errors import DynamicError, TypeError_
from .functions import lookup
from .parser import _CommentMarker
from .sequence import (Sequence, atomize, document_order,
                       effective_boolean_value, optional_singleton,
                       string_value)
from .updates import EnqueuePrimitive, ResetPrimitive, as_message_body


def evaluate(expr: ast.Expr, ctx: DynamicContext) -> Sequence:
    """Evaluate *expr* in *ctx*, returning its value sequence."""
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        raise DynamicError(f"no evaluator for {type(expr).__name__}")
    return handler(expr, ctx)


# -- literals, variables, sequences ------------------------------------------

def _eval_literal(expr: ast.Literal, ctx) -> Sequence:
    if isinstance(expr.value, _CommentMarker):
        return [Comment(expr.value.value)]
    return [expr.value]


def _eval_sequence(expr: ast.SequenceExpr, ctx) -> Sequence:
    out: Sequence = []
    for item in expr.items:
        out.extend(evaluate(item, ctx))
    return out


def _eval_var(expr: ast.VarRef, ctx) -> Sequence:
    try:
        return list(ctx.variables[expr.name])
    except KeyError:
        raise DynamicError(f"unbound variable ${expr.name}", "XPST0008")


def _eval_context_item(expr: ast.ContextItem, ctx) -> Sequence:
    return [ctx.require_context_item()]


def _eval_function_call(expr: ast.FunctionCall, ctx) -> Sequence:
    fn = lookup(expr.name, len(expr.args))
    args = [evaluate(arg, ctx) for arg in expr.args]
    return fn(ctx, args)


# -- control flow ----------------------------------------------------------------

def _eval_if(expr: ast.IfExpr, ctx) -> Sequence:
    if effective_boolean_value(evaluate(expr.condition, ctx)):
        return evaluate(expr.then_branch, ctx)
    if expr.else_branch is None:
        return []
    return evaluate(expr.else_branch, ctx)


def _eval_flwor(expr: ast.FLWORExpr, ctx) -> Sequence:
    tuples: list[DynamicContext] = [ctx]
    for clause in expr.clauses:
        if isinstance(clause, ast.LetClause):
            tuples = [t.bind(clause.var, evaluate(clause.value, t))
                      for t in tuples]
        else:
            expanded: list[DynamicContext] = []
            for t in tuples:
                source = evaluate(clause.source, t)
                for position, item in enumerate(source, 1):
                    bound = t.bind(clause.var, [item])
                    if clause.position_var:
                        bound = bound.bind(clause.position_var, [position])
                    expanded.append(bound)
            tuples = expanded

    if expr.where is not None:
        tuples = [t for t in tuples
                  if effective_boolean_value(evaluate(expr.where, t))]

    if expr.order_by:
        decorated = []
        for index, t in enumerate(tuples):
            keys = []
            for spec in expr.order_by:
                value = optional_singleton(
                    atomize(evaluate(spec.key, t)), "order by key")
                keys.append(_OrderKey(value, spec))
            decorated.append((keys, index, t))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        tuples = [t for _, _, t in decorated]

    out: Sequence = []
    for t in tuples:
        out.extend(evaluate(expr.return_expr, t))
    return out


class _OrderKey:
    """Comparable wrapper implementing order-by semantics (asc/desc, empty)."""

    __slots__ = ("value", "spec")

    def __init__(self, value, spec: ast.OrderSpec):
        if isinstance(value, UntypedAtomic):
            value = str(value)
        self.value = value
        self.spec = spec

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return self.spec.empty_least is not self.spec.descending
        if b is None:
            return self.spec.empty_least is self.spec.descending
        less = _value_lt(a, b)
        if self.spec.descending:
            return _value_lt(b, a)
        return less

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderKey):
            return NotImplemented
        if self.value is None or other.value is None:
            return self.value is None and other.value is None
        return not _value_lt(self.value, other.value) \
            and not _value_lt(other.value, self.value)


def _value_lt(a, b) -> bool:
    if isinstance(a, str) and isinstance(b, str):
        return a < b
    if isinstance(a, XSDateTime) and isinstance(b, XSDateTime):
        return a < b
    if isinstance(a, bool) and isinstance(b, bool):
        return a < b
    if is_numeric(a) and is_numeric(b):
        left, right = numeric_pair(a, b)
        return left < right
    raise TypeError_(
        f"cannot order {type_name(a)} against {type_name(b)}")


def _eval_quantified(expr: ast.QuantifiedExpr, ctx) -> Sequence:
    def recurse(bindings: list[tuple[str, ast.Expr]],
                current: DynamicContext) -> bool:
        if not bindings:
            return effective_boolean_value(evaluate(expr.satisfies, current))
        (var, source_expr), rest = bindings[0], bindings[1:]
        source = evaluate(source_expr, current)
        if expr.quantifier == "some":
            return any(recurse(rest, current.bind(var, [item]))
                       for item in source)
        return all(recurse(rest, current.bind(var, [item]))
                   for item in source)

    return [recurse(expr.bindings, ctx)]


# -- operators ---------------------------------------------------------------------

def _eval_unary(expr: ast.UnaryOp, ctx) -> Sequence:
    value = optional_singleton(atomize(evaluate(expr.operand, ctx)),
                               "unary arithmetic")
    if value is None:
        return []
    if isinstance(value, UntypedAtomic):
        value = cast_to_double(value)
    if not is_numeric(value):
        raise TypeError_(f"unary {expr.op} on {type_name(value)}")
    return [value if expr.op == "+" else -value]


def _eval_binary(expr: ast.BinaryOp, ctx) -> Sequence:
    op = expr.op
    if op == "and":
        left = effective_boolean_value(evaluate(expr.left, ctx))
        if not left:
            return [False]
        return [effective_boolean_value(evaluate(expr.right, ctx))]
    if op == "or":
        left = effective_boolean_value(evaluate(expr.left, ctx))
        if left:
            return [True]
        return [effective_boolean_value(evaluate(expr.right, ctx))]

    if op in ("union", "intersect", "except"):
        return _eval_set_op(expr, ctx)

    left = optional_singleton(atomize(evaluate(expr.left, ctx)), f"'{op}'")
    right = optional_singleton(atomize(evaluate(expr.right, ctx)), f"'{op}'")
    if left is None or right is None:
        return []

    if op == "to":
        start = _require_integer(left, "to")
        end = _require_integer(right, "to")
        return list(range(start, end + 1))

    left, right = numeric_pair(left, right)
    try:
        if op == "+":
            return [left + right]
        if op == "-":
            return [left - right]
        if op == "*":
            return [left * right]
        if op == "div":
            if isinstance(left, int):
                left, right = Decimal(left), Decimal(right)
            return [left / right]
        if op == "idiv":
            return [int(_trunc_div(left, right))]
        if op == "mod":
            return [_xquery_mod(left, right)]
    except (ZeroDivisionError, DivisionByZero, InvalidOperation):
        if op == "div" and isinstance(left, float):
            if left == 0:
                return [math.nan]
            return [math.inf if (left > 0) == (right >= 0) else -math.inf]
        raise DynamicError("division by zero", "FOAR0001")
    raise DynamicError(f"unknown operator {op!r}")


def _trunc_div(left, right):
    """idiv truncates toward zero (unlike Python's floor division)."""
    if right == 0:
        raise ZeroDivisionError
    quotient = float(left) / float(right)
    return math.floor(quotient) if quotient >= 0 else math.ceil(quotient)


def _xquery_mod(left, right):
    """XQuery mod keeps the sign of the dividend (C-style fmod)."""
    if isinstance(left, float) or isinstance(right, float):
        return math.fmod(float(left), float(right))
    if right == 0:
        raise ZeroDivisionError
    result = abs(left) % abs(right)
    return result if left >= 0 else -result


def _require_integer(value, what: str) -> int:
    if isinstance(value, UntypedAtomic):
        value = cast_to_double(value)
    if isinstance(value, bool) or not isinstance(value, int):
        if is_numeric(value) and float(value) == int(value):
            return int(value)
        raise TypeError_(f"'{what}' requires integers, got {type_name(value)}")
    return value


def _eval_set_op(expr: ast.BinaryOp, ctx) -> Sequence:
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    for item in (*left, *right):
        if not isinstance(item, Node):
            raise TypeError_(f"{expr.op} requires node sequences")
    right_ids = {id(n) for n in right}
    if expr.op == "union":
        return document_order([*left, *right])
    if expr.op == "intersect":
        return document_order([n for n in left if id(n) in right_ids])
    return document_order([n for n in left if id(n) not in right_ids])


# -- comparisons --------------------------------------------------------------------

def _eval_comparison(expr: ast.Comparison, ctx) -> Sequence:
    op = expr.op
    if op in ("is", "<<", ">>"):
        return _eval_node_comparison(expr, ctx)

    left_seq = evaluate(expr.left, ctx)
    right_seq = evaluate(expr.right, ctx)

    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        left = optional_singleton(atomize(left_seq), f"'{op}'")
        right = optional_singleton(atomize(right_seq), f"'{op}'")
        if left is None or right is None:
            return []
        return [_value_compare(op, left, right)]

    # General comparison: existential over the atomized sequences.
    mapping = {"=": "eq", "!=": "ne", "<": "lt", "<=": "le",
               ">": "gt", ">=": "ge"}
    value_op = mapping[op]
    left_atoms = atomize(left_seq)
    right_atoms = atomize(right_seq)
    for a in left_atoms:
        for b in right_atoms:
            if _general_compare(value_op, a, b):
                return [True]
    return [False]


def _eval_node_comparison(expr: ast.Comparison, ctx) -> Sequence:
    left = optional_singleton(evaluate(expr.left, ctx), expr.op)
    right = optional_singleton(evaluate(expr.right, ctx), expr.op)
    if left is None or right is None:
        return []
    if not isinstance(left, Node) or not isinstance(right, Node):
        raise TypeError_(f"'{expr.op}' requires nodes")
    if expr.op == "is":
        return [left is right]
    if expr.op == "<<":
        return [left.order_key() < right.order_key()]
    return [left.order_key() > right.order_key()]


def _value_compare(op: str, left, right) -> bool:
    """Value comparison: untypedAtomic is treated as xs:string."""
    if isinstance(left, UntypedAtomic):
        left = str(left)
    if isinstance(right, UntypedAtomic):
        right = str(right)
    return _apply_compare(op, left, right)


def _general_compare(op: str, left, right) -> bool:
    """General comparison coercion rules (XQuery 1.0 §3.5.2)."""
    if isinstance(left, UntypedAtomic):
        left = _coerce_untyped(left, right)
    if isinstance(right, UntypedAtomic):
        right = _coerce_untyped(right, left)
    return _apply_compare(op, left, right)


def _coerce_untyped(untyped: UntypedAtomic, other):
    if is_numeric(other):
        return cast_to_double(untyped)
    if isinstance(other, bool):
        return cast_to_boolean(untyped)
    if isinstance(other, XSDateTime):
        return cast_to_datetime(untyped)
    return str(untyped)


def _apply_compare(op: str, left, right) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        if not (isinstance(left, bool) and isinstance(right, bool)):
            raise TypeError_(
                f"cannot compare {type_name(left)} with {type_name(right)}")
        pair = (left, right)
    elif is_numeric(left) and is_numeric(right):
        pair = numeric_pair(left, right)
    elif isinstance(left, str) and isinstance(right, str):
        pair = (left, right)
    elif isinstance(left, XSDateTime) and isinstance(right, XSDateTime):
        pair = (left, right)
    else:
        raise TypeError_(
            f"cannot compare {type_name(left)} with {type_name(right)}")
    a, b = pair
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    return a >= b


# -- paths ---------------------------------------------------------------------------

def _eval_path(expr: ast.PathExpr, ctx) -> Sequence:
    if expr.absolute:
        item = ctx.require_context_item()
        if not isinstance(item, Node):
            raise TypeError_("'/' requires a node context item", "XPTY0020")
        current: Sequence = [item.root]
        steps = expr.steps
        if not steps:
            return current
    else:
        current = [None]  # placeholder: first step uses the outer focus
        steps = expr.steps

    first = True
    for step in steps:
        results: Sequence = []
        any_nodes = False
        any_atomics = False
        if first and not expr.absolute:
            contexts = [ctx]
        else:
            contexts = [ctx.focus(item, position, len(current))
                        for position, item in enumerate(current, 1)]
        for sub_ctx in contexts:
            for item in evaluate(step, sub_ctx):
                if isinstance(item, Node):
                    any_nodes = True
                else:
                    any_atomics = True
                results.append(item)
        if any_nodes and any_atomics:
            raise TypeError_(
                "path step mixes nodes and atomic values", "XPTY0018")
        if any_nodes:
            results = document_order(results)
        current = results
        first = False
        if not current:
            return []
    return current


_REVERSE_AXES = frozenset(
    {"parent", "ancestor", "ancestor-or-self", "preceding-sibling",
     "preceding"})


def _eval_axis_step(expr: ast.AxisStep, ctx) -> Sequence:
    item = ctx.require_context_item()
    if not isinstance(item, Node):
        raise TypeError_(
            f"axis step on a {type_name(item)} context item", "XPTY0020")
    candidates = _axis_candidates(item, expr.axis)
    matched = [n for n in candidates if _matches_test(n, expr.test, expr.axis)]
    # Predicates see axis order (position 1 = nearest for reverse axes);
    # the step's *value* is in document order.
    result = _apply_predicates(matched, expr.predicates, ctx)
    if expr.axis in _REVERSE_AXES:
        return document_order(result)
    return result


def _axis_candidates(node: Node, axis: str) -> list[Node]:
    if axis == "child":
        return list(node.children)
    if axis == "descendant":
        return list(node.descendants())
    if axis == "descendant-or-self":
        return list(node.descendants_or_self())
    if axis == "self":
        return [node]
    if axis == "attribute":
        if isinstance(node, Element):
            return list(node.attributes)
        return []
    if axis == "parent":
        return [node.parent] if node.parent is not None else []
    if axis == "ancestor":
        return list(node.ancestors())
    if axis == "ancestor-or-self":
        return [node, *node.ancestors()]
    if axis == "following-sibling":
        return list(node.following_siblings())
    if axis == "preceding-sibling":
        return list(node.preceding_siblings())
    if axis == "following":
        out = []
        current = node
        while current is not None:
            for sibling in current.following_siblings():
                out.extend(sibling.descendants_or_self())
            current = current.parent
        return out
    if axis == "preceding":
        out = []
        current = node
        while current is not None:
            for sibling in current.preceding_siblings():
                out.extend(reversed(list(sibling.descendants_or_self())))
            current = current.parent
        return out
    raise DynamicError(f"unsupported axis {axis!r}")


def _matches_test(node: Node, test, axis: str) -> bool:
    if isinstance(test, ast.KindTest):
        return _matches_kind(node, test)
    # A name test selects the axis's principal node kind.
    principal = Attribute if axis == "attribute" else Element
    if not isinstance(node, principal):
        return False
    return _matches_name(node.name, test)


def _matches_name(name: QName, test: ast.NameTest) -> bool:
    if test.local_name is not None and name.local_name != test.local_name:
        return False
    if test.any_namespace:
        return True
    return name.namespace_uri == test.namespace


def _matches_kind(node: Node, test: ast.KindTest) -> bool:
    kind = test.kind
    if kind == "node":
        return True
    if kind == "text":
        return isinstance(node, Text)
    if kind == "comment":
        return isinstance(node, Comment)
    if kind == "document-node":
        return isinstance(node, Document)
    if kind == "element":
        if not isinstance(node, Element):
            return False
        return test.name is None or _matches_name(node.name, test.name)
    if kind == "attribute":
        if not isinstance(node, Attribute):
            return False
        return test.name is None or _matches_name(node.name, test.name)
    if kind == "processing-instruction":
        from ..xmldm import ProcessingInstruction
        if not isinstance(node, ProcessingInstruction):
            return False
        return test.name is None or node.target == test.name.local_name
    raise DynamicError(f"unsupported kind test {kind!r}")


def _apply_predicates(items: Sequence, predicates: list[ast.Expr],
                      ctx: DynamicContext) -> Sequence:
    for predicate in predicates:
        size = len(items)
        kept = []
        for position, item in enumerate(items, 1):
            inner = ctx.focus(item, position, size)
            result = evaluate(predicate, inner)
            if _predicate_truth(result, position):
                kept.append(item)
        items = kept
    return items


def _predicate_truth(result: Sequence, position: int) -> bool:
    """Numeric predicates select by position; everything else is EBV."""
    if len(result) == 1 and is_numeric(result[0]) \
            and not isinstance(result[0], bool):
        return float(result[0]) == position
    return effective_boolean_value(result)


def _eval_filter(expr: ast.FilterExpr, ctx) -> Sequence:
    base = evaluate(expr.base, ctx)
    return _apply_predicates(base, expr.predicates, ctx)


# -- constructors -------------------------------------------------------------------

def _eval_direct_constructor(expr: ast.DirectElementConstructor,
                             ctx) -> Sequence:
    element = Element(expr.name, namespaces=dict(expr.namespaces))
    for attr in expr.attributes:
        element.set_attribute(Attribute(attr.name,
                                        _eval_value_template(attr.parts, ctx)))
    for part in expr.content:
        if isinstance(part, str):
            element.append(Text(part))
        else:
            _append_content(element, evaluate(part, ctx))
    return [element]


def _eval_value_template(parts: list, ctx) -> str:
    out: list[str] = []
    for part in parts:
        if isinstance(part, str):
            out.append(part)
        else:
            values = atomize(evaluate(part, ctx))
            out.append(" ".join(atomic_to_string(v) for v in values))
    return "".join(out)


def _append_content(element: Element, items: Sequence) -> None:
    """Enclosed-expression content: copy nodes, space-join adjacent atomics."""
    pending_atoms: list[str] = []

    def flush() -> None:
        if pending_atoms:
            element.append(Text(" ".join(pending_atoms)))
            pending_atoms.clear()

    for item in items:
        if isinstance(item, Node):
            flush()
            if isinstance(item, Attribute):
                element.set_attribute(Attribute(item.name, item.value))
            else:
                element.append(deep_copy(item))
        else:
            pending_atoms.append(atomic_to_string(item))
    flush()


def _eval_computed_element(expr: ast.ComputedElementConstructor,
                           ctx) -> Sequence:
    if isinstance(expr.name_expr, QName):
        name = expr.name_expr
    else:
        raw = string_value(optional_singleton(
            evaluate(expr.name_expr, ctx), "element name") or "")
        name = QName.parse(raw, ctx.namespaces)
    element = Element(name)
    if expr.content is not None:
        _append_content(element, evaluate(expr.content, ctx))
    return [element]


def _eval_computed_attribute(expr: ast.ComputedAttributeConstructor,
                             ctx) -> Sequence:
    if isinstance(expr.name_expr, QName):
        name = expr.name_expr
    else:
        raw = string_value(optional_singleton(
            evaluate(expr.name_expr, ctx), "attribute name") or "")
        name = QName.parse(raw, ctx.namespaces)
    value = ""
    if expr.content is not None:
        values = atomize(evaluate(expr.content, ctx))
        value = " ".join(atomic_to_string(v) for v in values)
    return [Attribute(name, value)]


def _eval_text_constructor(expr: ast.TextConstructor, ctx) -> Sequence:
    if expr.content is None:
        return []
    values = atomize(evaluate(expr.content, ctx))
    if not values:
        return []
    return [Text(" ".join(atomic_to_string(v) for v in values))]


# -- Demaq update primitives -----------------------------------------------------

def _eval_enqueue(expr: ast.EnqueueExpr, ctx) -> Sequence:
    body = as_message_body(evaluate(expr.message, ctx))
    properties = []
    for name, value_expr in expr.properties:
        value = optional_singleton(atomize(evaluate(value_expr, ctx)),
                                   f"property {name}")
        if isinstance(value, UntypedAtomic):
            value = str(value)
        properties.append((name, value))
    ctx.updates.add(EnqueuePrimitive(expr.queue, body, tuple(properties)))
    return []


def _eval_reset(expr: ast.ResetExpr, ctx) -> Sequence:
    key = None
    if expr.key is not None:
        key = optional_singleton(atomize(evaluate(expr.key, ctx)),
                                 "slice key")
        if isinstance(key, UntypedAtomic):
            key = str(key)
    ctx.updates.add(ResetPrimitive(expr.slicing, key))
    return []


_HANDLERS = {
    ast.Literal: _eval_literal,
    ast.SequenceExpr: _eval_sequence,
    ast.VarRef: _eval_var,
    ast.ContextItem: _eval_context_item,
    ast.FunctionCall: _eval_function_call,
    ast.IfExpr: _eval_if,
    ast.FLWORExpr: _eval_flwor,
    ast.QuantifiedExpr: _eval_quantified,
    ast.UnaryOp: _eval_unary,
    ast.BinaryOp: _eval_binary,
    ast.Comparison: _eval_comparison,
    ast.PathExpr: _eval_path,
    ast.AxisStep: _eval_axis_step,
    ast.FilterExpr: _eval_filter,
    ast.DirectElementConstructor: _eval_direct_constructor,
    ast.ComputedElementConstructor: _eval_computed_element,
    ast.ComputedAttributeConstructor: _eval_computed_attribute,
    ast.TextConstructor: _eval_text_constructor,
    ast.EnqueueExpr: _eval_enqueue,
    ast.ResetExpr: _eval_reset,
}
