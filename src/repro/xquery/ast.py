"""AST node classes for the XQuery subset.

Plain dataclasses; evaluation lives in :mod:`repro.xquery.evaluator` and
rewriting (the rule compiler's view merging / inlining) in
:mod:`repro.engine.compiler`.  Keeping the tree passive makes rewrites
straightforward structural transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..xmldm import QName


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()

    def children(self) -> list["Expr"]:
        """Direct sub-expressions (used by rewrite passes)."""
        out: list[Expr] = []
        for name in getattr(self, "__dataclass_fields__", {}):
            value = getattr(self, name)
            if isinstance(value, Expr):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                out.extend(v for v in value if isinstance(v, Expr))
        return out


@dataclass
class Literal(Expr):
    value: object  # str | int | Decimal | float


@dataclass
class SequenceExpr(Expr):
    """The comma operator."""
    items: list[Expr]


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class ContextItem(Expr):
    """The ``.`` expression."""


@dataclass
class FunctionCall(Expr):
    name: str                       # lexical QName, e.g. "qs:message"
    args: list[Expr]


@dataclass
class IfExpr(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Optional[Expr]    # None → empty sequence (QML shorthand)


@dataclass
class ForClause:
    var: str
    position_var: Optional[str]
    source: Expr


@dataclass
class LetClause:
    var: str
    value: Expr


@dataclass
class OrderSpec:
    key: Expr
    descending: bool = False
    empty_least: bool = True


@dataclass
class FLWORExpr(Expr):
    clauses: list[Union[ForClause, LetClause]]
    where: Optional[Expr]
    order_by: list[OrderSpec]
    return_expr: Expr

    def children(self) -> list[Expr]:
        out: list[Expr] = []
        for clause in self.clauses:
            out.append(clause.source if isinstance(clause, ForClause)
                       else clause.value)
        if self.where is not None:
            out.append(self.where)
        out.extend(spec.key for spec in self.order_by)
        out.append(self.return_expr)
        return out


@dataclass
class QuantifiedExpr(Expr):
    quantifier: str                 # "some" | "every"
    bindings: list[tuple[str, Expr]]
    satisfies: Expr

    def children(self) -> list[Expr]:
        return [expr for _, expr in self.bindings] + [self.satisfies]


@dataclass
class BinaryOp(Expr):
    op: str                          # "and" "or" "+" "-" "*" "div" "idiv"
    left: Expr                       # "mod" "to" "union" "intersect" "except"
    right: Expr


@dataclass
class Comparison(Expr):
    op: str                          # "=" "!=" "<" "<=" ">" ">=" (general)
    left: Expr                       # "eq" "ne" "lt" "le" "gt" "ge" (value)
    right: Expr                      # "is" "<<" ">>"   (node)


@dataclass
class UnaryOp(Expr):
    op: str                          # "-" | "+"
    operand: Expr


# -- paths -------------------------------------------------------------------

@dataclass
class NameTest:
    """Element/attribute name test: ``n``, ``p:n``, ``*``, ``p:*``, ``*:n``."""
    local_name: Optional[str]        # None → any local name
    namespace: Optional[str] = None  # resolved URI; None → no namespace
    any_namespace: bool = False


@dataclass
class KindTest:
    kind: str                        # "node" "text" "comment" "element"
    name: Optional[NameTest] = None  # "attribute" "document-node"
                                     # "processing-instruction"


@dataclass
class AxisStep(Expr):
    axis: str                        # child descendant descendant-or-self self
    test: Union[NameTest, KindTest]  # parent ancestor ancestor-or-self
    predicates: list[Expr] = field(default_factory=list)
                                     # attribute following-sibling
                                     # preceding-sibling following preceding

    def children(self) -> list[Expr]:
        return list(self.predicates)


@dataclass
class PathExpr(Expr):
    """A path: optional root anchor plus steps."""
    steps: list[Expr]                # AxisStep or arbitrary expr (postfix)
    absolute: bool = False           # leading "/"  (or "//")


@dataclass
class FilterExpr(Expr):
    """A primary expression with predicates: ``expr[pred]…``."""
    base: Expr
    predicates: list[Expr]

    def children(self) -> list[Expr]:
        return [self.base, *self.predicates]


# -- constructors -------------------------------------------------------------

@dataclass
class AttributeConstructor:
    name: QName
    #: Alternating literal strings and Expr (attribute value template).
    parts: list[Union[str, Expr]]


@dataclass
class DirectElementConstructor(Expr):
    name: QName
    attributes: list[AttributeConstructor]
    #: Literal text (str), nested constructors, or enclosed Exprs.
    content: list[Union[str, Expr]]
    namespaces: dict[str, str] = field(default_factory=dict)

    def children(self) -> list[Expr]:
        out = [p for a in self.attributes for p in a.parts
               if isinstance(p, Expr)]
        out.extend(c for c in self.content if isinstance(c, Expr))
        return out


@dataclass
class ComputedElementConstructor(Expr):
    name_expr: Union[QName, Expr]
    content: Optional[Expr]

    def children(self) -> list[Expr]:
        out = [self.name_expr] if isinstance(self.name_expr, Expr) else []
        if self.content is not None:
            out.append(self.content)
        return out


@dataclass
class ComputedAttributeConstructor(Expr):
    name_expr: Union[QName, Expr]
    content: Optional[Expr]

    def children(self) -> list[Expr]:
        out = [self.name_expr] if isinstance(self.name_expr, Expr) else []
        if self.content is not None:
            out.append(self.content)
        return out


@dataclass
class TextConstructor(Expr):
    content: Optional[Expr]


# -- Demaq update primitives ---------------------------------------------------

@dataclass
class EnqueueExpr(Expr):
    """``do enqueue Expr into QName (with Name value Expr)*`` (paper §3.4)."""
    message: Expr
    queue: str
    properties: list[tuple[str, Expr]] = field(default_factory=list)

    def children(self) -> list[Expr]:
        return [self.message, *(expr for _, expr in self.properties)]


@dataclass
class ResetExpr(Expr):
    """``do reset`` / ``do reset(slicing, key)`` (paper §3.5.3)."""
    slicing: Optional[str] = None
    key: Optional[Expr] = None

    def children(self) -> list[Expr]:
        return [self.key] if self.key is not None else []


def walk(expr: Expr):
    """Pre-order traversal over an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)
