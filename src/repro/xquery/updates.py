"""Pending update lists and the Demaq update primitives.

QML rules never mutate state while they evaluate.  Following the XQuery
Update Facility (paper §3.2), ``do enqueue`` and ``do reset`` produce
*pending update primitives*; the rule executor applies the collected list
only after the whole rule set for a message has been evaluated.  That is
the snapshot semantics §3.1 relies on for optimization and transactional
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xmldm import Document, Node, deep_copy


@dataclass(frozen=True)
class EnqueuePrimitive:
    """Create a message with *body* (already copied) in *queue*."""

    queue: str
    body: Document
    properties: tuple[tuple[str, object], ...] = ()

    def property_dict(self) -> dict[str, object]:
        return dict(self.properties)


@dataclass(frozen=True)
class ResetPrimitive:
    """Reset a slice.  ``slicing``/``key`` of ``None`` mean "current"."""

    slicing: str | None = None
    key: object | None = None


UpdatePrimitive = object  # EnqueuePrimitive | ResetPrimitive


@dataclass
class PendingUpdateList:
    """An ordered list of pending update primitives."""

    primitives: list = field(default_factory=list)

    def add(self, primitive: UpdatePrimitive) -> None:
        self.primitives.append(primitive)

    def merge(self, other: "PendingUpdateList") -> None:
        self.primitives.extend(other.primitives)

    def enqueues(self) -> list[EnqueuePrimitive]:
        return [p for p in self.primitives if isinstance(p, EnqueuePrimitive)]

    def resets(self) -> list[ResetPrimitive]:
        return [p for p in self.primitives if isinstance(p, ResetPrimitive)]

    def __len__(self) -> int:
        return len(self.primitives)

    def __iter__(self):
        return iter(self.primitives)


def as_message_body(items: list) -> Document:
    """Coerce the result of an enqueue expression into a message body.

    The paper's examples enqueue a single constructed element (or a node
    picked from another message).  We accept one element or document node
    and wrap/copy it into a fresh document, so stored messages never alias
    live trees.
    """
    from .errors import UpdateError
    from .sequence import Sequence

    nodes = [item for item in items if isinstance(item, Node)]
    if len(items) != 1 or len(nodes) != 1:
        raise UpdateError(
            f"do enqueue requires exactly one node, got {len(items)} item(s)")
    node = nodes[0]
    if isinstance(node, Document):
        return deep_copy(node)  # type: ignore[return-value]
    copied = deep_copy(node)
    document = Document()
    document.append(copied)
    return document
