"""The XQuery-subset engine: lexer, parser, evaluator, update primitives.

High-level API::

    from repro.xquery import compile_expression, evaluate_expression

    expr = compile_expression("//order[id = 7]")
    result = evaluate_expression(expr, context_item=document)
"""

from __future__ import annotations

from ..xmldm import Node
from . import ast
from .atomics import UntypedAtomic, XSDateTime, cast_atomic
from .context import DynamicContext, Environment
from .errors import (DynamicError, FunctionError, StaticError, TypeError_,
                     UpdateError, XQueryError)
from .evaluator import evaluate
from .parser import parse_expression as compile_expression
from .sequence import (atomize, document_order, effective_boolean_value,
                       string_value)
from .updates import (EnqueuePrimitive, PendingUpdateList, ResetPrimitive,
                      as_message_body)


def evaluate_expression(expr: "ast.Expr | str",
                        context_item: object = None,
                        variables: dict[str, list] | None = None,
                        environment: Environment | None = None,
                        namespaces: dict[str, str] | None = None,
                        updates: PendingUpdateList | None = None) -> list:
    """Compile (if needed) and evaluate an expression.

    >>> from repro.xmldm import parse
    >>> doc = parse("<order><id>7</id></order>")
    >>> evaluate_expression("//id = 7", context_item=doc)
    [True]
    """
    if isinstance(expr, str):
        expr = compile_expression(expr, namespaces)
    ctx = DynamicContext(item=context_item, variables=variables,
                         environment=environment, namespaces=namespaces,
                         updates=updates)
    return evaluate(expr, ctx)


__all__ = [
    "ast", "Node",
    "UntypedAtomic", "XSDateTime", "cast_atomic",
    "DynamicContext", "Environment",
    "DynamicError", "FunctionError", "StaticError", "TypeError_",
    "UpdateError", "XQueryError",
    "evaluate", "compile_expression", "evaluate_expression",
    "atomize", "document_order", "effective_boolean_value", "string_value",
    "EnqueuePrimitive", "PendingUpdateList", "ResetPrimitive",
    "as_message_body",
]
