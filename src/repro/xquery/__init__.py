"""The XQuery-subset engine: lexer, parser, evaluator, update primitives.

High-level API::

    from repro.xquery import compile_expression, evaluate_expression

    expr = compile_expression("//order[id = 7]")
    result = evaluate_expression(expr, context_item=document)

Two evaluation backends share one semantics:

* ``interp`` — the tree-walking reference interpreter
  (:mod:`repro.xquery.evaluator`);
* ``compiled`` — the closure-compilation backend
  (:mod:`repro.xquery.compiled`), which lowers the AST once into nested
  Python closures and is the default on the engine's rule hot path.

:func:`active_backend` reads the ``DEMAQ_XQUERY_BACKEND`` environment
variable (``compiled`` when unset); :func:`make_evaluator` hands out a
``Callable[[DynamicContext], Sequence]`` for either backend.
"""

from __future__ import annotations

from ..config import read_field
from ..xmldm import Node
from . import ast
from .atomics import UntypedAtomic, XSDateTime, cast_atomic
from .compiled import compile_expr
from .context import DynamicContext, Environment
from .errors import (DynamicError, FunctionError, StaticError, TypeError_,
                     UpdateError, XQueryError)
from .evaluator import evaluate
from .parser import parse_expression as compile_expression
from .sequence import (atomize, document_order, effective_boolean_value,
                       string_value)
from .updates import (EnqueuePrimitive, PendingUpdateList, ResetPrimitive,
                      as_message_body)

#: Environment variable selecting the evaluation backend.
BACKEND_ENV_VAR = "DEMAQ_XQUERY_BACKEND"

_BACKEND_ALIASES = {
    "interp": "interp", "interpreter": "interp", "interpreted": "interp",
    "compiled": "compiled", "closure": "compiled", "closures": "compiled",
}


def _resolve_backend(name: str, where: str) -> str:
    backend = _BACKEND_ALIASES.get(name.strip().lower())
    if backend is None:
        raise ValueError(
            f"unknown XQuery backend {name!r}{where} "
            "(expected 'interp' or 'compiled')")
    return backend


def active_backend() -> str:
    """The selected backend name: ``"compiled"`` (default) or ``"interp"``."""
    raw = read_field("xquery_backend")
    if not raw.strip():
        return "compiled"
    return _resolve_backend(raw, f" in ${BACKEND_ENV_VAR}")


def make_evaluator(expr: "ast.Expr", backend: str | None = None):
    """A ``Callable[[DynamicContext], Sequence]`` evaluating *expr*.

    ``backend`` of ``None`` resolves :func:`active_backend`.  Callers
    that evaluate an expression repeatedly (the rule executor, the
    property resolver, the cluster router) hold on to the returned
    closure so the compiled backend's lowering happens once.
    """
    backend = active_backend() if backend is None \
        else _resolve_backend(backend, "")
    if backend == "interp":
        return lambda ctx: evaluate(expr, ctx)
    return compile_expr(expr)


def evaluate_expression(expr: "ast.Expr | str",
                        context_item: object = None,
                        variables: dict[str, list] | None = None,
                        environment: Environment | None = None,
                        namespaces: dict[str, str] | None = None,
                        updates: PendingUpdateList | None = None,
                        backend: str | None = None) -> list:
    """Compile (if needed) and evaluate an expression.

    >>> from repro.xmldm import parse
    >>> doc = parse("<order><id>7</id></order>")
    >>> evaluate_expression("//id = 7", context_item=doc)
    [True]
    """
    if isinstance(expr, str):
        expr = compile_expression(expr, namespaces)
    ctx = DynamicContext(item=context_item, variables=variables,
                         environment=environment, namespaces=namespaces,
                         updates=updates)
    return make_evaluator(expr, backend)(ctx)


__all__ = [
    "ast", "Node",
    "UntypedAtomic", "XSDateTime", "cast_atomic",
    "DynamicContext", "Environment",
    "DynamicError", "FunctionError", "StaticError", "TypeError_",
    "UpdateError", "XQueryError",
    "evaluate", "compile_expr", "compile_expression", "evaluate_expression",
    "BACKEND_ENV_VAR", "active_backend", "make_evaluator",
    "atomize", "document_order", "effective_boolean_value", "string_value",
    "EnqueuePrimitive", "PendingUpdateList", "ResetPrimitive",
    "as_message_body",
]
