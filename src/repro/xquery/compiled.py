"""The closure-compilation backend for the XQuery subset.

:func:`compile_expr` lowers an AST **once** into nested Python closures
(``Callable[[DynamicContext], Sequence]``).  Where the tree-walking
interpreter (:mod:`repro.xquery.evaluator`) re-dispatches on node type,
re-resolves functions, operators and axes, and re-materializes axis
candidate lists on every evaluation, the compiled form resolves all of
that at compile time:

* literals fold to constant sequences (comment markers excepted — they
  construct a fresh node per evaluation, like the interpreter);
* function bindings, comparison operators and arithmetic ops are looked
  up once; unknown functions become closures that *defer* the error to
  evaluation time, preserving the interpreter's behaviour for branches
  that never run;
* path steps lower to specialized per-axis/per-test step functions that
  never build intermediate focus contexts (an axis step only reads the
  context *item*; predicates establish their own foci), with early exit
  for literal positional predicates (``[1]``) and a static document-order
  analysis that skips re-sorting when a step provably preserves order;
* FLWOR clauses pre-plan into a list of tuple-stream transformers.

The interpreter remains the *reference semantics*: every leaf-level
semantic helper (value/general comparison, numeric promotion, order-by
keys, axis candidate generation, predicate truth) is imported from
:mod:`repro.xquery.evaluator` so the two backends cannot drift apart on
the subtle rules.  ``tests/xquery/test_compiled_equivalence.py`` asserts
equivalence (results, errors, and pending update lists) on generated
expressions and on the workload scenarios; ``benchmarks/bench_eval.py``
measures the speedup (E11 in DESIGN.md §5).

Backend selection is the ``DEMAQ_XQUERY_BACKEND`` environment variable
(``compiled`` is the default, ``interp`` selects the interpreter); see
:func:`repro.xquery.active_backend`.
"""

from __future__ import annotations

import math
from decimal import Decimal, DivisionByZero, InvalidOperation
from typing import Callable

from ..xmldm import (Attribute, Comment, Document, Element, Node,
                     ProcessingInstruction, QName, Text)
from . import ast
from .atomics import (UntypedAtomic, atomic_to_string, cast_to_double,
                      is_numeric, numeric_pair, type_name)
from .context import DynamicContext
from .errors import DynamicError, TypeError_, XQueryError
from .evaluator import (_OrderKey, _append_content, _axis_candidates,
                        _predicate_truth, _require_integer, _REVERSE_AXES,
                        _trunc_div, _value_compare, _general_compare,
                        _xquery_mod)
from .functions import lookup
from .parser import _CommentMarker
from .sequence import (Sequence, atomize, document_order,
                       effective_boolean_value, optional_singleton,
                       string_value)
from .updates import EnqueuePrimitive, ResetPrimitive, as_message_body

CompiledExpr = Callable[[DynamicContext], Sequence]


def compile_expr(expr: ast.Expr) -> CompiledExpr:
    """Lower *expr* into a closure evaluating it against a context."""
    compiler = _COMPILERS.get(type(expr))
    if compiler is None:
        # Mirror the interpreter, which fails only when the node is hit.
        return _raiser(DynamicError(f"no evaluator for {type(expr).__name__}"))
    return compiler(expr)


def _raiser(exc: Exception) -> CompiledExpr:
    """A closure deferring a compile-time-detected error to evaluation."""

    def run(ctx: DynamicContext) -> Sequence:
        raise exc

    return run


# -- literals, variables, sequences ------------------------------------------

def _compile_literal(expr: ast.Literal) -> CompiledExpr:
    value = expr.value
    if isinstance(value, _CommentMarker):
        text = value.value
        return lambda ctx: [Comment(text)]
    return lambda ctx: [value]


def _compile_sequence(expr: ast.SequenceExpr) -> CompiledExpr:
    item_fns = [compile_expr(item) for item in expr.items]

    def run(ctx):
        out: Sequence = []
        for fn in item_fns:
            out.extend(fn(ctx))
        return out

    return run


def _compile_var(expr: ast.VarRef) -> CompiledExpr:
    name = expr.name

    def run(ctx):
        try:
            return list(ctx.variables[name])
        except KeyError:
            raise DynamicError(f"unbound variable ${name}", "XPST0008")

    return run


def _compile_context_item(expr: ast.ContextItem) -> CompiledExpr:
    return lambda ctx: [ctx.require_context_item()]


def _compile_function_call(expr: ast.FunctionCall) -> CompiledExpr:
    arg_fns = [compile_expr(arg) for arg in expr.args]
    try:
        fn = lookup(expr.name, len(expr.args))
    except XQueryError as exc:
        # Unknown function / wrong arity: raise only if the call runs.
        return _raiser(exc)
    if not arg_fns:
        return lambda ctx: fn(ctx, [])
    if len(arg_fns) == 1:
        arg0 = arg_fns[0]
        return lambda ctx: fn(ctx, [arg0(ctx)])

    def run(ctx):
        return fn(ctx, [arg(ctx) for arg in arg_fns])

    return run


# -- control flow ----------------------------------------------------------------

def _compile_if(expr: ast.IfExpr) -> CompiledExpr:
    cond_fn = _compile_ebv(expr.condition)
    then_fn = compile_expr(expr.then_branch)
    else_fn = None if expr.else_branch is None \
        else compile_expr(expr.else_branch)

    def run(ctx):
        if cond_fn(ctx):
            return then_fn(ctx)
        if else_fn is None:
            return []
        return else_fn(ctx)

    return run


def _compile_ebv(expr: ast.Expr) -> Callable[[DynamicContext], bool]:
    """Compile *expr* for its effective boolean value.

    A predicate-free forward-axis path used as a condition (``if
    (//offerRequest)``, ``where $m/confirmed`` …) only needs
    *existence*: the traversal stops at the first matching node instead
    of materializing the whole result.  Pure axis traversals have no
    side effects and no per-node failure modes, so stopping early is
    observationally identical; everything else falls back to the
    general EBV over the compiled expression.
    """
    target = expr
    absolute = False
    if isinstance(target, ast.PathExpr):
        steps = _fuse_descendant_steps(target.steps)
        if len(steps) == 1 and isinstance(steps[0], ast.AxisStep):
            absolute = target.absolute
            target = steps[0]
    if isinstance(target, ast.AxisStep) and not target.predicates \
            and target.axis in _ITER_CANDIDATE_FNS \
            and target.axis not in _REVERSE_AXES:
        candidates = _ITER_CANDIDATE_FNS[target.axis]
        match = _compile_test(target.test, target.axis)
        if absolute:
            def cond(ctx):
                item = ctx.require_context_item()
                if not isinstance(item, Node):
                    raise TypeError_("'/' requires a node context item",
                                     "XPTY0020")
                return any(match(node) for node in candidates(item.root))
        else:
            def cond(ctx):
                item = ctx.require_context_item()
                if not isinstance(item, Node):
                    raise TypeError_(
                        f"axis step on a {type_name(item)} context item",
                        "XPTY0020")
                return any(match(node) for node in candidates(item))
        return cond
    fn = compile_expr(expr)
    return lambda ctx: effective_boolean_value(fn(ctx))


def _compile_flwor(expr: ast.FLWORExpr) -> CompiledExpr:
    clause_fns = []
    for clause in expr.clauses:
        if isinstance(clause, ast.LetClause):
            clause_fns.append(_compile_let(clause))
        else:
            clause_fns.append(_compile_for(clause))
    where_fn = None if expr.where is None else _compile_ebv(expr.where)
    order_fns = [(compile_expr(spec.key), spec) for spec in expr.order_by]
    return_fn = compile_expr(expr.return_expr)

    def run(ctx):
        tuples = [ctx]
        for clause_fn in clause_fns:
            tuples = clause_fn(tuples)
        if where_fn is not None:
            tuples = [t for t in tuples if where_fn(t)]
        if order_fns:
            decorated = []
            for index, t in enumerate(tuples):
                keys = [_OrderKey(optional_singleton(
                    atomize(key_fn(t)), "order by key"), spec)
                    for key_fn, spec in order_fns]
                decorated.append((keys, index, t))
            decorated.sort(key=lambda entry: (entry[0], entry[1]))
            tuples = [t for _, _, t in decorated]
        out: Sequence = []
        for t in tuples:
            out.extend(return_fn(t))
        return out

    return run


def _compile_let(clause: ast.LetClause):
    var = clause.var
    value_fn = compile_expr(clause.value)

    def apply(tuples):
        return [t.bind(var, value_fn(t)) for t in tuples]

    return apply


def _compile_for(clause: ast.ForClause):
    var = clause.var
    position_var = clause.position_var
    source_fn = compile_expr(clause.source)

    def apply(tuples):
        expanded = []
        for t in tuples:
            source = source_fn(t)
            for position, item in enumerate(source, 1):
                bound = t.bind(var, [item])
                if position_var:
                    bound = bound.bind(position_var, [position])
                expanded.append(bound)
        return expanded

    return apply


def _compile_quantified(expr: ast.QuantifiedExpr) -> CompiledExpr:
    bindings = [(var, compile_expr(source))
                for var, source in expr.bindings]
    satisfies_fn = _compile_ebv(expr.satisfies)
    is_some = expr.quantifier == "some"
    count = len(bindings)

    def run(ctx):
        def recurse(index: int, current: DynamicContext) -> bool:
            if index == count:
                return satisfies_fn(current)
            var, source_fn = bindings[index]
            source = source_fn(current)
            if is_some:
                return any(recurse(index + 1, current.bind(var, [item]))
                           for item in source)
            return all(recurse(index + 1, current.bind(var, [item]))
                       for item in source)

        return [recurse(0, ctx)]

    return run


# -- operators ---------------------------------------------------------------------

def _compile_unary(expr: ast.UnaryOp) -> CompiledExpr:
    operand_fn = compile_expr(expr.operand)
    op = expr.op
    negate = op == "-"

    def run(ctx):
        value = optional_singleton(atomize(operand_fn(ctx)),
                                   "unary arithmetic")
        if value is None:
            return []
        if isinstance(value, UntypedAtomic):
            value = cast_to_double(value)
        if not is_numeric(value):
            raise TypeError_(f"unary {op} on {type_name(value)}")
        return [-value] if negate else [value]

    return run


def _compile_binary(expr: ast.BinaryOp) -> CompiledExpr:
    op = expr.op

    if op in ("and", "or"):
        # Compile the operands via the EBV path only: lowering them
        # with compile_expr here as well would recurse twice per
        # operand, going exponential on long boolean chains.
        left_ebv = _compile_ebv(expr.left)
        right_ebv = _compile_ebv(expr.right)
        if op == "and":
            def run(ctx):
                if not left_ebv(ctx):
                    return [False]
                return [right_ebv(ctx)]
        else:
            def run(ctx):
                if left_ebv(ctx):
                    return [True]
                return [right_ebv(ctx)]
        return run

    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    if op in ("union", "intersect", "except"):
        return _compile_set_op(op, left_fn, right_fn)

    what = f"'{op}'"
    if op == "to":
        def run(ctx):
            left = optional_singleton(atomize(left_fn(ctx)), what)
            right = optional_singleton(atomize(right_fn(ctx)), what)
            if left is None or right is None:
                return []
            start = _require_integer(left, "to")
            end = _require_integer(right, "to")
            return list(range(start, end + 1))
        return run

    apply = _ARITHMETIC.get(op)
    if apply is not None:
        def run(ctx):
            left = optional_singleton(atomize(left_fn(ctx)), what)
            right = optional_singleton(atomize(right_fn(ctx)), what)
            if left is None or right is None:
                return []
            return apply(*numeric_pair(left, right))
        return run

    # Parser never emits other operators; mirror the interpreter, which
    # evaluates both operands before failing.
    def run(ctx):
        left = optional_singleton(atomize(left_fn(ctx)), what)
        right = optional_singleton(atomize(right_fn(ctx)), what)
        if left is None or right is None:
            return []
        numeric_pair(left, right)
        raise DynamicError(f"unknown operator {op!r}")

    return run


def _arith_add(left, right):
    return [left + right]


def _arith_sub(left, right):
    return [left - right]


def _arith_mul(left, right):
    return [left * right]


def _arith_div(left, right):
    try:
        if isinstance(left, int):
            left, right = Decimal(left), Decimal(right)
        return [left / right]
    except (ZeroDivisionError, DivisionByZero, InvalidOperation):
        if isinstance(left, float):
            if left == 0:
                return [math.nan]
            return [math.inf if (left > 0) == (right >= 0) else -math.inf]
        raise DynamicError("division by zero", "FOAR0001")


def _arith_idiv(left, right):
    try:
        return [int(_trunc_div(left, right))]
    except (ZeroDivisionError, DivisionByZero, InvalidOperation):
        raise DynamicError("division by zero", "FOAR0001")


def _arith_mod(left, right):
    try:
        return [_xquery_mod(left, right)]
    except (ZeroDivisionError, DivisionByZero, InvalidOperation):
        raise DynamicError("division by zero", "FOAR0001")


_ARITHMETIC = {
    "+": _arith_add, "-": _arith_sub, "*": _arith_mul,
    "div": _arith_div, "idiv": _arith_idiv, "mod": _arith_mod,
}


def _compile_set_op(op: str, left_fn: CompiledExpr,
                    right_fn: CompiledExpr) -> CompiledExpr:
    def run(ctx):
        left = left_fn(ctx)
        right = right_fn(ctx)
        for item in (*left, *right):
            if not isinstance(item, Node):
                raise TypeError_(f"{op} requires node sequences")
        right_ids = {id(n) for n in right}
        if op == "union":
            return document_order([*left, *right])
        if op == "intersect":
            return document_order([n for n in left if id(n) in right_ids])
        return document_order([n for n in left if id(n) not in right_ids])

    return run


# -- comparisons --------------------------------------------------------------------

_GENERAL_TO_VALUE = {"=": "eq", "!=": "ne", "<": "lt", "<=": "le",
                     ">": "gt", ">=": "ge"}


def _literal_atom(expr: ast.Expr):
    """``[value]`` when *expr* is an atomic literal, else None."""
    if isinstance(expr, ast.Literal) \
            and not isinstance(expr.value, _CommentMarker):
        return [expr.value]
    return None


_COMPARE_OPS = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
}


def _probe_comparator(value_op: str, probe):
    """``item -> bool`` specializing general comparison against a
    constant probe, pre-resolving the coercion the interpreter's
    ``_general_compare``/``_apply_compare`` re-derive per item."""
    apply_op = _COMPARE_OPS[value_op]
    if is_numeric(probe) and not isinstance(probe, bool):
        probe_double = cast_to_double(probe)

        def compare(a):
            if isinstance(a, UntypedAtomic):
                # numeric_pair casts both sides to double whenever one
                # side is (the coerced untyped value always is).
                return apply_op(cast_to_double(a), probe_double)
            if isinstance(a, bool) or not is_numeric(a):
                raise TypeError_(
                    f"cannot compare {type_name(a)} with {type_name(probe)}")
            return apply_op(*numeric_pair(a, probe))

        return compare
    if isinstance(probe, str):
        def compare(a):
            if isinstance(a, UntypedAtomic):
                return apply_op(str(a), probe)
            if not isinstance(a, str):
                raise TypeError_(
                    f"cannot compare {type_name(a)} with xs:string")
            return apply_op(a, probe)

        return compare
    return lambda a: _general_compare(value_op, a, probe)


def _compile_comparison(expr: ast.Comparison) -> CompiledExpr:
    op = expr.op
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)

    if op in ("is", "<<", ">>"):
        return _compile_node_comparison(op, left_fn, right_fn)

    # A literal operand folds to its (already atomic) constant: literal
    # evaluation has no side effects or failure modes, so skipping the
    # per-evaluation sequence round trip is unobservable.
    right_const = _literal_atom(expr.right)

    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        what = f"'{op}'"
        if right_const is not None:
            right_value = right_const[0]

            def run(ctx):
                left = optional_singleton(atomize(left_fn(ctx)), what)
                if left is None:
                    return []
                return [_value_compare(op, left, right_value)]

            return run

        def run(ctx):
            left_seq = left_fn(ctx)
            right_seq = right_fn(ctx)
            left = optional_singleton(atomize(left_seq), what)
            right = optional_singleton(atomize(right_seq), what)
            if left is None or right is None:
                return []
            return [_value_compare(op, left, right)]

        return run

    value_op = _GENERAL_TO_VALUE[op]
    if right_const is not None:
        right_value = right_const[0]
        compare = _probe_comparator(value_op, right_value)

        def run(ctx):
            for a in atomize(left_fn(ctx)):
                if compare(a):
                    return [True]
            return [False]

        return run

    def run(ctx):
        left_atoms = atomize(left_fn(ctx))
        right_atoms = atomize(right_fn(ctx))
        for a in left_atoms:
            for b in right_atoms:
                if _general_compare(value_op, a, b):
                    return [True]
        return [False]

    return run


def _compile_node_comparison(op: str, left_fn: CompiledExpr,
                             right_fn: CompiledExpr) -> CompiledExpr:
    def run(ctx):
        left = optional_singleton(left_fn(ctx), op)
        right = optional_singleton(right_fn(ctx), op)
        if left is None or right is None:
            return []
        if not isinstance(left, Node) or not isinstance(right, Node):
            raise TypeError_(f"'{op}' requires nodes")
        if op == "is":
            return [left is right]
        if op == "<<":
            return [left.order_key() < right.order_key()]
        return [left.order_key() > right.order_key()]

    return run


# -- paths ---------------------------------------------------------------------------
#
# A path is compiled into a chain of *step runners*
# ``(ctx, current) -> next`` plus a static document-order analysis.  The
# interpreter re-sorts (and dedupes) after every node-producing step;
# re-sorting an already sorted, duplicate-free list is the identity, so
# a step whose output is *provably* sorted and unique may skip it.  The
# proof tracks one flag through the chain — whether the current node set
# can contain a node together with one of its own descendants
# ("overlapping").  Starting from a singleton focus:
#
# * ``child``/``attribute``/``self`` preserve sortedness and
#   non-overlap when the input is non-overlapping;
# * ``descendant``/``descendant-or-self`` keep the output sorted for
#   non-overlapping input but make it overlapping;
# * every other axis, and any non-axis step, falls back to the runtime
#   sort (which a runner still skips when it ran over a single focus
#   item, where a single axis traversal is already in axis-sorted,
#   duplicate-free form).

def _descendant_list(node: Node) -> list[Node]:
    """Descendants in document order, iteratively (the recursive
    generators in the data model cost O(depth) per yielded node)."""
    out: list[Node] = []
    stack = list(node.children)
    stack.reverse()
    while stack:
        current = stack.pop()
        out.append(current)
        children = current.children
        if children:
            stack.extend(reversed(children))
    return out


def _descendant_or_self_list(node: Node) -> list[Node]:
    out = [node]
    out.extend(_descendant_list(node))
    return out


def _matching_descendants(node: Node, match) -> list[Node]:
    """Document-order descendants passing *match*, in one fused walk."""
    out: list[Node] = []
    stack = list(node.children)
    stack.reverse()
    while stack:
        current = stack.pop()
        if match(current):
            out.append(current)
        children = current.children
        if children:
            stack.extend(reversed(children))
    return out


def _iter_descendants(node: Node):
    """Lazy document-order descendants for early-exit existence scans."""
    stack = list(node.children)
    stack.reverse()
    while stack:
        current = stack.pop()
        yield current
        children = current.children
        if children:
            stack.extend(reversed(children))


def _iter_descendants_or_self(node: Node):
    yield node
    yield from _iter_descendants(node)


_CANDIDATE_FNS = {
    "child": lambda node: node.children,
    "descendant": _descendant_list,
    "descendant-or-self": _descendant_or_self_list,
    "self": lambda node: (node,),
    "attribute": lambda node: node.attributes
        if isinstance(node, Element) else (),
    "parent": lambda node: (node.parent,)
        if node.parent is not None else (),
    "ancestor": lambda node: node.ancestors(),
    "ancestor-or-self": lambda node: (node, *node.ancestors()),
    "following-sibling": lambda node: node.following_siblings(),
    "preceding-sibling": lambda node: node.preceding_siblings(),
    "following": lambda node: _axis_candidates(node, "following"),
    "preceding": lambda node: _axis_candidates(node, "preceding"),
}

#: Candidate generators for existence scans: like ``_CANDIDATE_FNS``
#: but lazy on the descendant axes, so ``any()`` stops at a match.
_ITER_CANDIDATE_FNS = dict(_CANDIDATE_FNS)
_ITER_CANDIDATE_FNS["descendant"] = _iter_descendants
_ITER_CANDIDATE_FNS["descendant-or-self"] = _iter_descendants_or_self

#: Axes whose output from non-overlapping input is sorted and unique
#: but may itself overlap (a node together with its own descendant).
_SORTED_AXES = frozenset({"descendant", "descendant-or-self"})
#: Axes whose output from a *single* focus item cannot contain a node
#: together with one of its descendants.
_SINGLETON_OVERLAP_FREE = frozenset(
    {"child", "attribute", "self", "parent",
     "following-sibling", "preceding-sibling"})


def _compile_test(test, axis: str) -> Callable[[Node], bool]:
    """A ``node -> bool`` matcher specialized for *test* on *axis*."""
    if isinstance(test, ast.KindTest):
        return _compile_kind_test(test)
    principal = Attribute if axis == "attribute" else Element
    local = test.local_name
    namespace = test.namespace
    if local is not None and not test.any_namespace:
        def match(node):
            if not isinstance(node, principal):
                return False
            name = node.name
            return name.local_name == local \
                and name.namespace_uri == namespace
    elif local is not None:
        def match(node):
            return isinstance(node, principal) \
                and node.name.local_name == local
    elif test.any_namespace:
        def match(node):
            return isinstance(node, principal)
    else:
        def match(node):
            return isinstance(node, principal) \
                and node.name.namespace_uri == namespace
    return match


def _compile_kind_test(test: ast.KindTest) -> Callable[[Node], bool]:
    kind = test.kind
    if kind == "node":
        return lambda node: True
    if kind == "text":
        return lambda node: isinstance(node, Text)
    if kind == "comment":
        return lambda node: isinstance(node, Comment)
    if kind == "document-node":
        return lambda node: isinstance(node, Document)
    if kind in ("element", "attribute"):
        principal = Element if kind == "element" else Attribute
        if test.name is None:
            return lambda node: isinstance(node, principal)
        name_match = _compile_test(
            test.name, "attribute" if kind == "attribute" else "child")
        return name_match
    if kind == "processing-instruction":
        target = None if test.name is None else test.name.local_name

        def match(node):
            if not isinstance(node, ProcessingInstruction):
                return False
            return target is None or node.target == target
        return match

    def unsupported(node):
        raise DynamicError(f"unsupported kind test {kind!r}")
    return unsupported


def _positional_literal(predicate: ast.Expr):
    """The literal position of a ``[<number>]`` predicate, else None."""
    if isinstance(predicate, ast.Literal) and is_numeric(predicate.value) \
            and not isinstance(predicate.value, bool):
        return predicate.value
    return None


_BOOLEAN_FUNCTIONS = frozenset({
    "not", "exists", "empty", "boolean", "contains", "starts-with",
    "ends-with", "matches", "true", "false", "deep-equal"})


def _never_numeric_singleton(expr: ast.Expr) -> bool:
    """Can *expr*'s value never be a single number?

    For such predicates, predicate truth is exactly the effective
    boolean value (positional selection needs a numeric singleton), so
    the compiled predicate can use the early-exit EBV form.
    """
    if isinstance(expr, ast.Comparison):
        return True
    if isinstance(expr, ast.BinaryOp):
        return expr.op in ("and", "or")
    if isinstance(expr, ast.QuantifiedExpr):
        return True
    if isinstance(expr, ast.AxisStep):
        return True     # node sequences are never numeric
    if isinstance(expr, ast.PathExpr):
        return bool(expr.steps) \
            and isinstance(expr.steps[-1], ast.AxisStep)
    if isinstance(expr, ast.FilterExpr):
        return _never_numeric_singleton(expr.base)
    if isinstance(expr, ast.FunctionCall):
        name = expr.name[3:] if expr.name.startswith("fn:") else expr.name
        return name in _BOOLEAN_FUNCTIONS
    return False


def _compile_predicates(predicates: list[ast.Expr]):
    """Compile predicates into ``(items, ctx) -> items`` appliers."""
    appliers = []
    for predicate in predicates:
        position_value = _positional_literal(predicate)
        if position_value is not None:
            appliers.append(_positional_applier(position_value))
        elif _never_numeric_singleton(predicate):
            appliers.append(_boolean_predicate_applier(
                _compile_ebv(predicate)))
        else:
            appliers.append(_predicate_applier(compile_expr(predicate)))
    return appliers


def _boolean_predicate_applier(ebv_fn):
    def apply(items, ctx):
        size = len(items)
        kept = []
        for position, item in enumerate(items, 1):
            if ebv_fn(ctx.focus(item, position, size)):
                kept.append(item)
        return kept

    return apply


def _positional_applier(value):
    as_float = float(value)
    target = int(as_float) if as_float == int(as_float) else None

    def apply(items, ctx):
        if target is None or not 1 <= target <= len(items):
            return []
        return [items[target - 1]]

    return apply


def _predicate_applier(fn: CompiledExpr):
    def apply(items, ctx):
        size = len(items)
        kept = []
        for position, item in enumerate(items, 1):
            result = fn(ctx.focus(item, position, size))
            if _predicate_truth(result, position):
                kept.append(item)
        return kept

    return apply


def _compile_axis_function(step: ast.AxisStep):
    """``(ctx, items) -> nodes`` applying one axis step to a node set.

    Matches the interpreter's per-item behaviour: candidates in axis
    order, name/kind test, predicates over axis order, reverse-axis
    results returned in document order.  No focus contexts are built for
    the traversal itself — an axis step only reads the context *item*;
    predicates establish their own foci from ``ctx``.
    """
    axis = step.axis
    candidates = _CANDIDATE_FNS.get(axis)
    if candidates is None:
        message = f"unsupported axis {axis!r}"

        def unsupported(ctx, items):
            for item in items:
                if not isinstance(item, Node):
                    raise TypeError_(
                        f"axis step on a {type_name(item)} context item",
                        "XPTY0020")
                raise DynamicError(message)
            return []
        return unsupported

    match = _compile_test(step.test, axis)
    reverse = axis in _REVERSE_AXES
    appliers = _compile_predicates(step.predicates)

    # ``step[<k>]`` early exit: stop scanning candidates at the k-th
    # match instead of materializing the whole axis first.
    first_position = _positional_literal(step.predicates[0]) \
        if step.predicates else None
    if first_position is not None:
        as_float = float(first_position)
        target = int(as_float) if as_float == int(as_float) else None
        rest = appliers[1:]

        def run(ctx, items):
            out = []
            for item in items:
                if not isinstance(item, Node):
                    raise TypeError_(
                        f"axis step on a {type_name(item)} context item",
                        "XPTY0020")
                matched: list = []
                if target is not None and target >= 1:
                    seen = 0
                    for node in candidates(item):
                        if match(node):
                            seen += 1
                            if seen == target:
                                matched.append(node)
                                break
                for applier in rest:
                    matched = applier(matched, ctx)
                if reverse:
                    matched = document_order(matched)
                out.extend(matched)
            return out

        return run

    if not appliers and not reverse:
        if axis == "descendant":
            def run(ctx, items):
                out = []
                for item in items:
                    if not isinstance(item, Node):
                        raise TypeError_(
                            f"axis step on a {type_name(item)} context item",
                            "XPTY0020")
                    out.extend(_matching_descendants(item, match))
                return out

            return run

        if axis == "descendant-or-self":
            def run(ctx, items):
                out = []
                for item in items:
                    if not isinstance(item, Node):
                        raise TypeError_(
                            f"axis step on a {type_name(item)} context item",
                            "XPTY0020")
                    if match(item):
                        out.append(item)
                    out.extend(_matching_descendants(item, match))
                return out

            return run

        def run(ctx, items):
            out = []
            for item in items:
                if not isinstance(item, Node):
                    raise TypeError_(
                        f"axis step on a {type_name(item)} context item",
                        "XPTY0020")
                out.extend(node for node in candidates(item)
                           if match(node))
            return out

        return run

    def run(ctx, items):
        out = []
        for item in items:
            if not isinstance(item, Node):
                raise TypeError_(
                    f"axis step on a {type_name(item)} context item",
                    "XPTY0020")
            matched = [node for node in candidates(item) if match(node)]
            if matched:
                for applier in appliers:
                    matched = applier(matched, ctx)
                if reverse:
                    matched = document_order(matched)
                out.extend(matched)
        return out

    return run


def _compile_axis_step(expr: ast.AxisStep) -> CompiledExpr:
    """A bare axis step used as an expression (outside a path)."""
    axis = expr.axis
    candidates = _CANDIDATE_FNS.get(axis)
    if candidates is not None and not expr.predicates \
            and axis not in _REVERSE_AXES:
        # The hottest shapes (``price``, ``@sku``, fused ``//name``):
        # one forward traversal from the context item, no per-step
        # list wrapper.
        match = _compile_test(expr.test, axis)
        if axis == "descendant":
            def run(ctx):
                item = ctx.require_context_item()
                if not isinstance(item, Node):
                    raise TypeError_(
                        f"axis step on a {type_name(item)} context item",
                        "XPTY0020")
                return _matching_descendants(item, match)

            return run

        def run(ctx):
            item = ctx.require_context_item()
            if not isinstance(item, Node):
                raise TypeError_(
                    f"axis step on a {type_name(item)} context item",
                    "XPTY0020")
            return [node for node in candidates(item) if match(node)]

        return run
    axis_fn = _compile_axis_function(expr)
    return lambda ctx: axis_fn(ctx, [ctx.require_context_item()])


def _fuse_descendant_steps(steps: list) -> list:
    """Rewrite ``descendant-or-self::node()/child::T`` (the ``//T``
    expansion) into a single ``descendant::T`` step.

    Sound only when neither step carries predicates: every child of a
    node in the subtree is a descendant (and vice versa), but child-step
    predicates see per-parent positions that the fused step would lose.
    """
    out: list = []
    index = 0
    while index < len(steps):
        step = steps[index]
        if index + 1 < len(steps) \
                and isinstance(step, ast.AxisStep) \
                and step.axis == "descendant-or-self" \
                and isinstance(step.test, ast.KindTest) \
                and step.test.kind == "node" \
                and not step.predicates:
            successor = steps[index + 1]
            if isinstance(successor, ast.AxisStep) \
                    and successor.axis == "child" \
                    and not successor.predicates:
                out.append(ast.AxisStep("descendant", successor.test, []))
                index += 2
                continue
        out.append(step)
        index += 1
    return out


def _generic_step_runner(fn: CompiledExpr, first_relative: bool):
    """A step that is an arbitrary expression: interpreter semantics
    (focus per input item, node/atomic mixing check, document order)."""

    def run_step(ctx, current):
        if first_relative:
            contexts = [ctx]
        else:
            size = len(current)
            contexts = [ctx.focus(item, position, size)
                        for position, item in enumerate(current, 1)]
        results: Sequence = []
        any_nodes = False
        any_atomics = False
        for sub_ctx in contexts:
            for item in fn(sub_ctx):
                if isinstance(item, Node):
                    any_nodes = True
                else:
                    any_atomics = True
                results.append(item)
        if any_nodes and any_atomics:
            raise TypeError_(
                "path step mixes nodes and atomic values", "XPTY0018")
        if any_nodes and len(results) > 1:
            # A singleton is already sorted and duplicate-free.
            results = document_order(results)
        return results

    return run_step


def _compile_path(expr: ast.PathExpr) -> CompiledExpr:
    absolute = expr.absolute

    if absolute and not expr.steps:
        def run_root(ctx):
            item = ctx.require_context_item()
            if not isinstance(item, Node):
                raise TypeError_("'/' requires a node context item",
                                 "XPTY0020")
            return [item.root]
        return run_root

    steps = _fuse_descendant_steps(expr.steps)
    if not absolute and len(steps) == 1 \
            and isinstance(steps[0], ast.AxisStep):
        # A one-step relative path is exactly a bare axis step: the
        # interpreter's per-step ordering is the identity here.
        return _compile_axis_step(steps[0])
    if absolute and len(steps) == 1 \
            and isinstance(steps[0], ast.AxisStep) \
            and steps[0].axis == "descendant" \
            and not steps[0].predicates:
        # ``//name`` after fusion — the single most common rule-body
        # path: one fused walk from the root.
        match = _compile_test(steps[0].test, "descendant")

        def run_descendants(ctx):
            item = ctx.require_context_item()
            if not isinstance(item, Node):
                raise TypeError_("'/' requires a node context item",
                                 "XPTY0020")
            return _matching_descendants(item.root, match)

        return run_descendants

    runners = []
    overlap_free = True     # the current set starts as a singleton focus
    for index, step in enumerate(steps):
        first_relative = index == 0 and not absolute
        if not isinstance(step, ast.AxisStep):
            runners.append(_generic_step_runner(compile_expr(step),
                                                first_relative))
            overlap_free = False
            continue
        axis_fn = _compile_axis_function(step)
        axis = step.axis
        if first_relative:
            # One traversal from the outer focus item: already in
            # sorted, duplicate-free form — never re-sort.
            def runner(ctx, current, fn=axis_fn):
                return fn(ctx, [ctx.require_context_item()])
            runners.append(runner)
            overlap_free = axis in _SINGLETON_OVERLAP_FREE
            continue
        # Transition for a multi-item input set.  The input is always
        # sorted and unique (the invariant every runner re-establishes).
        if axis == "self":
            sorted_out = True
        elif axis == "attribute":
            sorted_out = True
            overlap_free = True     # attributes have no descendants
        elif axis == "child":
            sorted_out = overlap_free
        elif axis in _SORTED_AXES:
            sorted_out = overlap_free
            overlap_free = False
        else:
            sorted_out = False
            overlap_free = False
        if sorted_out:
            def runner(ctx, current, fn=axis_fn):
                return fn(ctx, current)
        else:
            # Runtime sort — skipped over a single focus item, where
            # one axis traversal is already ordered and unique.
            def runner(ctx, current, fn=axis_fn):
                single = len(current) <= 1
                out = fn(ctx, current)
                return out if single else document_order(out)
        runners.append(runner)

    def run(ctx):
        if absolute:
            item = ctx.require_context_item()
            if not isinstance(item, Node):
                raise TypeError_("'/' requires a node context item",
                                 "XPTY0020")
            current: Sequence = [item.root]
        else:
            current = []    # replaced by the first (relative) runner
        for runner in runners:
            current = runner(ctx, current)
            if not current:
                return []
        return current

    return run


def _compile_filter(expr: ast.FilterExpr) -> CompiledExpr:
    base_fn = compile_expr(expr.base)
    appliers = _compile_predicates(expr.predicates)

    def run(ctx):
        items = base_fn(ctx)
        for applier in appliers:
            items = applier(items, ctx)
        return items

    return run


# -- constructors -------------------------------------------------------------------

def _compile_template_parts(parts: list):
    """Attribute value template: literal strings and compiled closures."""
    compiled = [part if isinstance(part, str) else compile_expr(part)
                for part in parts]

    def run(ctx) -> str:
        out = []
        for part in compiled:
            if isinstance(part, str):
                out.append(part)
            else:
                values = atomize(part(ctx))
                out.append(" ".join(atomic_to_string(v) for v in values))
        return "".join(out)

    return run


def _compile_direct_constructor(expr: ast.DirectElementConstructor
                                ) -> CompiledExpr:
    name = expr.name
    namespaces = dict(expr.namespaces)
    attr_fns = [(attr.name, _compile_template_parts(attr.parts))
                for attr in expr.attributes]
    content = [part if isinstance(part, str) else compile_expr(part)
               for part in expr.content]

    def run(ctx):
        element = Element(name, namespaces=dict(namespaces))
        for attr_name, template_fn in attr_fns:
            element.set_attribute(Attribute(attr_name, template_fn(ctx)))
        for part in content:
            if isinstance(part, str):
                element.append(Text(part))
            else:
                _append_content(element, part(ctx))
        return [element]

    return run


def _compile_computed_element(expr: ast.ComputedElementConstructor
                              ) -> CompiledExpr:
    fixed_name = expr.name_expr if isinstance(expr.name_expr, QName) else None
    name_fn = None if fixed_name is not None else compile_expr(expr.name_expr)
    content_fn = None if expr.content is None else compile_expr(expr.content)

    def run(ctx):
        if fixed_name is not None:
            name = fixed_name
        else:
            raw = string_value(optional_singleton(
                name_fn(ctx), "element name") or "")
            name = QName.parse(raw, ctx.namespaces)
        element = Element(name)
        if content_fn is not None:
            _append_content(element, content_fn(ctx))
        return [element]

    return run


def _compile_computed_attribute(expr: ast.ComputedAttributeConstructor
                                ) -> CompiledExpr:
    fixed_name = expr.name_expr if isinstance(expr.name_expr, QName) else None
    name_fn = None if fixed_name is not None else compile_expr(expr.name_expr)
    content_fn = None if expr.content is None else compile_expr(expr.content)

    def run(ctx):
        if fixed_name is not None:
            name = fixed_name
        else:
            raw = string_value(optional_singleton(
                name_fn(ctx), "attribute name") or "")
            name = QName.parse(raw, ctx.namespaces)
        value = ""
        if content_fn is not None:
            values = atomize(content_fn(ctx))
            value = " ".join(atomic_to_string(v) for v in values)
        return [Attribute(name, value)]

    return run


def _compile_text_constructor(expr: ast.TextConstructor) -> CompiledExpr:
    if expr.content is None:
        return lambda ctx: []
    content_fn = compile_expr(expr.content)

    def run(ctx):
        values = atomize(content_fn(ctx))
        if not values:
            return []
        return [Text(" ".join(atomic_to_string(v) for v in values))]

    return run


# -- Demaq update primitives -----------------------------------------------------

def _compile_enqueue(expr: ast.EnqueueExpr) -> CompiledExpr:
    queue = expr.queue
    message_fn = compile_expr(expr.message)
    property_fns = [(name, compile_expr(value))
                    for name, value in expr.properties]

    def run(ctx):
        body = as_message_body(message_fn(ctx))
        properties = []
        for name, value_fn in property_fns:
            value = optional_singleton(atomize(value_fn(ctx)),
                                       f"property {name}")
            if isinstance(value, UntypedAtomic):
                value = str(value)
            properties.append((name, value))
        ctx.updates.add(EnqueuePrimitive(queue, body, tuple(properties)))
        return []

    return run


def _compile_reset(expr: ast.ResetExpr) -> CompiledExpr:
    slicing = expr.slicing
    key_fn = None if expr.key is None else compile_expr(expr.key)

    def run(ctx):
        key = None
        if key_fn is not None:
            key = optional_singleton(atomize(key_fn(ctx)), "slice key")
            if isinstance(key, UntypedAtomic):
                key = str(key)
        ctx.updates.add(ResetPrimitive(slicing, key))
        return []

    return run


_COMPILERS = {
    ast.Literal: _compile_literal,
    ast.SequenceExpr: _compile_sequence,
    ast.VarRef: _compile_var,
    ast.ContextItem: _compile_context_item,
    ast.FunctionCall: _compile_function_call,
    ast.IfExpr: _compile_if,
    ast.FLWORExpr: _compile_flwor,
    ast.QuantifiedExpr: _compile_quantified,
    ast.UnaryOp: _compile_unary,
    ast.BinaryOp: _compile_binary,
    ast.Comparison: _compile_comparison,
    ast.PathExpr: _compile_path,
    ast.AxisStep: _compile_axis_step,
    ast.FilterExpr: _compile_filter,
    ast.DirectElementConstructor: _compile_direct_constructor,
    ast.ComputedElementConstructor: _compile_computed_element,
    ast.ComputedAttributeConstructor: _compile_computed_attribute,
    ast.TextConstructor: _compile_text_constructor,
    ast.EnqueueExpr: _compile_enqueue,
    ast.ResetExpr: _compile_reset,
}
