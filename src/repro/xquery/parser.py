"""Recursive-descent parser for the XQuery subset plus Demaq extensions.

The grammar follows XQuery 1.0 where implemented, with the two Demaq
update primitives from the paper grafted on at the ExprSingle level:

* ``do enqueue ExprSingle into QName (with Name value ExprSingle)*``
* ``do reset`` / ``do reset(SlicingName, ExprSingle)``

Direct element constructors switch the lexer into character-level
scanning; enclosed expressions (``{...}``) switch back.  See
:mod:`repro.xquery.lexer` for the mechanics.
"""

from __future__ import annotations

from decimal import Decimal

from ..xmldm import QName
from ..xmldm.parser import _PREDEFINED_ENTITIES
from .ast import (AttributeConstructor, AxisStep, BinaryOp, Comparison,
                  ComputedAttributeConstructor, ComputedElementConstructor,
                  ContextItem, DirectElementConstructor, EnqueueExpr, Expr,
                  FilterExpr, FLWORExpr, ForClause, FunctionCall, IfExpr,
                  KindTest, LetClause, Literal, NameTest, OrderSpec, PathExpr,
                  QuantifiedExpr, ResetExpr, SequenceExpr, TextConstructor,
                  UnaryOp, VarRef)
from .errors import StaticError
from .lexer import (DECIMAL, DOUBLE, EOF, INTEGER, NAME, STRING, SYMBOL,
                    VARIABLE, Lexer, Token)

_AXES = {
    "child", "descendant", "descendant-or-self", "self", "attribute",
    "parent", "ancestor", "ancestor-or-self", "following-sibling",
    "preceding-sibling", "following", "preceding",
}

_KIND_TESTS = {
    "node", "text", "comment", "element", "attribute", "document-node",
    "processing-instruction",
}

_VALUE_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}
_GENERAL_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}

_NAME_START_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START_CHARS | set("0123456789.-:")


class Parser:
    """Parses one expression (or statement fragment, for QDL reuse)."""

    def __init__(self, text: str, namespaces: dict[str, str] | None = None):
        self.lexer = Lexer(text)
        self.namespaces = dict(namespaces or {})
        self.current: Token = self.lexer.next_token()

    # -- token plumbing ----------------------------------------------------

    def advance(self) -> Token:
        token = self.current
        self.current = self.lexer.next_token()
        return token

    def error(self, message: str, token: Token | None = None) -> StaticError:
        token = token or self.current
        return StaticError(
            f"{message}, found {token.describe()} "
            f"(line {token.line}, column {token.column})")

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_name(self, *names: str) -> Token:
        if not self.current.is_name(*names):
            expected = " or ".join(repr(n) for n in names)
            raise self.error(f"expected keyword {expected}")
        return self.advance()

    def expect_qname(self) -> str:
        if self.current.type != NAME:
            raise self.error("expected a name")
        return self.advance().value

    def at_end(self) -> bool:
        return self.current.type == EOF

    def _resume_tokens_at(self, pos: int) -> None:
        """Re-enter token mode at character offset *pos*."""
        self.lexer.seek(pos)
        self.current = self.lexer.next_token()

    # -- entry points --------------------------------------------------------

    def parse_expression(self) -> Expr:
        expr = self.parse_expr()
        if not self.at_end():
            raise self.error("unexpected trailing input")
        return expr

    def parse_expr(self) -> Expr:
        items = [self.parse_expr_single()]
        while self.current.is_symbol(","):
            self.advance()
            items.append(self.parse_expr_single())
        if len(items) == 1:
            return items[0]
        return SequenceExpr(items)

    # -- ExprSingle level -----------------------------------------------------

    def parse_expr_single(self) -> Expr:
        token = self.current
        if token.type == NAME:
            if token.value in ("for", "let") and self._next_is_variable():
                return self.parse_flwor()
            if token.value in ("some", "every") and self._next_is_variable():
                return self.parse_quantified()
            if token.value == "if" and self._next_is_symbol("("):
                return self.parse_if()
            if token.value == "do" and self._next_is_name("enqueue", "reset"):
                return self.parse_update_primitive()
            if token.value == "text" and self._next_is_symbol("{"):
                return self.parse_computed_constructor()
            if (token.value in ("element", "attribute")
                    and (self._next_is_symbol("{")
                         or self._next_is_constructor_name())):
                return self.parse_computed_constructor()
        return self.parse_or()

    def _peek(self) -> Token:
        saved_pos = self.lexer.pos
        token = self.lexer.next_token()
        self.lexer.seek(saved_pos)
        return token

    def _next_is_variable(self) -> bool:
        return self._peek().type == VARIABLE

    def _next_is_symbol(self, symbol: str) -> bool:
        return self._peek().is_symbol(symbol)

    def _next_is_name(self, *names: str) -> bool:
        return self._peek().is_name(*names)

    def _next_is_constructor_name(self) -> bool:
        """True for ``element NAME {`` / ``attribute NAME {`` forms."""
        saved_pos = self.lexer.pos
        first = self.lexer.next_token()
        second = self.lexer.next_token()
        self.lexer.seek(saved_pos)
        return first.type == NAME and second.is_symbol("{")

    def parse_flwor(self) -> Expr:
        clauses: list[ForClause | LetClause] = []
        while self.current.is_name("for", "let"):
            keyword = self.advance().value
            while True:
                if self.current.type != VARIABLE:
                    raise self.error("expected a variable binding")
                var = self.advance().value
                if keyword == "for":
                    position_var = None
                    if self.current.is_name("at"):
                        self.advance()
                        if self.current.type != VARIABLE:
                            raise self.error("expected a positional variable")
                        position_var = self.advance().value
                    self.expect_name("in")
                    clauses.append(ForClause(var, position_var,
                                             self.parse_expr_single()))
                else:
                    self.expect_symbol(":=")
                    clauses.append(LetClause(var, self.parse_expr_single()))
                if self.current.is_symbol(","):
                    self.advance()
                    continue
                break

        where = None
        if self.current.is_name("where"):
            self.advance()
            where = self.parse_expr_single()

        order_by: list[OrderSpec] = []
        if self.current.is_name("stable"):
            self.advance()
            self.expect_name("order")
            self.expect_name("by")
            order_by = self.parse_order_specs()
        elif self.current.is_name("order"):
            self.advance()
            self.expect_name("by")
            order_by = self.parse_order_specs()

        # The paper's examples chain `let ... let ... return`; the return
        # keyword is mandatory, as in XQuery.
        self.expect_name("return")
        return FLWORExpr(clauses, where, order_by, self.parse_expr_single())

    def parse_order_specs(self) -> list[OrderSpec]:
        specs = [self.parse_order_spec()]
        while self.current.is_symbol(","):
            self.advance()
            specs.append(self.parse_order_spec())
        return specs

    def parse_order_spec(self) -> OrderSpec:
        key = self.parse_expr_single()
        descending = False
        if self.current.is_name("ascending"):
            self.advance()
        elif self.current.is_name("descending"):
            self.advance()
            descending = True
        empty_least = not descending
        if self.current.is_name("empty"):
            self.advance()
            token = self.expect_name("greatest", "least")
            empty_least = token.value == "least"
        return OrderSpec(key, descending, empty_least)

    def parse_quantified(self) -> Expr:
        quantifier = self.advance().value
        bindings: list[tuple[str, Expr]] = []
        while True:
            if self.current.type != VARIABLE:
                raise self.error("expected a variable binding")
            var = self.advance().value
            self.expect_name("in")
            bindings.append((var, self.parse_expr_single()))
            if self.current.is_symbol(","):
                self.advance()
                continue
            break
        self.expect_name("satisfies")
        return QuantifiedExpr(quantifier, bindings, self.parse_expr_single())

    def parse_if(self) -> Expr:
        self.expect_name("if")
        self.expect_symbol("(")
        condition = self.parse_expr()
        self.expect_symbol(")")
        self.expect_name("then")
        then_branch = self.parse_expr_single()
        else_branch = None
        if self.current.is_name("else"):
            self.advance()
            else_branch = self.parse_expr_single()
        # QML convenience (paper §3.3): the else part may be absent, in
        # which case the rule produces an empty update list.
        return IfExpr(condition, then_branch, else_branch)

    # -- Demaq update primitives ---------------------------------------------

    def parse_update_primitive(self) -> Expr:
        self.expect_name("do")
        keyword = self.expect_name("enqueue", "reset").value
        if keyword == "enqueue":
            message = self.parse_expr_single()
            self.expect_name("into")
            queue = self.expect_qname()
            properties: list[tuple[str, Expr]] = []
            while self.current.is_name("with"):
                self.advance()
                prop = self.expect_qname()
                self.expect_name("value")
                properties.append((prop, self.parse_expr_single()))
            return EnqueueExpr(message, queue, properties)
        # do reset, optionally parameterized
        if self.current.is_symbol("("):
            self.advance()
            if self.current.is_symbol(")"):
                self.advance()
                return ResetExpr()
            slicing = self.expect_qname()
            self.expect_symbol(",")
            key = self.parse_expr_single()
            self.expect_symbol(")")
            return ResetExpr(slicing, key)
        return ResetExpr()

    # -- operator precedence chain ---------------------------------------------

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.current.is_name("or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_comparison()
        while self.current.is_name("and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> Expr:
        left = self.parse_range()
        token = self.current
        if token.type == SYMBOL and token.value in _GENERAL_COMPARISONS:
            self.advance()
            return Comparison(token.value, left, self.parse_range())
        if token.type == NAME and token.value in _VALUE_COMPARISONS:
            # Contextual: `a eq b` is a comparison, a trailing `eq` is not.
            if self._starts_operand(self._peek()):
                self.advance()
                return Comparison(token.value, left, self.parse_range())
        if token.is_name("is"):
            self.advance()
            return Comparison("is", left, self.parse_range())
        if token.is_symbol("<<") or token.is_symbol(">>"):
            self.advance()
            return Comparison(token.value, left, self.parse_range())
        return left

    def _starts_operand(self, token: Token) -> bool:
        if token.type in (NAME, VARIABLE, STRING, INTEGER, DECIMAL, DOUBLE):
            return True
        return token.type == SYMBOL and token.value in (
            "(", "$", "@", "/", "//", ".", "..", "-", "+", "*", "<")

    def parse_range(self) -> Expr:
        left = self.parse_additive()
        if self.current.is_name("to") and self._starts_operand(self._peek()):
            self.advance()
            return BinaryOp("to", left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.current.is_symbol("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_union()
        while True:
            token = self.current
            if token.is_symbol("*"):
                op = "*"
            elif token.type == NAME and token.value in ("div", "idiv", "mod") \
                    and self._starts_operand(self._peek()):
                op = token.value
            else:
                return left
            self.advance()
            left = BinaryOp(op, left, self.parse_union())

    def parse_union(self) -> Expr:
        left = self.parse_intersect()
        while (self.current.is_symbol("|")
               or (self.current.is_name("union")
                   and self._starts_operand(self._peek()))):
            self.advance()
            left = BinaryOp("union", left, self.parse_intersect())
        return left

    def parse_intersect(self) -> Expr:
        left = self.parse_unary()
        while (self.current.type == NAME
               and self.current.value in ("intersect", "except")
               and self._starts_operand(self._peek())):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.current.is_symbol("-", "+"):
            op = self.advance().value
            return UnaryOp(op, self.parse_unary())
        return self.parse_path()

    # -- paths --------------------------------------------------------------

    #: Keywords that, after a lone "/", continue the *enclosing* expression
    #: rather than starting a step named like the keyword.  (The W3C grammar
    #: solves this with the "leading-lone-slash" constraint; an element
    #: really named e.g. `into` is reachable as /child::into.)
    _PATH_TERMINATORS = frozenset({
        "into", "with", "return", "then", "else", "satisfies",
        "ascending", "descending",
    })

    def parse_path(self) -> Expr:
        token = self.current
        if token.is_symbol("/"):
            self.advance()
            if self._can_start_step() and not (
                    self.current.type == NAME
                    and self.current.value in self._PATH_TERMINATORS):
                steps = self._parse_relative_steps()
            else:
                steps = []
            return PathExpr(steps, absolute=True)
        if token.is_symbol("//"):
            self.advance()
            steps: list[Expr] = [
                AxisStep("descendant-or-self", KindTest("node"))]
            steps.extend(self._parse_relative_steps())
            return PathExpr(steps, absolute=True)
        if not self._can_start_step():
            raise self.error("expected an expression")
        steps = self._parse_relative_steps()
        if len(steps) == 1:
            return steps[0]
        return PathExpr(steps, absolute=False)

    def _can_start_step(self) -> bool:
        token = self.current
        if token.type in (NAME, VARIABLE, STRING, INTEGER, DECIMAL, DOUBLE):
            return True
        return token.type == SYMBOL and token.value in (
            "(", "@", ".", "..", "*", "<")

    def _parse_relative_steps(self) -> list[Expr]:
        steps = [self.parse_step()]
        while True:
            if self.current.is_symbol("/"):
                self.advance()
                steps.append(self.parse_step())
            elif self.current.is_symbol("//"):
                self.advance()
                steps.append(AxisStep("descendant-or-self", KindTest("node")))
                steps.append(self.parse_step())
            else:
                return steps

    def parse_step(self) -> Expr:
        token = self.current

        if token.is_symbol(".."):
            self.advance()
            return AxisStep("parent", KindTest("node"),
                            self._parse_predicates())

        if token.is_symbol("@"):
            self.advance()
            test = self.parse_name_test()
            return AxisStep("attribute", test, self._parse_predicates())

        if token.type == NAME and token.value in _AXES \
                and self._next_is_symbol("::"):
            axis = self.advance().value
            self.expect_symbol("::")
            test = self.parse_node_test(axis)
            return AxisStep(axis, test, self._parse_predicates())

        if token.type == NAME and token.value in _KIND_TESTS \
                and self._next_is_symbol("("):
            test = self.parse_kind_test()
            axis = "attribute" if test.kind == "attribute" else "child"
            return AxisStep(axis, test, self._parse_predicates())

        if (token.type == NAME and not self._next_is_symbol("(")) \
                or token.is_symbol("*"):
            test = self.parse_name_test()
            return AxisStep("child", test, self._parse_predicates())

        # Fall through to a primary expression with optional predicates.
        primary = self.parse_primary()
        predicates = self._parse_predicates()
        if predicates:
            return FilterExpr(primary, predicates)
        return primary

    def _parse_predicates(self) -> list[Expr]:
        predicates: list[Expr] = []
        while self.current.is_symbol("["):
            self.advance()
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
        return predicates

    def parse_node_test(self, axis: str) -> NameTest | KindTest:
        if self.current.type == NAME and self.current.value in _KIND_TESTS \
                and self._next_is_symbol("("):
            return self.parse_kind_test()
        return self.parse_name_test()

    def parse_name_test(self) -> NameTest:
        token = self.current
        if token.is_symbol("*"):
            self.advance()
            if self.current.is_symbol(":"):
                # *:local
                self.advance()
                local = self.expect_qname()
                return NameTest(local, any_namespace=True)
            return NameTest(None, any_namespace=True)
        if token.type != NAME:
            raise self.error("expected a name test")
        name = self.advance().value
        if self.current.is_symbol(":") and self._next_is_symbol("*"):
            # prefix:*
            self.advance()
            self.advance()
            uri = self._resolve_prefix(name, token)
            return NameTest(None, uri)
        if ":" in name:
            prefix, local = name.split(":", 1)
            uri = self._resolve_prefix(prefix, token)
            return NameTest(local, uri)
        return NameTest(name, None)

    def _resolve_prefix(self, prefix: str, token: Token) -> str:
        try:
            return self.namespaces[prefix]
        except KeyError:
            raise self.error(f"undeclared namespace prefix {prefix!r}",
                             token) from None

    def parse_kind_test(self) -> KindTest:
        kind = self.advance().value
        self.expect_symbol("(")
        name_test = None
        if not self.current.is_symbol(")"):
            if kind == "processing-instruction":
                if self.current.type in (NAME, STRING):
                    name_test = NameTest(self.advance().value)
                else:
                    raise self.error("expected a PI target")
            elif kind in ("element", "attribute"):
                name_test = self.parse_name_test()
            else:
                raise self.error(f"{kind}() takes no arguments")
        self.expect_symbol(")")
        return KindTest(kind, name_test)

    # -- primaries -------------------------------------------------------------

    def parse_primary(self) -> Expr:
        token = self.current

        if token.type == STRING:
            self.advance()
            return Literal(token.value)
        if token.type == INTEGER:
            self.advance()
            return Literal(int(token.value))
        if token.type == DECIMAL:
            self.advance()
            return Literal(Decimal(token.value))
        if token.type == DOUBLE:
            self.advance()
            return Literal(float(token.value))
        if token.type == VARIABLE:
            self.advance()
            return VarRef(token.value)
        if token.is_symbol("."):
            self.advance()
            return ContextItem()
        if token.is_symbol("("):
            self.advance()
            if self.current.is_symbol(")"):
                self.advance()
                return SequenceExpr([])
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.is_symbol("<"):
            return self.parse_direct_constructor()
        if token.type == NAME and self._next_is_symbol("("):
            return self.parse_function_call()
        raise self.error("expected an expression")

    def parse_function_call(self) -> Expr:
        name = self.advance().value
        self.expect_symbol("(")
        args: list[Expr] = []
        if not self.current.is_symbol(")"):
            args.append(self.parse_expr_single())
            while self.current.is_symbol(","):
                self.advance()
                args.append(self.parse_expr_single())
        self.expect_symbol(")")
        return FunctionCall(name, args)

    def parse_computed_constructor(self) -> Expr:
        kind = self.advance().value
        if kind == "text":
            self.expect_symbol("{")
            content = None if self.current.is_symbol("}") else self.parse_expr()
            self.expect_symbol("}")
            return TextConstructor(content)
        # element {name} {content} — we support the literal-name form
        # `element name {content}` as well.
        if self.current.type == NAME:
            name_expr: QName | Expr = QName(self.advance().value)
        else:
            self.expect_symbol("{")
            name_expr = self.parse_expr()
            self.expect_symbol("}")
        self.expect_symbol("{")
        content = None if self.current.is_symbol("}") else self.parse_expr()
        self.expect_symbol("}")
        if kind == "element":
            return ComputedElementConstructor(name_expr, content)
        return ComputedAttributeConstructor(name_expr, content)

    # -- direct constructors (character-level) ----------------------------------

    def parse_direct_constructor(self) -> Expr:
        start = self.current.start
        element, end_pos = self._scan_element(start)
        self._resume_tokens_at(end_pos)
        return element

    def _char_error(self, message: str, pos: int) -> StaticError:
        line, column = self.lexer.location(pos)
        return StaticError(f"{message} (line {line}, column {column})")

    def _scan_element(self, pos: int) -> tuple[DirectElementConstructor, int]:
        text = self.lexer.text
        if not text.startswith("<", pos):
            raise self._char_error("expected '<'", pos)
        pos += 1
        raw_name, pos = self._scan_xml_name(pos)

        attributes: list[AttributeConstructor] = []
        namespaces: dict[str, str] = {}
        while True:
            while pos < len(text) and text[pos] in " \t\r\n":
                pos += 1
            if pos >= len(text):
                raise self._char_error("unterminated start tag", pos)
            if text.startswith("/>", pos) or text[pos] == ">":
                break
            attr_name, pos = self._scan_xml_name(pos)
            while pos < len(text) and text[pos] in " \t\r\n":
                pos += 1
            if pos >= len(text) or text[pos] != "=":
                raise self._char_error("expected '=' in attribute", pos)
            pos += 1
            while pos < len(text) and text[pos] in " \t\r\n":
                pos += 1
            parts, pos = self._scan_attribute_value(pos)
            if attr_name == "xmlns" or attr_name.startswith("xmlns:"):
                if not all(isinstance(p, str) for p in parts):
                    raise self._char_error(
                        "namespace declarations must be literal", pos)
                uri = "".join(parts)  # type: ignore[arg-type]
                prefix = "" if attr_name == "xmlns" else attr_name[6:]
                namespaces[prefix] = uri
            else:
                attributes.append(
                    AttributeConstructor(self._constructor_qname(attr_name),
                                         parts))

        scope = dict(self.namespaces)
        scope.update({p: u for p, u in namespaces.items() if p})
        name = self._constructor_qname(raw_name, scope,
                                       namespaces.get(""))
        element = DirectElementConstructor(name, attributes, [], namespaces)

        if text.startswith("/>", pos):
            return element, pos + 2
        pos += 1  # consume ">"
        pos = self._scan_content(element, pos, scope, namespaces.get(""))
        # at "</"
        pos += 2
        close_name, pos = self._scan_xml_name(pos)
        if close_name != raw_name:
            raise self._char_error(
                f"mismatched constructor end tag </{close_name}>", pos)
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        if pos >= len(text) or text[pos] != ">":
            raise self._char_error("expected '>'", pos)
        return element, pos + 1

    def _constructor_qname(self, raw: str,
                           scope: dict[str, str] | None = None,
                           default_ns: str | None = None) -> QName:
        scope = scope if scope is not None else self.namespaces
        try:
            return QName.parse(raw, scope, default_ns)
        except ValueError as exc:
            raise StaticError(str(exc)) from None

    def _scan_xml_name(self, pos: int) -> tuple[str, int]:
        text = self.lexer.text
        if pos >= len(text) or text[pos] not in _NAME_START_CHARS:
            raise self._char_error("expected an XML name", pos)
        begin = pos
        while pos < len(text) and text[pos] in _NAME_CHARS:
            pos += 1
        return text[begin:pos], pos

    def _scan_attribute_value(self, pos: int) -> tuple[list, int]:
        text = self.lexer.text
        if pos >= len(text) or text[pos] not in ("'", '"'):
            raise self._char_error("expected a quoted attribute value", pos)
        quote = text[pos]
        pos += 1
        parts: list = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                parts.append("".join(buffer))
                buffer.clear()

        while True:
            if pos >= len(text):
                raise self._char_error("unterminated attribute value", pos)
            char = text[pos]
            if char == quote:
                if text.startswith(quote * 2, pos):
                    buffer.append(quote)
                    pos += 2
                    continue
                flush()
                return parts, pos + 1
            if char == "{":
                if text.startswith("{{", pos):
                    buffer.append("{")
                    pos += 2
                    continue
                flush()
                expr, pos = self._parse_enclosed(pos)
                parts.append(expr)
                continue
            if char == "}":
                if text.startswith("}}", pos):
                    buffer.append("}")
                    pos += 2
                    continue
                raise self._char_error("unescaped '}' in attribute value", pos)
            if char == "&":
                decoded, pos = self._scan_entity(pos)
                buffer.append(decoded)
                continue
            if char == "<":
                raise self._char_error("'<' not allowed in attribute value", pos)
            buffer.append(char)
            pos += 1

    def _scan_entity(self, pos: int) -> tuple[str, int]:
        text = self.lexer.text
        end = text.find(";", pos)
        if end < 0:
            raise self._char_error("unterminated entity reference", pos)
        body = text[pos + 1:end]
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16)), end + 1
            except (ValueError, OverflowError):
                raise self._char_error(f"bad character reference &{body};", pos)
        if body.startswith("#"):
            try:
                return chr(int(body[1:], 10)), end + 1
            except (ValueError, OverflowError):
                raise self._char_error(f"bad character reference &{body};", pos)
        try:
            return _PREDEFINED_ENTITIES[body], end + 1
        except KeyError:
            raise self._char_error(f"unknown entity &{body};", pos) from None

    def _parse_enclosed(self, pos: int) -> tuple[Expr, int]:
        """Parse ``{Expr}`` starting at the ``{``; return (expr, end_pos)."""
        self._resume_tokens_at(pos)
        self.expect_symbol("{")
        expr = self.parse_expr()
        if not self.current.is_symbol("}"):
            raise self.error("expected '}'")
        return expr, self.current.end

    def _scan_content(self, element: DirectElementConstructor, pos: int,
                      scope: dict[str, str], default_ns: str | None) -> int:
        text = self.lexer.text
        buffer: list[str] = []
        significant = False   # entity refs and CDATA defeat ws-stripping

        def flush() -> None:
            nonlocal significant
            if buffer:
                chunk = "".join(buffer)
                # Boundary-whitespace stripping (XQuery 1.0 §3.7.1.4):
                # whitespace-only literal text between constructs is
                # dropped unless it came from references or CDATA.
                if significant or not chunk.isspace():
                    element.content.append(chunk)
                buffer.clear()
            significant = False

        while True:
            if pos >= len(text):
                raise self._char_error(
                    f"unterminated constructor <{element.name}>", pos)
            if text.startswith("</", pos):
                flush()
                return pos
            if text.startswith("<![CDATA[", pos):
                end = text.find("]]>", pos)
                if end < 0:
                    raise self._char_error("unterminated CDATA section", pos)
                buffer.append(text[pos + 9:end])
                significant = True
                pos = end + 3
                continue
            if text.startswith("<!--", pos):
                end = text.find("-->", pos)
                if end < 0:
                    raise self._char_error("unterminated comment", pos)
                flush()
                element.content.append(Literal(_CommentMarker(text[pos + 4:end])))
                pos = end + 3
                continue
            char = text[pos]
            if char == "<":
                flush()
                saved_ns = self.namespaces
                self.namespaces = scope
                try:
                    child, pos = self._scan_element(pos)
                finally:
                    self.namespaces = saved_ns
                element.content.append(child)
                continue
            if char == "{":
                if text.startswith("{{", pos):
                    buffer.append("{")
                    pos += 2
                    continue
                flush()
                expr, pos = self._parse_enclosed(pos)
                element.content.append(expr)
                continue
            if char == "}":
                if text.startswith("}}", pos):
                    buffer.append("}")
                    pos += 2
                    continue
                raise self._char_error("unescaped '}' in element content", pos)
            if char == "&":
                decoded, pos = self._scan_entity(pos)
                buffer.append(decoded)
                significant = True
                continue
            buffer.append(char)
            pos += 1


class _CommentMarker:
    """Wrapper marking a literal comment inside constructor content."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value


def parse_expression(text: str,
                     namespaces: dict[str, str] | None = None) -> Expr:
    """Parse a complete XQuery/QML expression.

    >>> expr = parse_expression("if (//offerRequest) then 1 else 2")
    >>> type(expr).__name__
    'IfExpr'
    """
    return Parser(text, namespaces).parse_expression()
