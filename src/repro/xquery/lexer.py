"""Tokenizer for the XQuery subset (shared with the QDL statement parser).

The lexer is *pull based*: the parser asks for one token at a time and can
reposition the cursor, which is how direct XML constructors are handled —
when the parser decides a ``<`` opens a constructor rather than a
comparison, it rewinds to the token's start offset and switches to
character-level scanning (see :meth:`Lexer.seek`).

Keywords are contextual (as in real XQuery): every keyword is tokenized
as a NAME and the parser decides from context whether ``for`` is a
FLWOR keyword or an element called *for*.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import StaticError

# Token types
EOF = "eof"
NAME = "name"            # possibly-prefixed QName
VARIABLE = "variable"    # $name (value excludes the $)
STRING = "string"
INTEGER = "integer"
DECIMAL = "decimal"
DOUBLE = "double"
SYMBOL = "symbol"

#: Multi-character operators, longest first so maximal munch works.
_SYMBOLS = [
    "(#", "#)", ":=", "::", "!=", "<=", ">=", "<<", ">>", "//", "..",
    "(", ")", "[", "]", "{", "}", ",", ";", "$", "@", "|", "+", "-",
    "*", "/", "=", "<", ">", ".", "?", ":",
]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_DIGITS = set("0123456789")


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    start: int
    end: int
    line: int
    column: int

    def is_name(self, *names: str) -> bool:
        return self.type == NAME and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.type == SYMBOL and self.value in symbols

    def describe(self) -> str:
        if self.type == EOF:
            return "end of input"
        return f"{self.type} {self.value!r}"


class Lexer:
    """Tokenizes *text* on demand from the current cursor position."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low level --------------------------------------------------------

    def location(self, pos: int) -> tuple[int, int]:
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        return line, pos - last_nl

    def error(self, message: str, pos: int | None = None) -> StaticError:
        line, column = self.location(self.pos if pos is None else pos)
        return StaticError(f"{message} (line {line}, column {column})")

    def seek(self, pos: int) -> None:
        """Reposition the cursor (used for constructor rescans)."""
        self.pos = pos

    def skip_ignorable(self) -> None:
        """Skip whitespace and (nestable) ``(: … :)`` comments."""
        text = self.text
        while self.pos < len(text):
            char = text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif text.startswith("(:", self.pos):
                depth = 1
                self.pos += 2
                while self.pos < len(text) and depth:
                    if text.startswith("(:", self.pos):
                        depth += 1
                        self.pos += 2
                    elif text.startswith(":)", self.pos):
                        depth -= 1
                        self.pos += 2
                    else:
                        self.pos += 1
                if depth:
                    raise self.error("unterminated comment")
            else:
                return

    # -- tokenization -------------------------------------------------------

    def next_token(self) -> Token:
        self.skip_ignorable()
        start = self.pos
        line, column = self.location(start)
        text = self.text

        def make(type_: str, value: str) -> Token:
            return Token(type_, value, start, self.pos, line, column)

        if start >= len(text):
            return make(EOF, "")

        char = text[start]

        if char == "$":
            self.pos += 1
            name = self._read_qname()
            if name is None:
                raise self.error("expected a variable name after '$'")
            return make(VARIABLE, name)

        if char in ("'", '"'):
            return make(STRING, self._read_string(char))

        if char in _DIGITS or (char == "." and start + 1 < len(text)
                               and text[start + 1] in _DIGITS):
            return self._read_number(make)

        if char in _NAME_START:
            name = self._read_qname()
            return make(NAME, name)

        for symbol in _SYMBOLS:
            if text.startswith(symbol, start):
                self.pos = start + len(symbol)
                return make(SYMBOL, symbol)

        raise self.error(f"unexpected character {char!r}")

    def _read_qname(self) -> str | None:
        text = self.text
        if self.pos >= len(text) or text[self.pos] not in _NAME_START:
            return None
        begin = self.pos
        self.pos += 1
        while self.pos < len(text) and text[self.pos] in _NAME_CHARS:
            self.pos += 1
        # NCName must not end with '.' or '-' (they'd belong to an operator).
        while text[self.pos - 1] in ".-":
            self.pos -= 1
        name = text[begin:self.pos]
        # Optional prefix, but not '::' (axis) and not 'Q{'-style.
        if (self.pos < len(text) and text[self.pos] == ":"
                and self.pos + 1 < len(text) and text[self.pos + 1] in _NAME_START
                and not text.startswith("::", self.pos)):
            self.pos += 1
            rest = self._read_qname()
            if rest is None:  # pragma: no cover - guarded by the check above
                raise self.error("malformed QName")
            name = f"{name}:{rest}"
        return name

    def _read_string(self, quote: str) -> str:
        text = self.text
        self.pos += 1
        parts: list[str] = []
        while True:
            if self.pos >= len(text):
                raise self.error("unterminated string literal")
            char = text[self.pos]
            if char == quote:
                if text.startswith(quote * 2, self.pos):
                    parts.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return "".join(parts)
            if char == "&":
                self.pos += 1
                parts.append(self._read_entity())
                continue
            parts.append(char)
            self.pos += 1

    def _read_entity(self) -> str:
        from ..xmldm.parser import _PREDEFINED_ENTITIES
        text = self.text
        end = text.find(";", self.pos)
        if end < 0:
            raise self.error("unterminated entity reference")
        body = text[self.pos:end]
        self.pos = end + 1
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};")
        if body.startswith("#"):
            try:
                return chr(int(body[1:], 10))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};")
        try:
            return _PREDEFINED_ENTITIES[body]
        except KeyError:
            raise self.error(f"unknown entity &{body};") from None

    def _read_number(self, make) -> Token:
        text = self.text
        begin = self.pos
        seen_dot = False
        seen_exp = False
        while self.pos < len(text):
            char = text[self.pos]
            if char in _DIGITS:
                self.pos += 1
            elif char == "." and not seen_dot and not seen_exp:
                # ".." is the parent-axis abbreviation, not a decimal point.
                if text.startswith("..", self.pos):
                    break
                seen_dot = True
                self.pos += 1
            elif char in "eE" and not seen_exp:
                lookahead = self.pos + 1
                if lookahead < len(text) and text[lookahead] in "+-":
                    lookahead += 1
                if lookahead < len(text) and text[lookahead] in _DIGITS:
                    seen_exp = True
                    self.pos = lookahead + 1
                else:
                    break
            else:
                break
        literal = text[begin:self.pos]
        if seen_exp:
            return make(DOUBLE, literal)
        if seen_dot:
            return make(DECIMAL, literal)
        return make(INTEGER, literal)
