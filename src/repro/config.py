"""The typed runtime configuration: every ``DEMAQ_*`` switch, one place.

Before this module the runtime read 16+ environment variables from ten
different call sites — the worker process re-derived its behaviour from
``os.environ`` instead of inheriting explicit configuration, and the
README's switch table drifted from the code.  :class:`RuntimeConfig` is
the declarative registry: one frozen dataclass field per switch, each
carrying its environment variable, parser, default, and one-line doc in
the field metadata.

Three consumption patterns:

* :meth:`RuntimeConfig.from_env` — parse the full environment into one
  validated config object (the coordinator does this once and ships the
  result to workers as JSON);
* :func:`read_field` — the lazy single-field read the library call
  sites use (``read_field("mvcc")``).  It honours an installed config
  first and falls back to a fresh environment parse, so per-test
  ``monkeypatch.setenv`` keeps working in-process;
* :func:`install` — pin an explicit config for this process.  The
  worker installs the coordinator-shipped config at boot, making the
  process's effective configuration explicit instead of ambient.

``render_env_table()`` generates the README's switch table from the
registry, and ``tests/test_config.py`` asserts the README matches it —
the docs cannot drift again.  The same test greps the source tree: no
``os.environ.get("DEMAQ_`` is allowed outside this module (bench/test
harness gates excepted).

This module is a leaf: it imports only the standard library, so every
subsystem (obs, storage, replication, xquery) can read it without
import cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Callable

#: Group-commit durability policies (mirrors storage.groupcommit.POLICIES;
#: duplicated here because config must stay import-cycle-free).
_DURABILITY_POLICIES = ("", "sync", "group", "async", "replica-ack")

#: Accepted XQuery backend spellings (mirrors xquery._BACKEND_ALIASES).
_XQUERY_BACKENDS = ("interp", "interpreter", "interpreted",
                    "compiled", "closure", "closures")

_FALSE_WORDS = ("0", "false", "no", "off")


def _parse_bool(raw: str) -> bool:
    return raw.strip().lower() not in _FALSE_WORDS


def _parse_int(raw: str) -> int:
    return int(raw)


def _parse_float(raw: str) -> float:
    return float(raw)


def _parse_str(raw: str) -> str:
    return raw


def _cfg(default, env: str, doc: str, parse: Callable[[str], object],
         validate: Callable[[object], bool] | None = None,
         table_default: str | None = None):
    """One registry entry: a dataclass field with its env-var metadata."""
    return field(default=default, metadata={
        "env": env, "doc": doc, "parse": parse, "validate": validate,
        "table_default": table_default})


@dataclass(frozen=True)
class RuntimeConfig:
    """Every runtime switch, typed and validated.

    Field order is documentation order: storage semantics first, then
    engine, telemetry, replication, transport/chaos, the checkpoint and
    truncation lifecycle, and finally the harness gates.
    """

    mvcc: bool = _cfg(
        True, "DEMAQ_MVCC",
        "Snapshot (MVCC) reads on the scan/correlation path: rule reads "
        "run lock-free at a begin-time snapshot LSN (DESIGN.md §8). `0` "
        "falls back to the 2PL reference path with read locks; CI runs "
        "tier-1 under both.", _parse_bool)
    durability: str = _cfg(
        "", "DEMAQ_DURABILITY",
        "Commit pipeline: `sync` (force per commit), `group` "
        "(leader-coalesced force), `async` (acknowledge before force), "
        "`replica-ack` (acknowledge once one replica holds the commit in "
        "memory, fsync deferred; falls back to an inline force without a "
        "live replica — DESIGN.md §9). Empty: derived from the server's "
        "`sync_commits` flag (`sync`).", _parse_str,
        validate=lambda v: v in _DURABILITY_POLICIES,
        table_default="`sync`")
    batch_size: int = _cfg(
        1, "DEMAQ_BATCH_SIZE",
        "Scheduler picks per chained, group-committed transaction "
        "(§3.1 batching).", _parse_int, validate=lambda v: v >= 1)
    lock_timeout: float = _cfg(
        10.0, "DEMAQ_LOCK_TIMEOUT",
        "Seconds a blocked lock acquisition waits before the member is "
        "rolled back and retried.", _parse_float,
        validate=lambda v: v > 0)
    retry_backoff: float = _cfg(
        0.002, "DEMAQ_RETRY_BACKOFF",
        "Base seconds of the full-jitter exponential backoff before a "
        "deadlocked/timed-out member requeues (doubles per consecutive "
        "failure, capped at 50 ms); `0` disables.", _parse_float,
        validate=lambda v: v >= 0)
    xquery_backend: str = _cfg(
        "compiled", "DEMAQ_XQUERY_BACKEND",
        "`interp` selects the tree-walking reference interpreter on the "
        "rule hot path.", _parse_str,
        validate=lambda v: v.strip().lower() in _XQUERY_BACKENDS)
    obs: bool = _cfg(
        True, "DEMAQ_OBS",
        "`0` disables histograms/tracing; semantic counters stay live "
        "(overhead bound asserted by `benchmarks/bench_obs.py`).",
        _parse_bool)
    log_level: str = _cfg(
        "INFO", "DEMAQ_LOG_LEVEL",
        "Verbosity of the structured JSON worker logs.", _parse_str)
    replication: bool = _cfg(
        False, "DEMAQ_REPLICATION",
        "`1` turns on WAL-shipping shard replication with automatic "
        "replica promotion on worker crash (DESIGN.md §9); the "
        "unreplicated path is the default.", _parse_bool,
        table_default="off")
    replica_count: int = _cfg(
        1, "DEMAQ_REPLICA_COUNT",
        "Ring-successor replicas each shard streams its WAL to when "
        "replication is on.", _parse_int, validate=lambda v: v >= 0)
    connect_retries: int = _cfg(
        3, "DEMAQ_CONNECT_RETRIES",
        "Refused-connect dial attempts before a send maps to "
        "`disconnectedTransport` (covers the boot/failover window where "
        "a listener is milliseconds away).", _parse_int,
        validate=lambda v: v >= 1)
    connect_backoff: float = _cfg(
        0.01, "DEMAQ_CONNECT_BACKOFF",
        "Base seconds of the full-jitter backoff between connect "
        "retries (capped at 80 ms).", _parse_float,
        validate=lambda v: v >= 0)
    chaos_drop: int = _cfg(
        0, "DEMAQ_CHAOS_DROP",
        "Deterministic fault injection on the socket transport: the "
        "first N outbound frames are dropped.", _parse_int,
        validate=lambda v: v >= 0)
    chaos_dup: int = _cfg(
        0, "DEMAQ_CHAOS_DUP",
        "Chaos budget: the next N outbound frames are duplicated.",
        _parse_int, validate=lambda v: v >= 0)
    chaos_delay: int = _cfg(
        0, "DEMAQ_CHAOS_DELAY",
        "Chaos budget: the next N outbound frames are delayed "
        "(reordered past later frames).", _parse_int,
        validate=lambda v: v >= 0)
    chaos_delay_seconds: float = _cfg(
        0.01, "DEMAQ_CHAOS_DELAY_SECONDS",
        "How late a chaos-delayed frame is written.", _parse_float,
        validate=lambda v: v >= 0)
    checkpoint_interval_bytes: int = _cfg(
        0, "DEMAQ_CHECKPOINT_BYTES",
        "Fuzzy-checkpoint trigger: checkpoint once this many WAL bytes "
        "accumulate since the last one (DESIGN.md §10). `0` disables "
        "the byte trigger.", _parse_int, validate=lambda v: v >= 0)
    checkpoint_interval_seconds: float = _cfg(
        0.0, "DEMAQ_CHECKPOINT_SECONDS",
        "Fuzzy-checkpoint trigger: checkpoint once this much wall-clock "
        "time passes since the last one. `0` disables the clock "
        "trigger.", _parse_float, validate=lambda v: v >= 0)
    wal_ceiling_bytes: int = _cfg(
        0, "DEMAQ_WAL_CEILING_BYTES",
        "Hard WAL size target: when the live log exceeds this, the "
        "scheduler checkpoints and force-truncates even past a lagging "
        "replica's ack horizon (the replica re-seeds from checkpoint). "
        "`0` disables the ceiling.", _parse_int,
        validate=lambda v: v >= 0)
    wal_truncate: bool = _cfg(
        True, "DEMAQ_WAL_TRUNCATE",
        "Whether scheduled checkpoints also truncate the WAL prefix "
        "below the checkpoint/replica/snapshot horizon (DESIGN.md §10). "
        "Explicit `truncate_wal()` calls ignore this.", _parse_bool)
    net_tests: bool = _cfg(
        False, "DEMAQ_NET_TESTS",
        "`1` opens the real-socket test gate (`tests/netio`).",
        _parse_bool, table_default="off")
    bench_smoke: bool = _cfg(
        False, "DEMAQ_BENCH_SMOKE",
        "`1` shrinks benchmark workloads and downgrades timing-shape "
        "assertions to warnings (CI).", _parse_bool, table_default="off")

    def __post_init__(self):
        for spec in fields(self):
            value = getattr(self, spec.name)
            expected = {_parse_bool: bool, _parse_int: int,
                        _parse_float: float, _parse_str: str}[
                            spec.metadata["parse"]]
            if expected is float and isinstance(value, int) \
                    and not isinstance(value, bool):
                object.__setattr__(self, spec.name, float(value))
                value = float(value)
            if not isinstance(value, expected) \
                    or (expected is int and isinstance(value, bool)):
                raise ConfigError(
                    f"{spec.name} must be {expected.__name__}, "
                    f"got {value!r}")
            validate = spec.metadata["validate"]
            if validate is not None and not validate(value):
                raise ConfigError(
                    f"invalid value for {spec.name} "
                    f"({spec.metadata['env']}): {value!r}")

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_env(cls, environ=None) -> "RuntimeConfig":
        """Parse the full environment into one validated config.

        Unset/empty variables take the registry default.  Parsed fresh
        on every call (no import-time caching), so tests that
        monkeypatch the environment see their values.
        """
        environ = os.environ if environ is None else environ
        values = {}
        for spec in fields(cls):
            raw = environ.get(spec.metadata["env"], "")
            if raw != "":
                try:
                    values[spec.name] = spec.metadata["parse"](raw)
                except (TypeError, ValueError) as exc:
                    raise ConfigError(
                        f"cannot parse {spec.metadata['env']}={raw!r} "
                        f"for {spec.name}: {exc}") from exc
        return cls(**values)

    @classmethod
    def from_json(cls, data: dict) -> "RuntimeConfig":
        """Rebuild a config shipped as JSON (worker boot config)."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown config fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> dict:
        """A plain JSON-safe dict (the worker boot-config payload)."""
        return {spec.name: getattr(self, spec.name)
                for spec in fields(self)}

    # -- documentation ---------------------------------------------------------

    @classmethod
    def render_env_table(cls) -> str:
        """The README switch table, generated from the registry."""
        lines = ["| Variable | Default | Effect |", "|---|---|---|"]
        for spec in fields(cls):
            shown = spec.metadata["table_default"]
            if shown is None:
                default = spec.default
                if isinstance(default, bool):
                    shown = f"`{'1' if default else '0'}`"
                elif isinstance(default, float) and default == int(default) \
                        and default != 0:
                    shown = f"`{default}`"
                else:
                    shown = f"`{default}`"
            doc = " ".join(spec.metadata["doc"].split())
            lines.append(f"| `{spec.metadata['env']}` | {shown} | {doc} |")
        return "\n".join(lines) + "\n"


class ConfigError(ValueError):
    """An invalid runtime-configuration value."""


#: The per-process installed config (explicit beats ambient); None means
#: read_field/active parse the environment lazily.
_INSTALLED: RuntimeConfig | None = None


def install(config: RuntimeConfig | None) -> None:
    """Pin *config* as this process's effective configuration.

    The worker process installs the coordinator-shipped config at boot
    so its behaviour comes from explicit configuration, not from
    whatever environment it happened to inherit.  ``install(None)``
    reverts to lazy environment reads.
    """
    global _INSTALLED
    _INSTALLED = config


def active() -> RuntimeConfig:
    """The effective config: the installed one, else a fresh env parse."""
    if _INSTALLED is not None:
        return _INSTALLED
    return RuntimeConfig.from_env()


_FIELD_INDEX = {spec.name: spec for spec in fields(RuntimeConfig)}


def read_field(name: str):
    """One field's effective value — the lazy library-call-site read.

    Honours an installed config; otherwise parses just this field's
    environment variable (fresh per call, monkeypatch-friendly).
    """
    spec = _FIELD_INDEX[name]
    if _INSTALLED is not None:
        return getattr(_INSTALLED, name)
    raw = os.environ.get(spec.metadata["env"], "")
    if raw == "":
        return spec.default
    try:
        return spec.metadata["parse"](raw)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"cannot parse {spec.metadata['env']}={raw!r} "
            f"for {name}: {exc}") from exc


def env_var(name: str) -> str:
    """The environment variable backing a config field."""
    return _FIELD_INDEX[name].metadata["env"]
