"""Group commit: coalescing WAL forces across transactions.

The paper's execution model is one message, one transaction (§3.1), and
the literal implementation pays one ``os.fsync`` per processed message —
the dominant cost on the durable-store path once rule evaluation is
compiled.  The classic fix is to decouple *committing* (appending the
COMMIT record) from *forcing* (fsyncing the log): commits publish the
LSN they need durable to a coordinator that issues one force covering
every pending commit, then wakes all waiters the force covered.  The
WAL is prefix-durable — one force makes every earlier record durable —
so coalescing never reorders durability.

Three policies, selected via ``MessageStore(durability=...)`` or the
``DEMAQ_DURABILITY`` environment variable:

* ``sync`` — the pre-group-commit behavior: every commit forces the log
  inline before acknowledging.  One fsync per transaction.
* ``group`` — leader-committer group commit: the first committer to
  arrive becomes the leader and forces the log itself (no thread
  handoff on an uncontended path); committers arriving while the
  leader's fsync is in flight wait and are covered by the leader's
  force or elect the next leader.  A waiter never waits longer than
  ``max_wait``: past the bound it forces inline, so a stalled leader
  delays an acknowledgement by at most ``max_wait`` seconds.
* ``async`` — commits acknowledge immediately and a background flusher
  thread forces the tail; a crash loses at most the unforced log tail
  (which torn-tail truncation discards cleanly on recovery).
* ``replica-ack`` — the replication policy (DESIGN.md §9): the commit
  acknowledges once at least one WAL-shipping replica holds the record
  in memory, and the *local* fsync is deferred to the async flusher.
  Durability becomes "on two nodes" instead of "on this disk" — a
  single-node crash loses nothing acknowledged, and the acknowledgement
  can beat a local fsync.  With no attached shipper, no live replica,
  or a fenced epoch, every commit falls back to an inline force, so the
  policy is never weaker than ``sync`` on a lone node.

A coordinator optionally carries a ``shipper`` (attached by the worker
when replication is on): every committed LSN is offered to it under
*all* policies so replicas stream continuously, but only ``replica-ack``
blocks on the acknowledgement.  ``commit_hook`` is the fault-injection
seam: it fires after the COMMIT record is appended and *before* any
force — exactly the torn-tail window the chaos harness SIGKILLs in.
"""

from __future__ import annotations

import threading
import time

from .errors import StorageError
from .wal import WriteAheadLog

POLICIES = ("sync", "group", "async", "replica-ack")

#: How long an idle async flusher thread lingers before exiting (it
#: restarts on the next commit); bounds thread buildup across many
#: short-lived stores in one process.
_IDLE_EXIT = 0.5


class GroupCommitStatistics:
    """Counters the benchmarks and tests read."""

    def __init__(self) -> None:
        self.commits = 0            # commit() calls that reached the policy
        self.group_waits = 0        # times a committer waited on a leader
        self.leader_forces = 0      # forces issued by a group leader
        self.inline_forces = 0      # sync forces + max_wait bailouts
        self.background_forces = 0  # forces issued by the async flusher
        self.replica_acks = 0       # commits acknowledged by a replica
        self.replica_ack_fallbacks = 0  # replica-ack commits forced inline


class GroupCommitCoordinator:
    """Coalesces commit forces for one WAL under a durability policy."""

    def __init__(self, wal: WriteAheadLog, policy: str = "sync",
                 max_wait: float = 0.05):
        if policy not in POLICIES:
            raise StorageError(
                f"unknown durability policy {policy!r} "
                f"(expected one of {', '.join(POLICIES)})")
        self.wal = wal
        self.policy = policy
        self.max_wait = max_wait
        self.stats = GroupCommitStatistics()
        self._cond = threading.Condition()
        self._requested_lsn = 0
        self._leader_active = False
        self._thread: threading.Thread | None = None
        self._closed = False
        self._paused = False
        #: WAL shipper attached by the worker when replication is on;
        #: consulted on every commit (see module docstring).
        self.shipper = None
        #: Fault-injection hook: called with the commit LSN after the
        #: COMMIT append, before any force (chaos kill point).
        self.commit_hook = None
        #: How long a replica-ack commit waits for an acknowledgement
        #: before falling back to an inline force.
        self.replica_ack_wait = 0.25

    # -- the commit-side API ----------------------------------------------------

    def commit(self, lsn: int) -> None:
        """Make the log durable through *lsn* under the active policy.

        ``sync`` forces inline; ``group`` coalesces through a leader
        committer (waits bounded by ``max_wait``); ``async`` publishes
        to the background flusher and returns.
        """
        # Counters are read by benchmarks/tests while committer threads
        # run; all mutations happen under the condition lock so they
        # never tear (the WAL's own counters are guarded the same way).
        with self._cond:
            self.stats.commits += 1
        hook = self.commit_hook
        if hook is not None:
            hook(lsn)
        shipper = self.shipper
        if shipper is not None:
            try:
                shipper.ship(lsn)
            except Exception:   # shipping must never break local commit
                shipper = None
        if self.policy == "replica-ack":
            self._commit_replica_ack(lsn, shipper)
            return
        if self.policy == "sync":
            self.wal.flush_to(lsn)
            with self._cond:
                self.stats.inline_forces += 1
            return
        if self.policy == "async":
            with self._cond:
                if self._closed:
                    raise StorageError("group-commit coordinator is closed")
                if lsn > self._requested_lsn:
                    self._requested_lsn = lsn
                self._ensure_flusher()
                self._cond.notify_all()
            return
        self._commit_group(lsn)

    def _commit_replica_ack(self, lsn: int, shipper) -> None:
        """Ack once a replica holds *lsn*; defer the local force.

        The deferred force rides the async flusher so the local disk
        still catches up promptly — ``replica-ack`` changes *when the
        caller is released*, not whether the log gets forced.
        """
        if shipper is not None and shipper.await_acked(
                lsn, self.replica_ack_wait):
            with self._cond:
                self.stats.replica_acks += 1
                if not self._closed:
                    if lsn > self._requested_lsn:
                        self._requested_lsn = lsn
                    self._ensure_flusher()
                    self._cond.notify_all()
                    return
        # No shipper, no replica, fenced, or the ack timed out: never
        # be weaker than sync — force inline before acknowledging.
        self.wal.flush_to(lsn)
        with self._cond:
            self.stats.inline_forces += 1
            self.stats.replica_ack_fallbacks += 1

    def _commit_group(self, lsn: int) -> None:
        deadline = time.monotonic() + self.max_wait
        while True:
            lead = False
            with self._cond:
                if lsn > self._requested_lsn:
                    self._requested_lsn = lsn
                if self.wal.flushed_lsn >= lsn:
                    return
                if not self._leader_active and not self._paused:
                    self._leader_active = True
                    lead = True
                elif not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining > 0:
                        self.stats.group_waits += 1
                        self._cond.wait(remaining)
                        continue
            if lead:
                try:
                    with self._cond:
                        target = max(self._requested_lsn, lsn)
                    # Force outside the condition: committers arriving
                    # during the fsync enqueue behind it — they *are*
                    # the next group.
                    self.wal.flush_to(target)
                finally:
                    with self._cond:
                        self.stats.leader_forces += 1
                        self._leader_active = False
                        self._cond.notify_all()
                if self.wal.flushed_lsn >= lsn:
                    return
                continue
            # Latency bound: no coalesced force arrived within max_wait
            # (or the coordinator closed/paused mid-wait) — force inline.
            self.wal.flush_to(lsn)
            with self._cond:
                self.stats.inline_forces += 1
            return

    def drain(self) -> None:
        """Block until every published commit LSN is durable."""
        with self._cond:
            target = self._requested_lsn
        if target > self.wal.flushed_lsn:
            self.wal.flush_to(target)
        with self._cond:
            self._cond.notify_all()

    # -- test hooks --------------------------------------------------------------

    def pause(self) -> None:
        """Suspend coalesced forcing (crash tests stage unforced tails)."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def pending_lsn(self) -> int:
        """Highest LSN a commit has requested durable so far."""
        with self._cond:
            return self._requested_lsn

    # -- the async flusher thread ------------------------------------------------

    def _ensure_flusher(self) -> None:
        # Called with the condition held.
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="demaq-wal-flusher", daemon=True)
            self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                fired = self._cond.wait_for(
                    lambda: self._closed
                    or (not self._paused
                        and self._requested_lsn > self.wal.flushed_lsn),
                    timeout=_IDLE_EXIT)
                if self._closed:
                    return
                if not fired:
                    # Idle too long: exit; a later commit restarts us.
                    self._thread = None
                    return
                target = self._requested_lsn
            self.wal.flush_to(target)
            with self._cond:
                self.stats.background_forces += 1
                self._cond.notify_all()

    # -- lifecycle ----------------------------------------------------------------

    def close(self, flush: bool = True) -> None:
        """Stop the coordinator; by default force any pending tail first.

        ``flush=False`` abandons the unforced tail — the crash path
        (``MessageStore.simulate_crash``) uses it so a background force
        cannot race the simulated power cut.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join()
        if flush:
            with self._cond:
                target = self._requested_lsn
            if target > self.wal.flushed_lsn:
                self.wal.flush_to(target)
