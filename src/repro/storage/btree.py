"""A B+-tree with real node mechanics (splits, merges, range scans).

Used for the materialized slice index and the per-queue message index —
the paper (§4.3) proposes exactly this: "similar to the materialized
views concept in RDBMSs, it is possible to maintain a physical
representation of the slices, for example using a B-Tree indexed by the
slice key".

Keys are tuples of ints/strings compared lexicographically (mixed-type
positions are ordered type-first so comparisons are total).  The tree is
memory-resident and serialized wholesale at checkpoints; recovery rebuilds
it from the checkpoint plus the WAL tail (see DESIGN.md substitution
table).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

DEFAULT_ORDER = 32

Key = tuple


def _norm(key: Key) -> tuple:
    """Make mixed int/str keys totally ordered: (type_rank, value) pairs."""
    out = []
    for part in key:
        if isinstance(part, bool):
            out.append((0, int(part)))
        elif isinstance(part, (int, float)):
            out.append((0, part))
        else:
            out.append((1, str(part)))
    return tuple(out)


class _Node:
    __slots__ = ("keys", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.keys: list[tuple] = []
        self.is_leaf = is_leaf


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self):
        super().__init__(True)
        self.values: list[Any] = []
        self.next: Optional[_Leaf] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self):
        super().__init__(False)
        self.children: list[_Node] = []


class BPlusTree:
    """Map from tuple keys to single values with ordered iteration."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("B+-tree order must be at least 4")
        self.order = order
        self._root: _Node = _Leaf()
        self._size = 0
        self.node_splits = 0
        self.node_merges = 0

    def __len__(self) -> int:
        return self._size

    # -- search ---------------------------------------------------------------

    def _find_leaf(self, nkey: tuple) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            index = _upper_bound(node.keys, nkey)
            node = node.children[index]
        return node  # type: ignore[return-value]

    def get(self, key: Key, default=None):
        nkey = _norm(key)
        leaf = self._find_leaf(nkey)
        index = _lower_bound(leaf.keys, nkey)
        if index < len(leaf.keys) and leaf.keys[index] == nkey:
            return leaf.values[index]
        return default

    def __contains__(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- insertion ----------------------------------------------------------------

    def insert(self, key: Key, value) -> None:
        """Insert or overwrite."""
        nkey = _norm(key)
        split = self._insert(self._root, nkey, value)
        if split is not None:
            separator, right = split
            root = _Internal()
            root.keys = [separator]
            root.children = [self._root, right]
            self._root = root

    def _insert(self, node: _Node, nkey: tuple, value):
        if node.is_leaf:
            leaf: _Leaf = node  # type: ignore[assignment]
            index = _lower_bound(leaf.keys, nkey)
            if index < len(leaf.keys) and leaf.keys[index] == nkey:
                leaf.values[index] = value
                return None
            leaf.keys.insert(index, nkey)
            leaf.values.insert(index, value)
            self._size += 1
            if len(leaf.keys) > self.order:
                return self._split_leaf(leaf)
            return None
        internal: _Internal = node  # type: ignore[assignment]
        index = _upper_bound(internal.keys, nkey)
        split = self._insert(internal.children[index], nkey, value)
        if split is None:
            return None
        separator, right = split
        internal.keys.insert(index, separator)
        internal.children.insert(index + 1, right)
        if len(internal.children) > self.order:
            return self._split_internal(internal)
        return None

    def _split_leaf(self, leaf: _Leaf):
        self.node_splits += 1
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        self.node_splits += 1
        mid = len(node.children) // 2
        right = _Internal()
        separator = node.keys[mid - 1]
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[:mid - 1]
        node.children = node.children[:mid]
        return separator, right

    # -- deletion -------------------------------------------------------------------

    def delete(self, key: Key) -> bool:
        """Remove *key*; returns False if absent.

        Rebalancing is lazy (underflowed nodes are merged when a sibling
        can absorb them); the root collapses when it has one child.
        """
        nkey = _norm(key)
        removed = self._delete(self._root, nkey)
        if removed:
            self._size -= 1
            while (not self._root.is_leaf
                   and len(self._root.children) == 1):  # type: ignore[attr-defined]
                self._root = self._root.children[0]  # type: ignore[attr-defined]
        return removed

    def _delete(self, node: _Node, nkey: tuple) -> bool:
        if node.is_leaf:
            leaf: _Leaf = node  # type: ignore[assignment]
            index = _lower_bound(leaf.keys, nkey)
            if index < len(leaf.keys) and leaf.keys[index] == nkey:
                leaf.keys.pop(index)
                leaf.values.pop(index)
                return True
            return False
        internal: _Internal = node  # type: ignore[assignment]
        index = _upper_bound(internal.keys, nkey)
        removed = self._delete(internal.children[index], nkey)
        if removed:
            self._maybe_merge(internal, index)
        return removed

    def _maybe_merge(self, parent: _Internal, index: int) -> None:
        child = parent.children[index]
        if child.is_leaf:
            min_fill = max(1, self.order // 4)
            size = len(child.keys)
        else:
            # Internal nodes underflow below two children so degenerate
            # single-child chains always merge away.
            min_fill = max(2, self.order // 4)
            size = len(child.children)
        if size >= min_fill:
            return
        sibling_index = index - 1 if index > 0 else index + 1
        if not 0 <= sibling_index < len(parent.children):
            return
        left_index = min(index, sibling_index)
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if left.is_leaf != right.is_leaf:
            return
        combined = (len(left.keys) + len(right.keys) if left.is_leaf
                    else len(left.children) + len(right.children))
        if combined > self.order:
            self._redistribute(parent, left_index, left, right,
                               underflow_on_left=(child is left))
            return
        self.node_merges += 1
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)           # type: ignore[attr-defined]
            left.next = right.next                      # type: ignore[attr-defined]
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)        # type: ignore[attr-defined]
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    def _redistribute(self, parent: _Internal, left_index: int,
                      left: _Node, right: _Node,
                      underflow_on_left: bool) -> None:
        """Borrow one entry from the bigger sibling into the underflowed one."""
        if left.is_leaf:
            if underflow_on_left and right.keys:
                left.keys.append(right.keys.pop(0))
                left.values.append(right.values.pop(0))    # type: ignore[attr-defined]
            elif not underflow_on_left and left.keys:
                right.keys.insert(0, left.keys.pop())
                right.values.insert(0, left.values.pop())  # type: ignore[attr-defined]
            if right.keys:
                parent.keys[left_index] = right.keys[0]
            return
        if underflow_on_left and right.children:               # type: ignore[attr-defined]
            left.keys.append(parent.keys[left_index])
            parent.keys[left_index] = right.keys.pop(0)
            left.children.append(right.children.pop(0))        # type: ignore[attr-defined]
        elif not underflow_on_left and left.children:           # type: ignore[attr-defined]
            right.keys.insert(0, parent.keys[left_index])
            parent.keys[left_index] = left.keys.pop()
            right.children.insert(0, left.children.pop())       # type: ignore[attr-defined]

    # -- scans -------------------------------------------------------------------------

    def items(self, low: Key | None = None,
              high: Key | None = None) -> Iterator[tuple[tuple, Any]]:
        """Yield (normalized_key, value) for low ≤ key < high, in order."""
        nlow = _norm(low) if low is not None else None
        nhigh = _norm(high) if high is not None else None
        leaf = self._find_leaf(nlow) if nlow is not None else self._leftmost()
        index = _lower_bound(leaf.keys, nlow) if nlow is not None else 0
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if nhigh is not None and key >= nhigh:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def prefix_items(self, prefix: Key) -> Iterator[tuple[tuple, Any]]:
        """All entries whose key starts with *prefix* (tuple-prefix scan)."""
        nprefix = _norm(prefix)
        leaf = self._find_leaf(nprefix)
        index = _lower_bound(leaf.keys, nprefix)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key[:len(nprefix)] != nprefix:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def _leftmost(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            depth += 1
        return depth

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        leaves: list[_Leaf] = []
        self._check_node(self._root, None, None, leaves,
                         self._height(self._root))
        chained = []
        leaf = self._leftmost()
        while leaf is not None:
            chained.append(leaf)
            leaf = leaf.next
        assert leaves == chained, "leaf chain does not match tree order"
        keys = [k for leaf in leaves for k in leaf.keys]
        assert keys == sorted(keys), "keys out of order"
        assert len(keys) == self._size, "size counter out of sync"

    def _height(self, node: _Node) -> int:
        height = 0
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
            height += 1
        return height

    def _check_node(self, node: _Node, low, high, leaves, expected_height):
        for key in node.keys:
            assert (low is None or key >= low) and \
                (high is None or key < high), "separator violation"
        if node.is_leaf:
            assert expected_height == 0, "leaves at different depths"
            leaves.append(node)
            return
        internal: _Internal = node  # type: ignore[assignment]
        assert len(internal.children) == len(internal.keys) + 1
        bounds = [low, *internal.keys, high]
        for child, (child_low, child_high) in zip(
                internal.children, zip(bounds, bounds[1:])):
            self._check_node(child, child_low, child_high, leaves,
                             expected_height - 1)

    # -- serialization (checkpoints) ------------------------------------------------------

    def dump(self) -> list[tuple[tuple, Any]]:
        return list(self.items())

    @classmethod
    def load(cls, entries, order: int = DEFAULT_ORDER) -> "BPlusTree":
        tree = cls(order)
        for key, value in entries:
            # keys are stored normalized; denormalize for insert
            tree.insert(tuple(v for _, v in key), value)
        return tree


def _lower_bound(keys: list, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: list, key) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo
