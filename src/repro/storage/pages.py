"""Slotted pages: variable-length records inside a fixed-size page.

Layout (little-endian)::

    offset 0   u64  page LSN (recovery: last log record applied)
    offset 8   u16  slot count
    offset 10  u16  free-space pointer (offset of the lowest record byte)
    offset 12  slot directory: per slot u16 offset, u16 length
    ...        free space (grows down from `free-space pointer`)
    ...        record payloads (packed at the end of the page)

A deleted slot keeps its directory entry with offset 0 so record ids
(page_id, slot) stay stable; page compaction slides live records without
renumbering slots.
"""

from __future__ import annotations

import struct

from .disk import PAGE_SIZE
from .errors import PageError

_HEADER = struct.Struct("<QHH")
_SLOT = struct.Struct("<HH")
HEADER_SIZE = _HEADER.size          # 12
SLOT_SIZE = _SLOT.size              # 4

#: Largest record that fits on a fresh page.
MAX_RECORD = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE


class SlottedPage:
    """A view over one page buffer, offering record operations."""

    __slots__ = ("data",)

    def __init__(self, data: bytearray | None = None):
        if data is None:
            data = bytearray(PAGE_SIZE)
            _HEADER.pack_into(data, 0, 0, 0, PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise PageError(f"slotted page needs {PAGE_SIZE} bytes")
        self.data = data

    # -- header ---------------------------------------------------------------

    @property
    def lsn(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @lsn.setter
    def lsn(self, value: int) -> None:
        count, free = _HEADER.unpack_from(self.data, 0)[1:]
        _HEADER.pack_into(self.data, 0, value, count, free)

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    @property
    def _free_pointer(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[2]

    def _set_header(self, count: int, free: int) -> None:
        _HEADER.pack_into(self.data, 0, self.lsn, count, free)

    def _slot(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self.slot_count:
            raise PageError(f"slot {index} out of range")
        return _SLOT.unpack_from(self.data, HEADER_SIZE + index * SLOT_SIZE)

    def _set_slot(self, index: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, HEADER_SIZE + index * SLOT_SIZE,
                        offset, length)

    # -- record operations -------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        directory_end = HEADER_SIZE + self.slot_count * SLOT_SIZE
        gap = self._free_pointer - directory_end
        return max(0, gap - SLOT_SIZE)

    def insert(self, record: bytes) -> int:
        """Store *record*, returning its slot number."""
        if len(record) > MAX_RECORD:
            raise PageError(
                f"record of {len(record)} bytes exceeds page capacity")
        # One header read serves the space check and the update — this
        # is the hottest page operation (every message body lands here).
        lsn, count, free = _HEADER.unpack_from(self.data, 0)
        if len(record) > free - (HEADER_SIZE + count * SLOT_SIZE) - SLOT_SIZE:
            # Deleted records leave holes; compaction may make room.
            self.compact()
            lsn, count, free = _HEADER.unpack_from(self.data, 0)
            if len(record) > \
                    free - (HEADER_SIZE + count * SLOT_SIZE) - SLOT_SIZE:
                raise PageError("page full")
        offset = free - len(record)
        self.data[offset:free] = record
        _HEADER.pack_into(self.data, 0, lsn, count + 1, offset)
        _SLOT.pack_into(self.data, HEADER_SIZE + count * SLOT_SIZE,
                        offset, len(record))
        return count

    def raise_lsn(self, lsn: int) -> None:
        """``page.lsn = max(page.lsn, lsn)`` in one header read."""
        current, count, free = _HEADER.unpack_from(self.data, 0)
        if lsn > current:
            _HEADER.pack_into(self.data, 0, lsn, count, free)

    def read(self, slot: int) -> bytes:
        offset, length = self._slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} was deleted")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        offset, _ = self._slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} already deleted")
        self._set_slot(slot, 0, 0)

    def is_live(self, slot: int) -> bool:
        offset, _ = self._slot(slot)
        return offset != 0

    def live_slots(self) -> list[int]:
        return [s for s in range(self.slot_count) if self.is_live(s)]

    def compact(self) -> None:
        """Slide live records to the end of the page, closing holes."""
        records = []
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if offset:
                records.append((slot, bytes(self.data[offset:offset + length])))
        free = PAGE_SIZE
        for slot, payload in records:
            free -= len(payload)
            self.data[free:free + len(payload)] = payload
            self._set_slot(slot, free, len(payload))
        self._set_header(self.slot_count, free)

    def used_bytes(self) -> int:
        return sum(self._slot(s)[1] for s in range(self.slot_count)
                   if self.is_live(s))
