"""Storage engine error types."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage engine failures."""


class PageError(StorageError):
    """Slotted-page level failure (bad slot, page full, corruption)."""


class BufferError_(StorageError):
    """Buffer manager failure (no evictable frame, bad pin count)."""


class WALError(StorageError):
    """Log corruption or protocol violation."""


class LockError(StorageError):
    """Base for lock acquisition failures."""


class DeadlockError(LockError):
    """A waits-for cycle was detected; the requesting transaction must abort."""


class LockTimeoutError(LockError):
    """Lock wait exceeded its timeout."""


class TransactionError(StorageError):
    """Transaction protocol violation (use after commit, double commit…)."""
