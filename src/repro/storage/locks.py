"""A hierarchical lock manager with deadlock detection.

Granularities follow the paper's §4.3 concurrency argument: slices "form
a natural new granularity, coarser than messages, but orthogonal to
queues.  By locking just the affected slices, full serializability of the
individual message-processing transactions can be guaranteed without
locking whole queues."

Resources are tuples, e.g. ``("queue", "crm")``,
``("slice", "requestMsgs", "r-17")``, ``("message", 42)``.  Intention
modes (IS/IX) are taken on ancestors by the callers that use the
hierarchy; the manager itself is granularity-agnostic.

Deadlocks are detected eagerly with a waits-for graph cycle check; the
*requesting* transaction gets :class:`DeadlockError` and is expected to
abort (the rule executor retries the message).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable

from .errors import DeadlockError, LockTimeoutError

# Modes
IS = "IS"
IX = "IX"
S = "S"
X = "X"

_COMPATIBLE: dict[tuple[str, str], bool] = {
    (IS, IS): True, (IS, IX): True, (IS, S): True, (IS, X): False,
    (IX, IS): True, (IX, IX): True, (IX, S): False, (IX, X): False,
    (S, IS): True, (S, IX): False, (S, S): True, (S, X): False,
    (X, IS): False, (X, IX): False, (X, S): False, (X, X): False,
}

#: Mode strength for upgrades: taking a stronger lock subsumes a weaker.
_STRENGTH = {IS: 0, IX: 1, S: 1, X: 2}

_UPGRADE = {
    (IS, IX): IX, (IS, S): S, (IS, X): X,
    (IX, S): X, (IX, X): X, (S, IX): X, (S, X): X,
}


def compatible(held: str, requested: str) -> bool:
    return _COMPATIBLE[(held, requested)]


@dataclass
class _ResourceState:
    holders: dict[int, str] = field(default_factory=dict)   # txn -> mode
    waiters: list[tuple[int, str]] = field(default_factory=list)


class LockManager:
    """Blocking lock acquisition with cycle-based deadlock detection."""

    def __init__(self, default_timeout: float = 10.0):
        self.default_timeout = default_timeout
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._resources: dict[Hashable, _ResourceState] = {}
        self._held_by_txn: dict[int, set[Hashable]] = {}
        self._waits_for: dict[int, set[int]] = {}
        self.acquisitions = 0
        self.waits = 0
        self.deadlocks = 0
        #: Optional histogram observing blocked-acquisition wait time
        #: (including waits ending in deadlock/timeout); set by the
        #: server when observability is enabled, None otherwise.
        self.wait_timer = None

    # -- public API -----------------------------------------------------------

    def acquire(self, txn: int, resource: Hashable, mode: str,
                timeout: float | None = None) -> None:
        """Acquire (or upgrade to) *mode* on *resource* for *txn*."""
        if mode not in _STRENGTH:
            raise ValueError(f"unknown lock mode {mode!r}")
        deadline = None
        waited_since = None
        with self._condition:
            state = self._resources.setdefault(resource, _ResourceState())
            held = state.holders.get(txn)
            if held is not None:
                mode = self._effective_mode(held, mode)
                if mode == held:
                    return
            while not self._grantable(state, txn, mode):
                self.waits += 1
                if waited_since is None:
                    waited_since = _now()
                blockers = {other for other, other_mode in
                            state.holders.items()
                            if other != txn
                            and not compatible(other_mode, mode)}
                self._waits_for[txn] = blockers
                if self._creates_cycle(txn):
                    self._waits_for.pop(txn, None)
                    self.deadlocks += 1
                    self._observe_wait(waited_since)
                    raise DeadlockError(
                        f"txn {txn} would deadlock waiting for {resource!r}")
                if deadline is None:
                    wait_budget = (timeout if timeout is not None
                                   else self.default_timeout)
                    deadline = _now() + wait_budget
                remaining = deadline - _now()
                if remaining <= 0 or not self._condition.wait(remaining):
                    self._waits_for.pop(txn, None)
                    self._observe_wait(waited_since)
                    raise LockTimeoutError(
                        f"txn {txn} timed out waiting for {resource!r}")
            self._waits_for.pop(txn, None)
            self._observe_wait(waited_since)
            state.holders[txn] = mode
            self._held_by_txn.setdefault(txn, set()).add(resource)
            self.acquisitions += 1

    def _observe_wait(self, waited_since: float | None) -> None:
        if waited_since is not None and self.wait_timer is not None:
            self.wait_timer.observe(_now() - waited_since)

    def release_all(self, txn: int) -> None:
        """Release every lock held by *txn* (end of transaction)."""
        with self._condition:
            for resource in self._held_by_txn.pop(txn, set()):
                state = self._resources.get(resource)
                if state is not None:
                    state.holders.pop(txn, None)
                    if not state.holders and not state.waiters:
                        del self._resources[resource]
            self._waits_for.pop(txn, None)
            self._condition.notify_all()

    def held(self, txn: int) -> set[Hashable]:
        with self._mutex:
            return set(self._held_by_txn.get(txn, set()))

    def mode_of(self, txn: int, resource: Hashable) -> str | None:
        with self._mutex:
            state = self._resources.get(resource)
            return state.holders.get(txn) if state else None

    # -- internals ---------------------------------------------------------------

    def _effective_mode(self, held: str, requested: str) -> str:
        if held == requested:
            return held
        upgraded = _UPGRADE.get((held, requested))
        if upgraded is not None:
            return upgraded
        # requested is weaker than held
        if _STRENGTH[requested] <= _STRENGTH[held]:
            return held
        return requested

    def _grantable(self, state: _ResourceState, txn: int, mode: str) -> bool:
        return all(other == txn or compatible(other_mode, mode)
                   for other, other_mode in state.holders.items())

    def _creates_cycle(self, start: int) -> bool:
        """DFS over the waits-for graph looking for a cycle through start."""
        stack = list(self._waits_for.get(start, ()))
        seen: set[int] = set()
        while stack:
            txn = stack.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(self._waits_for.get(txn, ()))
        return False


def _now() -> float:
    import time
    return time.monotonic()
