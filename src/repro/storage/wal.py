"""The write-ahead log.

Record format on disk: ``[u32 length][u32 crc32][payload]`` where the
payload is a JSON object; the LSN of a record is its byte offset.  A torn
tail (partial record after a crash) is detected by length/CRC and cleanly
truncated — everything before it is intact.

Prefix truncation (DESIGN.md §10): a log may start at a non-zero *base
LSN* — the file then opens with a small header (magic + u64 base) and
byte ``base + i`` of the logical stream lives at file offset
``header + i``.  LSNs stay absolute forever: truncating the prefix below
a checkpoint rewrites the file with a higher base but never renumbers a
record, so replication byte-offsets and page LSNs remain comparable
across truncations.  Headerless files are the legacy base-0 format and
keep opening unchanged.

Demaq's append-only message model (paper §2.3.3/§4.1) shows up here
directly: message *inserts* carry their payload (the log is the data, so
redo needs no undo images), and with retention-derived deletion the store
doesn't log individual message deletions at all — recovery recomputes
deletability from slice state.  ``bench_logging`` quantifies that claim.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .errors import WALError

_FRAME = struct.Struct("<II")

#: File header of a prefix-truncated log: magic + u64 base LSN.  Legacy
#: logs have no header (base 0); the magic cannot collide with a record
#: frame whose first four bytes are a little-endian length.
_WAL_MAGIC = b"DMQWAL10"
_BASE_HEADER = struct.Struct("<8sQ")

# Record types
BEGIN = "begin"
COMMIT = "commit"
ABORT = "abort"
MSG_INSERT = "msg_insert"
MSG_PROCESSED = "msg_processed"
MSG_DELETE = "msg_delete"
SLICE_RESET = "slice_reset"
CHECKPOINT = "checkpoint"
SAVEPOINT = "savepoint"
ROLLBACK_SP = "rollback_sp"

RECORD_TYPES = frozenset({
    BEGIN, COMMIT, ABORT, MSG_INSERT, MSG_PROCESSED, MSG_DELETE,
    SLICE_RESET, CHECKPOINT, SAVEPOINT, ROLLBACK_SP,
})


@dataclass(frozen=True)
class LogRecord:
    """One decoded log record."""

    lsn: int
    type: str
    txn: Optional[int]
    data: dict

    def __post_init__(self):
        if self.type not in RECORD_TYPES:
            raise WALError(f"unknown log record type {self.type!r}")


class WriteAheadLog:
    """An append-only log over a file (or memory buffer for tests)."""

    def __init__(self, path: str | None = None):
        self.path = path
        self._lock = threading.RLock()
        #: First LSN still present (the base); bytes below it were
        #: physically truncated away.  All public offsets stay absolute.
        self._start = 0
        #: File offset where logical byte ``_start`` lives (the header
        #: size; 0 for legacy headerless files and memory logs).
        self._data_offset = 0
        if path is None:
            self._file = None
            self._buffer = bytearray()
            self._size = 0
        else:
            self._file = open(path, "a+b")
            self._buffer = None
            self._file.seek(0)
            head = self._file.read(_BASE_HEADER.size)
            if len(head) == _BASE_HEADER.size \
                    and head[:len(_WAL_MAGIC)] == _WAL_MAGIC:
                self._start = _BASE_HEADER.unpack(head)[1]
                self._data_offset = _BASE_HEADER.size
            self._file.seek(0, os.SEEK_END)
            self._size = self._start + self._file.tell() - self._data_offset
        self._flushed_lsn = self._size
        self.appended_records = 0
        self.flushes = 0
        #: Optional histogram observing each force's duration; set by the
        #: store when observability is enabled, None otherwise so the
        #: disabled path never touches a clock.
        self.fsync_timer = None

    # -- appending ------------------------------------------------------------

    def append(self, type_: str, txn: int | None = None,
               **data) -> int:
        """Append one record; returns its LSN.  Does not flush."""
        payload = json.dumps({"type": type_, "txn": txn, "data": data},
                             separators=(",", ":")).encode("utf-8")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            lsn = self._size
            if self._file is not None:
                # opened in append mode: writes always land at the end
                self._file.write(frame)
            else:
                self._buffer.extend(frame)
            self._size += len(frame)
            self.appended_records += 1
            return lsn

    def end_lsn(self) -> int:
        with self._lock:
            return self._size

    def start_lsn(self) -> int:
        """First LSN still physically present (the truncation base)."""
        with self._lock:
            return self._start

    # -- raw byte transfer (replication) ---------------------------------------

    def read_bytes(self, start: int, end: int) -> bytes:
        """Raw log bytes in ``[start, end)`` — the WAL-shipping payload.

        LSNs are byte offsets, so a replica holding the byte prefix
        ``[0, n)`` holds exactly the records below LSN *n*; shipping is
        a plain byte-range copy with no re-encoding.
        """
        with self._lock:
            end = min(end, self._size)
            if start >= end:
                return b""
            if start < self._start:
                raise WALError(
                    f"WAL bytes below {self._start} were truncated "
                    f"(requested {start})")
            if self._file is not None:
                self._file.flush()
                self._file.seek(start - self._start + self._data_offset)
                return self._file.read(end - start)
            return bytes(self._buffer[start - self._start:
                                      end - self._start])

    def append_bytes(self, raw: bytes) -> int:
        """Append already-framed record bytes (replica standby apply).

        The shipped bytes were framed by the primary's :meth:`append`,
        so offsets inside them stay aligned with the primary's LSNs as
        long as they are appended contiguously — the applier guarantees
        that by trimming duplicates and acking gaps.  Returns the new
        end LSN.
        """
        if not raw:
            return self.end_lsn()
        with self._lock:
            if self._file is not None:
                self._file.write(raw)
            else:
                self._buffer.extend(raw)
            self._size += len(raw)
            return self._size

    # -- durability ----------------------------------------------------------------

    def flush(self) -> None:
        timer = self.fsync_timer
        started = time.perf_counter() if timer is not None else 0.0
        with self._lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
            self._flushed_lsn = self.end_lsn()
            self.flushes += 1
        if timer is not None:
            timer.observe(time.perf_counter() - started)

    def flush_to(self, lsn: int) -> None:
        """WAL-before-data hook: ensure records up to *lsn* are durable."""
        with self._lock:
            if lsn > self._flushed_lsn:
                self.flush()

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def stats(self) -> "WALStats":
        """A consistent snapshot of the append/flush counters.

        Benchmarks and the group-commit coordinator read these while
        driver threads append; snapshotting under the WAL lock keeps
        the numbers from tearing (e.g. ``flushes`` from one moment and
        ``appended_records`` from another).
        """
        with self._lock:
            return WALStats(appended_records=self.appended_records,
                            flushes=self.flushes,
                            flushed_lsn=self._flushed_lsn,
                            end_lsn=self.end_lsn())

    def discard_unflushed(self) -> int:
        """Crash simulation: drop everything after the last force.

        Appended-but-unforced bytes live in OS/file buffers a real
        crash would lose; tests call this to model that loss.  Returns
        the number of bytes discarded.
        """
        with self._lock:
            lost = self._size - self._flushed_lsn
            if lost <= 0:
                return 0
            if self._file is not None:
                self._file.flush()
                self._file.truncate(
                    self._flushed_lsn - self._start + self._data_offset)
            else:
                del self._buffer[self._flushed_lsn - self._start:]
            self._size = self._flushed_lsn
            return lost

    # -- reading ---------------------------------------------------------------------

    def records(self, from_lsn: int = 0) -> Iterator[LogRecord]:
        """Iterate records from *from_lsn*; stops cleanly at a torn tail."""
        for record, _ in self._scan(from_lsn):
            yield record

    def scan(self, from_lsn: int = 0) -> Iterator[tuple[LogRecord, int]]:
        """Like :meth:`records` but yields ``(record, end offset)``.

        The replica applier uses the end offsets to track how far the
        shipped byte stream has been parsed into complete records.
        """
        return self._scan(from_lsn)

    def _scan(self, from_lsn: int = 0
              ) -> Iterator[tuple[LogRecord, int]]:
        """Yield (record, end offset) for every well-formed record,
        stopping at the first torn/corrupt frame — the one shared frame
        walk behind reading and tail truncation."""
        with self._lock:
            base = self._start
            if self._file is not None:
                self._file.flush()
                self._file.seek(self._data_offset)
                raw = self._file.read(self._size - base)
            else:
                raw = bytes(self._buffer)
        # A record below the truncation base is gone; start at the base.
        offset = max(from_lsn, base)
        while offset - base + _FRAME.size <= len(raw):
            length, crc = _FRAME.unpack_from(raw, offset - base)
            start = offset + _FRAME.size
            end = start + length
            if end - base > len(raw):
                return  # torn tail
            payload = raw[start - base:end - base]
            if zlib.crc32(payload) != crc:
                return  # torn/corrupt tail
            try:
                decoded = json.loads(payload)
            except ValueError:
                return
            yield LogRecord(offset, decoded["type"], decoded["txn"],
                            decoded["data"]), end
            offset = end

    def truncate_torn_tail(self) -> int:
        """Physically drop a torn/corrupt tail; returns bytes dropped.

        Reading already stops at a tear, but appending after one would
        strand every later record behind unreadable garbage — recovery
        calls this so the log ends at its last valid record before new
        work is appended.
        """
        with self._lock:
            end = self._valid_end()
            lost = self._size - end
            if lost <= 0:
                return 0
            if self._file is not None:
                self._file.flush()
                self._file.truncate(end - self._start + self._data_offset)
            else:
                del self._buffer[end - self._start:]
            self._size = end
            self._flushed_lsn = min(self._flushed_lsn, end)
            return lost

    def _valid_end(self) -> int:
        """Offset just past the last well-formed record."""
        end = self._start
        for _, end in self._scan():
            pass
        return end

    # -- prefix truncation (checkpointing) -------------------------------------

    def truncate_prefix(self, new_start: int) -> int:
        """Physically drop all bytes below *new_start*; returns bytes dropped.

        Only flushed bytes may be dropped (a crash between the rewrite
        and the next force must not lose unforced tail records), and the
        base never moves backwards.  File mode rewrites the log as
        ``header(new base) + suffix`` via a temp file + atomic rename so
        a crash mid-truncation leaves either the old or the new log.
        """
        with self._lock:
            new_start = min(new_start, self._flushed_lsn)
            dropped = new_start - self._start
            if dropped <= 0:
                return 0
            if self._file is not None:
                self._file.flush()
                self._file.seek(new_start - self._start + self._data_offset)
                suffix = self._file.read()
                tmp = self.path + ".truncate"
                with open(tmp, "wb") as out:
                    out.write(_BASE_HEADER.pack(_WAL_MAGIC, new_start))
                    out.write(suffix)
                    out.flush()
                    os.fsync(out.fileno())
                self._file.close()
                os.replace(tmp, self.path)
                self._file = open(self.path, "a+b")
            else:
                del self._buffer[:new_start - self._start]
            self._start = new_start
            self._data_offset = _BASE_HEADER.size if self._file is not None \
                else 0
            return dropped

    def reset_to(self, start: int) -> None:
        """Drop ALL content and restart the log at base *start*.

        Standby re-seed: after installing a checkpoint state captured at
        primary LSN *start*, the replica's old log is obsolete — shipped
        bytes resume exactly at *start*.
        """
        with self._lock:
            if self._file is not None:
                self._file.close()
                with open(self.path, "wb") as out:
                    out.write(_BASE_HEADER.pack(_WAL_MAGIC, start))
                    out.flush()
                    os.fsync(out.fileno())
                self._file = open(self.path, "a+b")
                self._data_offset = _BASE_HEADER.size
            else:
                self._buffer.clear()
            self._start = start
            self._size = start
            self._flushed_lsn = start

    def last_checkpoint(self) -> Optional[LogRecord]:
        checkpoint = None
        for record in self.records():
            if record.type == CHECKPOINT:
                checkpoint = record
        return checkpoint

    def size_bytes(self) -> int:
        """Physical bytes retained (logical end minus truncated base)."""
        with self._lock:
            return self._size - self._start

    def close(self) -> None:
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()
                self._file.close()


@dataclass
class WALStats:
    """Snapshot of the WAL counters, taken under the log lock."""

    appended_records: int
    flushes: int
    flushed_lsn: int
    end_lsn: int


@dataclass
class LogAnalysis:
    """Result of the analysis pass over one log range."""

    committed: set[int] = field(default_factory=set)
    aborted: set[int] = field(default_factory=set)
    #: txn -> [(savepoint_lsn, rollback_lsn)] spans whose records were
    #: rolled back in place (partial batch aborts, §3.1 batching) and
    #: must be skipped by redo even though the transaction committed.
    rolled_back: dict[int, list[tuple[int, int]]] = field(
        default_factory=dict)

    def is_rolled_back(self, record: LogRecord) -> bool:
        if record.txn is None:
            return False
        return any(start < record.lsn < end
                   for start, end in self.rolled_back.get(record.txn, ()))


def analyze_records(records: Iterator[LogRecord]) -> LogAnalysis:
    """The analysis pass: commit state plus rolled-back savepoint spans.

    A ``SAVEPOINT sp`` / ``ROLLBACK_SP sp`` pair of one transaction
    brackets records that were logged and then abandoned (a batch
    member that aborted alone); everything strictly between the two
    LSNs is dead even when the surrounding transaction commits.
    """
    analysis = LogAnalysis()
    savepoint_lsns: dict[tuple[int, int], int] = {}
    for record in records:
        if record.type == COMMIT:
            analysis.committed.add(record.txn)
        elif record.type == ABORT:
            analysis.aborted.add(record.txn)
        elif record.type == SAVEPOINT:
            savepoint_lsns[(record.txn, record.data["sp"])] = record.lsn
        elif record.type == ROLLBACK_SP:
            start = savepoint_lsns.get((record.txn, record.data["sp"]))
            if start is None:
                raise WALError(
                    f"rollback to unknown savepoint {record.data['sp']} "
                    f"of txn {record.txn} at lsn {record.lsn}")
            analysis.rolled_back.setdefault(record.txn, []).append(
                (start, record.lsn))
    return analysis


def analyze(records: Iterator[LogRecord]) -> tuple[set[int], set[int]]:
    """Compatibility wrapper: (committed, aborted) transaction ids.

    Losers (seen but neither committed nor aborted) are implicitly
    aborted: with deferred updates there is nothing to undo.
    """
    analysis = analyze_records(records)
    return analysis.committed, analysis.aborted
