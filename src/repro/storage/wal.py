"""The write-ahead log.

Record format on disk: ``[u32 length][u32 crc32][payload]`` where the
payload is a JSON object; the LSN of a record is its byte offset.  A torn
tail (partial record after a crash) is detected by length/CRC and cleanly
truncated — everything before it is intact.

Demaq's append-only message model (paper §2.3.3/§4.1) shows up here
directly: message *inserts* carry their payload (the log is the data, so
redo needs no undo images), and with retention-derived deletion the store
doesn't log individual message deletions at all — recovery recomputes
deletability from slice state.  ``bench_logging`` quantifies that claim.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

from .errors import WALError

_FRAME = struct.Struct("<II")

# Record types
BEGIN = "begin"
COMMIT = "commit"
ABORT = "abort"
MSG_INSERT = "msg_insert"
MSG_PROCESSED = "msg_processed"
MSG_DELETE = "msg_delete"
SLICE_RESET = "slice_reset"
CHECKPOINT = "checkpoint"

RECORD_TYPES = frozenset({
    BEGIN, COMMIT, ABORT, MSG_INSERT, MSG_PROCESSED, MSG_DELETE,
    SLICE_RESET, CHECKPOINT,
})


@dataclass(frozen=True)
class LogRecord:
    """One decoded log record."""

    lsn: int
    type: str
    txn: Optional[int]
    data: dict

    def __post_init__(self):
        if self.type not in RECORD_TYPES:
            raise WALError(f"unknown log record type {self.type!r}")


class WriteAheadLog:
    """An append-only log over a file (or memory buffer for tests)."""

    def __init__(self, path: str | None = None):
        self.path = path
        self._lock = threading.RLock()
        if path is None:
            self._file = None
            self._buffer = bytearray()
        else:
            self._file = open(path, "a+b")
            self._buffer = None
        self._flushed_lsn = self.end_lsn()
        self.appended_records = 0
        self.flushes = 0

    # -- appending ------------------------------------------------------------

    def append(self, type_: str, txn: int | None = None,
               **data) -> int:
        """Append one record; returns its LSN.  Does not flush."""
        payload = json.dumps({"type": type_, "txn": txn, "data": data},
                             separators=(",", ":")).encode("utf-8")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            lsn = self.end_lsn()
            if self._file is not None:
                self._file.seek(0, os.SEEK_END)
                self._file.write(frame)
            else:
                self._buffer.extend(frame)
            self.appended_records += 1
            return lsn

    def end_lsn(self) -> int:
        with self._lock:
            if self._file is not None:
                self._file.seek(0, os.SEEK_END)
                return self._file.tell()
            return len(self._buffer)

    # -- durability ----------------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
            self._flushed_lsn = self.end_lsn()
            self.flushes += 1

    def flush_to(self, lsn: int) -> None:
        """WAL-before-data hook: ensure records up to *lsn* are durable."""
        with self._lock:
            if lsn > self._flushed_lsn:
                self.flush()

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    # -- reading ---------------------------------------------------------------------

    def records(self, from_lsn: int = 0) -> Iterator[LogRecord]:
        """Iterate records from *from_lsn*; stops cleanly at a torn tail."""
        with self._lock:
            if self._file is not None:
                self._file.seek(0, os.SEEK_END)
                size = self._file.tell()
                self._file.seek(0)
                raw = self._file.read(size)
            else:
                raw = bytes(self._buffer)
        offset = from_lsn
        while offset + _FRAME.size <= len(raw):
            length, crc = _FRAME.unpack_from(raw, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(raw):
                return  # torn tail
            payload = raw[start:end]
            if zlib.crc32(payload) != crc:
                return  # torn/corrupt tail
            try:
                decoded = json.loads(payload)
            except ValueError:
                return
            yield LogRecord(offset, decoded["type"], decoded["txn"],
                            decoded["data"])
            offset = end

    def last_checkpoint(self) -> Optional[LogRecord]:
        checkpoint = None
        for record in self.records():
            if record.type == CHECKPOINT:
                checkpoint = record
        return checkpoint

    def size_bytes(self) -> int:
        return self.end_lsn()

    def close(self) -> None:
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()
                self._file.close()


def analyze(records: Iterator[LogRecord]) -> tuple[set[int], set[int]]:
    """The analysis pass: (committed, aborted) transaction ids."""
    committed: set[int] = set()
    aborted: set[int] = set()
    seen: set[int] = set()
    for record in records:
        if record.txn is not None:
            seen.add(record.txn)
        if record.type == COMMIT:
            committed.add(record.txn)
        elif record.type == ABORT:
            aborted.add(record.txn)
    # Losers (seen but neither committed nor aborted) are implicitly
    # aborted: with deferred updates there is nothing to undo.
    return committed, aborted
