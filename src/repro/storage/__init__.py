"""The storage engine: transactional, recoverable XML message queues.

This package substitutes for the Natix native XML store the paper builds
on (see DESIGN.md §2): slotted pages, a buffer manager with WAL-before-
data, a write-ahead log with checkpoints and crash recovery, a B+-tree
for the materialized slice index, a hierarchical lock manager, and
deferred-update transactions.
"""

from .btree import BPlusTree
from .buffer import BufferManager
from .checkpoint import CheckpointScheduler
from .disk import PAGE_SIZE, FileDiskManager, InMemoryDiskManager
from .errors import (BufferError_, DeadlockError, LockError, LockTimeoutError,
                     PageError, StorageError, TransactionError, WALError)
from .groupcommit import (POLICIES as DURABILITY_POLICIES,
                          GroupCommitCoordinator)
from .heap import RID, RecordHeap
from .locks import IS, IX, S, X, LockManager, compatible
from .pages import MAX_RECORD, SlottedPage
from .store import (MessageStore, StoredMessage, StoreStatistics,
                    decode_value, encode_value)
from .transactions import Transaction, TransactionManager, TxnState
from .wal import LogAnalysis, LogRecord, WALStats, WriteAheadLog

__all__ = [
    "BPlusTree", "BufferManager", "CheckpointScheduler",
    "PAGE_SIZE", "FileDiskManager",
    "InMemoryDiskManager",
    "BufferError_", "DeadlockError", "LockError", "LockTimeoutError",
    "PageError", "StorageError", "TransactionError", "WALError",
    "DURABILITY_POLICIES", "GroupCommitCoordinator",
    "RID", "RecordHeap",
    "IS", "IX", "S", "X", "LockManager", "compatible",
    "MAX_RECORD", "SlottedPage",
    "MessageStore", "StoredMessage", "StoreStatistics",
    "decode_value", "encode_value",
    "Transaction", "TransactionManager", "TxnState",
    "LogAnalysis", "LogRecord", "WALStats", "WriteAheadLog",
]
