"""The buffer manager: pinned frames over a disk manager.

Steal/no-force with clock eviction.  The write-ahead rule is enforced
here: before a dirty page goes to disk, the WAL must be flushed up to
that page's LSN (``wal.flush_to``).  Natix's buffer manager plays the
same role for the paper's prototype.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from .disk import DiskManager
from .errors import BufferError_
from .pages import SlottedPage


class _Frame:
    __slots__ = ("page_id", "page", "pin_count", "dirty", "referenced")

    def __init__(self, page_id: int, page: SlottedPage):
        self.page_id = page_id
        self.page = page
        self.pin_count = 0
        self.dirty = False
        self.referenced = True


class BufferManager:
    """Caches pages; at most *capacity* frames resident."""

    def __init__(self, disk: DiskManager, capacity: int = 256,
                 flush_to_lsn: Optional[Callable[[int], None]] = None):
        if capacity < 1:
            raise BufferError_("buffer capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self._frames: dict[int, _Frame] = {}
        self._clock: list[int] = []
        self._hand = 0
        self._lock = threading.RLock()
        self._flush_to_lsn = flush_to_lsn
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- pinning -----------------------------------------------------------------

    def new_page(self) -> tuple[int, SlottedPage]:
        """Allocate, pin, and return a fresh page."""
        page_id = self.disk.allocate()
        with self._lock:
            frame = _Frame(page_id, SlottedPage())
            frame.pin_count = 1
            frame.dirty = True
            self._admit(page_id, frame)
            return page_id, frame.page

    def pin(self, page_id: int) -> SlottedPage:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.hits += 1
                frame.pin_count += 1
                frame.referenced = True
                return frame.page
            self.misses += 1
            page = SlottedPage(self.disk.read(page_id))
            frame = _Frame(page_id, page)
            frame.pin_count = 1
            self._admit(page_id, frame)
            return frame.page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise BufferError_(f"unpin of unpinned page {page_id}")
            frame.pin_count -= 1
            frame.dirty = frame.dirty or dirty

    # -- eviction ------------------------------------------------------------------

    def _admit(self, page_id: int, frame: _Frame) -> None:
        if len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = frame
        self._clock.append(page_id)

    def _evict_one(self) -> None:
        """Second-chance clock sweep over unpinned frames."""
        if not self._clock:
            raise BufferError_("buffer pool is empty but full?")
        scanned = 0
        limit = 2 * len(self._clock)
        while scanned <= limit:
            self._hand %= len(self._clock)
            page_id = self._clock[self._hand]
            frame = self._frames[page_id]
            if frame.pin_count == 0:
                if frame.referenced:
                    frame.referenced = False
                else:
                    self._write_back(frame)
                    del self._frames[page_id]
                    self._clock.pop(self._hand)
                    self.evictions += 1
                    return
            self._hand += 1
            scanned += 1
        raise BufferError_(
            f"no evictable frame: all {len(self._frames)} pages pinned")

    def _write_back(self, frame: _Frame) -> None:
        if frame.dirty:
            if self._flush_to_lsn is not None:
                self._flush_to_lsn(frame.page.lsn)   # WAL-before-data
            self.disk.write(frame.page_id, bytes(frame.page.data))
            frame.dirty = False

    # -- checkpoint support ------------------------------------------------------------

    def dirty_page_ids(self) -> list[int]:
        """Resident dirty pages — the fuzzy checkpoint's work list."""
        with self._lock:
            return sorted(page_id for page_id, frame in self._frames.items()
                          if frame.dirty)

    def flush_page(self, page_id: int) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._write_back(frame)

    def flush_all(self) -> None:
        with self._lock:
            for frame in self._frames.values():
                self._write_back(frame)
            self.disk.sync()

    def drop_all(self) -> None:
        """Simulate a crash: discard every frame without writing back."""
        with self._lock:
            self._frames.clear()
            self._clock.clear()
            self._hand = 0

    def resident_pages(self) -> list[int]:
        with self._lock:
            return sorted(self._frames)
