"""The checkpoint scheduler: endurance operation for the storage layer.

A Demaq node that runs for days accumulates WAL without bound unless
someone checkpoints and truncates — the paper's retention-driven
deletion (§2.3.3, §4.1) reclaims *messages* but never *log space*.  The
scheduler closes that loop (DESIGN.md §10): it is a tickable policy
object the server drives from its scheduling loop (and the worker from
its request loop), so no extra thread is needed and ticks never race
transaction execution.

Triggers, checked per tick:

* *byte trigger* — ``interval_bytes`` of WAL appended since the last
  completed checkpoint;
* *clock trigger* — ``interval_seconds`` of wall time elapsed since
  the last completed checkpoint;
* *retry* — the previous attempt returned ``"deferred"`` (a chained
  batch had published uncommitted work); the next tick retries
  regardless of the other triggers;
* *ceiling* — the live log exceeds ``wal_ceiling_bytes``; the follow-up
  truncation then runs in *force* mode, dropping the replica-ack
  constraint so a lagging replica re-seeds from checkpoint instead of
  holding the log hostage.

All intervals default to 0 = disabled, so a store without explicit
configuration never checkpoints behind the application's back.
"""

from __future__ import annotations

import time


class CheckpointScheduler:
    """Drives fuzzy checkpoints + WAL truncation off explicit ticks."""

    def __init__(self, store, interval_bytes: int = 0,
                 interval_seconds: float = 0.0,
                 wal_ceiling_bytes: int = 0,
                 truncate: bool = True):
        self.store = store
        self.interval_bytes = interval_bytes
        self.interval_seconds = interval_seconds
        self.wal_ceiling_bytes = wal_ceiling_bytes
        self.truncate = truncate
        self._last_lsn = store.wal.end_lsn()
        self._last_time = time.monotonic()
        self._retry_pending = False
        self.runs = 0
        self.deferred = 0
        self.truncated_bytes = 0

    @property
    def enabled(self) -> bool:
        return bool(self.interval_bytes or self.interval_seconds
                    or self.wal_ceiling_bytes)

    def _over_ceiling(self) -> bool:
        return bool(self.wal_ceiling_bytes) and \
            self.store.wal.size_bytes() > self.wal_ceiling_bytes

    def _due(self) -> bool:
        if self._retry_pending:
            return True
        if self._over_ceiling():
            return True
        if self.interval_bytes and \
                self.store.wal.end_lsn() - self._last_lsn >= \
                self.interval_bytes:
            return True
        if self.interval_seconds and \
                time.monotonic() - self._last_time >= self.interval_seconds:
            return True
        return False

    def maybe_run(self) -> str | None:
        """One tick: checkpoint (+ truncate) if a trigger fired.

        Returns the checkpoint status when an attempt ran, None when
        nothing was due.
        """
        if not self.enabled or not self._due():
            return None
        status = self.store.checkpoint()
        if status == "deferred":
            # A chained batch holds published uncommitted work; retry
            # on the next tick instead of waiting out a full interval.
            self._retry_pending = True
            self.deferred += 1
            return status
        self._retry_pending = False
        if status == "completed":
            self.runs += 1
            self._last_lsn = self.store.wal.end_lsn()
            self._last_time = time.monotonic()
            if self.truncate:
                # Over the ceiling, drop the replica constraint: the
                # lagging replica re-seeds from checkpoint state.
                self.truncated_bytes += self.store.truncate_wal(
                    force=self._over_ceiling())
        return status
