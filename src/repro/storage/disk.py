"""Disk managers: fixed-size page I/O against a file or memory.

The unit of I/O is a :data:`PAGE_SIZE`-byte page addressed by integer id.
``FileDiskManager`` is what persistent queues use; the in-memory variant
backs transient queues and tests.  Both count physical reads/writes so
benchmarks can report I/O, not just wall-clock.
"""

from __future__ import annotations

import os
import threading

from .errors import PageError

#: Natix uses small fixed pages; 4 KiB mirrors its default segment pages.
PAGE_SIZE = 4096


class DiskManager:
    """Abstract page store."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0

    def allocate(self) -> int:
        raise NotImplementedError

    def read(self, page_id: int) -> bytearray:
        raise NotImplementedError

    def write(self, page_id: int, data: bytes) -> None:
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def sync(self) -> None:
        """Force pages to durable storage."""

    def close(self) -> None:
        """Release resources."""


class InMemoryDiskManager(DiskManager):
    """Pages in RAM: transient queues and unit tests."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: list[bytearray] = []
        self._lock = threading.Lock()

    def allocate(self) -> int:
        with self._lock:
            self._pages.append(bytearray(PAGE_SIZE))
            return len(self._pages) - 1

    def read(self, page_id: int) -> bytearray:
        with self._lock:
            if not 0 <= page_id < len(self._pages):
                raise PageError(f"read of unallocated page {page_id}")
            self.reads += 1
            return bytearray(self._pages[page_id])

    def write(self, page_id: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise PageError(f"page write of {len(data)} bytes")
        with self._lock:
            if not 0 <= page_id < len(self._pages):
                raise PageError(f"write of unallocated page {page_id}")
            self.writes += 1
            self._pages[page_id] = bytearray(data)

    @property
    def page_count(self) -> int:
        with self._lock:
            return len(self._pages)


class FileDiskManager(DiskManager):
    """Pages in a single file; page *n* lives at byte offset ``n * PAGE_SIZE``."""

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._lock = threading.Lock()
        exists = os.path.exists(path)
        self._file = open(path, "r+b" if exists else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE:
            raise PageError(
                f"{path} is not page aligned ({size} bytes); refusing to "
                "open a corrupt page file")
        self._count = size // PAGE_SIZE

    def allocate(self) -> int:
        with self._lock:
            page_id = self._count
            self._count += 1
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(b"\x00" * PAGE_SIZE)
            return page_id

    def read(self, page_id: int) -> bytearray:
        with self._lock:
            if not 0 <= page_id < self._count:
                raise PageError(f"read of unallocated page {page_id}")
            self.reads += 1
            self._file.seek(page_id * PAGE_SIZE)
            data = self._file.read(PAGE_SIZE)
            if len(data) != PAGE_SIZE:
                raise PageError(f"short read on page {page_id}")
            return bytearray(data)

    def write(self, page_id: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise PageError(f"page write of {len(data)} bytes")
        with self._lock:
            if not 0 <= page_id < self._count:
                raise PageError(f"write of unallocated page {page_id}")
            self.writes += 1
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(data)

    @property
    def page_count(self) -> int:
        with self._lock:
            return self._count

    def sync(self) -> None:
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()
