"""A record heap: variable-length records over slotted pages.

Records larger than one page are chained across *overflow chunks*; the
record id (RID) is the (page, slot) of the first chunk.  Message bodies —
serialized XML plus properties — are stored here; indexes hold RIDs.

Chunk layout: ``[u32 next_page][u16 next_slot][payload]`` with
``0xFFFFFFFF`` marking the end of the chain.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .buffer import BufferManager
from .errors import PageError, StorageError
from .pages import MAX_RECORD

_CHUNK_HEADER = struct.Struct("<IH")
_NO_PAGE = 0xFFFFFFFF
_CHUNK_CAPACITY = MAX_RECORD - _CHUNK_HEADER.size


@dataclass(frozen=True)
class RID:
    """A record id: first chunk's (page, slot)."""

    page_id: int
    slot: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.page_id, self.slot)


class RecordHeap:
    """Store/fetch/delete byte records through a buffer manager."""

    def __init__(self, buffer: BufferManager):
        self.buffer = buffer
        self._open_page: int | None = None
        #: Pages where deletes freed space — candidates for reuse so
        #: retention deletion returns storage instead of only growing.
        self._free_pages: set[int] = set()

    def reset_hints(self) -> None:
        """Forget placement hints (after recovery/crash simulation)."""
        self._open_page = None
        self._free_pages.clear()

    def store(self, record: bytes, lsn: int = 0) -> RID:
        """Write *record*, returning its RID.

        Chunks are written back-to-front so each chunk knows its
        successor's address.
        """
        chunks = [record[i:i + _CHUNK_CAPACITY]
                  for i in range(0, len(record), _CHUNK_CAPACITY)] or [b""]
        next_page, next_slot = _NO_PAGE, 0
        rid = None
        for chunk in reversed(chunks):
            payload = _CHUNK_HEADER.pack(next_page, next_slot) + chunk
            page_id, slot = self._insert_chunk(payload, lsn)
            next_page, next_slot = page_id, slot
            rid = RID(page_id, slot)
        assert rid is not None
        return rid

    def _insert_chunk(self, payload: bytes, lsn: int) -> tuple[int, int]:
        if self._open_page is not None:
            page_id = self._open_page
            page = self.buffer.pin(page_id)
            try:
                slot = page.insert(payload)
                page.raise_lsn(lsn)
                return page_id, slot
            except PageError:
                pass
            finally:
                self.buffer.unpin(page_id, dirty=True)
        # Deletes left holes behind: probe a bounded number of candidate
        # pages before extending the heap (compaction-by-reuse, §4.1
        # retention reclaims space, not just messages).
        for page_id in sorted(self._free_pages)[:8]:
            page = self.buffer.pin(page_id)
            try:
                slot = page.insert(payload)
                page.raise_lsn(lsn)
            except PageError:
                self._free_pages.discard(page_id)
                self.buffer.unpin(page_id)
            else:
                self.buffer.unpin(page_id, dirty=True)
                return page_id, slot
        page_id, page = self.buffer.new_page()
        try:
            slot = page.insert(payload)
            page.raise_lsn(lsn)
        finally:
            self.buffer.unpin(page_id, dirty=True)
        self._open_page = page_id
        return page_id, slot

    def fetch(self, rid: RID) -> bytes:
        """Read a full record, following the overflow chain."""
        parts: list[bytes] = []
        page_id, slot = rid.page_id, rid.slot
        hops = 0
        while page_id != _NO_PAGE:
            if hops > 1_000_000:
                raise StorageError("overflow chain cycle detected")
            page = self.buffer.pin(page_id)
            try:
                raw = page.read(slot)
            finally:
                self.buffer.unpin(page_id)
            next_page, next_slot = _CHUNK_HEADER.unpack_from(raw, 0)
            parts.append(raw[_CHUNK_HEADER.size:])
            page_id, slot = next_page, next_slot
            hops += 1
        return b"".join(parts)

    def delete(self, rid: RID, lsn: int = 0) -> None:
        """Free every chunk of a record.  Idempotent: an already-freed
        slot ends the walk (a record's chunks are freed together, so a
        freed head means the whole chain is gone — redo may replay a
        delete whose effect a fuzzy checkpoint already captured)."""
        page_id, slot = rid.page_id, rid.slot
        while page_id != _NO_PAGE:
            page = self.buffer.pin(page_id)
            try:
                try:
                    raw = page.read(slot)
                except PageError:
                    break  # slot already freed — chain is gone
                next_page, next_slot = _CHUNK_HEADER.unpack_from(raw, 0)
                page.delete(slot)
                page.lsn = max(page.lsn, lsn)
                self._free_pages.add(page_id)
            finally:
                self.buffer.unpin(page_id, dirty=True)
            page_id, slot = next_page, next_slot
