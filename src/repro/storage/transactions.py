"""Transactions over the message store.

Demaq's execution model maps the processing of one message — evaluation
of all its rules plus execution of the resulting update list — onto one
transaction (paper §3.1).  Because the language's update primitives are
*pending* (snapshot semantics), transactions here are deferred-update:
an in-flight transaction buffers operations and never touches shared
state, so

* isolation comes from 2PL via the :class:`~repro.storage.locks.LockManager`
  (readers take S locks on queues/slices, commit takes X locks),
* abort is trivial (drop the buffer — nothing was written), and
* the WAL protocol is BEGIN + ops + COMMIT appended and flushed
  atomically at commit, which recovery treats as all-or-nothing.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum

from .errors import TransactionError

_TXN_IDS = itertools.count(1)


def advance_txn_ids(minimum: int) -> None:
    """Ensure future txn ids start at or above *minimum*.

    Txn ids are process-local and restart at 1, but WAL records key
    redo analysis by txn id: after recovery (or replica promotion) a
    fresh process appending COMMIT with a recycled id would resurrect
    an old loser transaction's records on the next replay.  Recovery
    calls this with (max txn id seen in the log) + 1.
    """
    global _TXN_IDS
    current = next(_TXN_IDS)
    _TXN_IDS = itertools.count(max(current, minimum))


def next_txn_id_hint() -> int:
    """The next txn id that would be handed out (checkpoint metadata).

    Peeking consumes one id and re-creates the counter — checkpoints
    record this so bounded recovery can advance the id space without
    scanning the truncated log prefix.
    """
    global _TXN_IDS
    current = next(_TXN_IDS)
    _TXN_IDS = itertools.count(current)
    return current


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class InsertOp:
    queue: str
    payload: bytes                     # serialized message body
    properties: dict[str, object]
    slices: list[tuple[str, object]]   # (slicing, key)
    persistent: bool = True
    msg_id: int | None = None          # assigned at commit


@dataclass
class MarkProcessedOp:
    msg_id: int


@dataclass
class SliceResetOp:
    slicing: str
    key: object


@dataclass
class DeleteOp:
    msg_id: int


@dataclass
class SavepointOp:
    """Journal marker: a rollback point (one batch member's start)."""

    sp_id: int


@dataclass
class RollbackToOp:
    """Journal marker: everything since the savepoint is dead.

    The dead span stays in the journal — the store logs it faithfully
    (SAVEPOINT … ROLLBACK_SP in the WAL) and recovery skips it — so a
    batch member that aborts alone leaves an auditable trace instead of
    silently vanishing from the log.
    """

    sp_id: int


@dataclass
class Transaction:
    """A buffered unit of work against the message store.

    ``ops`` is a *journal*: data operations interleaved with
    savepoint/rollback markers.  ``live_ops()`` replays the journal to
    the operations that survive rollbacks; ``published_through`` is the
    store's cursor over the journal for chained (batched) commits —
    entries before it are already logged and applied, so rolling back
    across it is forbidden.
    """

    txn_id: int = field(default_factory=lambda: next(_TXN_IDS))
    state: TxnState = TxnState.ACTIVE
    ops: list = field(default_factory=list)
    published_through: int = 0
    logged_begin: bool = False
    #: MVCC read position, taken at begin (None with MVCC off).  Reads
    #: through this snapshot are lock-free; the store refreshes it at
    #: each chained-publish boundary so batch members see batch-mates.
    snapshot_lsn: int | None = None
    #: Set when a publish died midway (e.g. a WAL I/O error): the log
    #: may hold a partial suffix, so re-publishing would duplicate
    #: records — the transaction can only be dropped.
    poisoned: bool = False

    def __post_init__(self):
        self._sp_counter = itertools.count(1)
        self._savepoints: dict[int, int] = {}   # sp_id -> journal index

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"txn {self.txn_id} is {self.state.value}, not active")

    # -- savepoints --------------------------------------------------------------

    def savepoint(self) -> int:
        """Mark a rollback point; returns its id."""
        self._require_active()
        sp_id = next(self._sp_counter)
        self._savepoints[sp_id] = len(self.ops)
        self.ops.append(SavepointOp(sp_id))
        return sp_id

    def rollback_to_savepoint(self, sp_id: int) -> None:
        """Abandon every operation buffered since *sp_id*.

        The savepoint stays usable afterwards (SQL semantics); inner
        savepoints created after it are discarded.  Rolling back work
        the store has already published is impossible by construction.
        """
        self._require_active()
        index = self._savepoints.get(sp_id)
        if index is None:
            raise TransactionError(
                f"txn {self.txn_id} has no active savepoint {sp_id}")
        if index < self.published_through:
            raise TransactionError(
                f"savepoint {sp_id} of txn {self.txn_id} was already "
                f"published; published work cannot be rolled back")
        for inner, inner_index in list(self._savepoints.items()):
            if inner_index > index:
                del self._savepoints[inner]
        self.ops.append(RollbackToOp(sp_id))

    def live_ops(self) -> list:
        """The data operations that survive every rollback, in order."""
        return _replay(self.ops)[0]

    def insert_message(self, queue: str, payload: bytes,
                       properties: dict[str, object],
                       slices: list[tuple[str, object]],
                       persistent: bool = True) -> InsertOp:
        self._require_active()
        op = InsertOp(queue, payload, dict(properties), list(slices),
                      persistent)
        self.ops.append(op)
        return op

    def mark_processed(self, msg_id: int) -> None:
        self._require_active()
        self.ops.append(MarkProcessedOp(msg_id))

    def reset_slice(self, slicing: str, key: object) -> None:
        self._require_active()
        self.ops.append(SliceResetOp(slicing, key))

    def delete_message(self, msg_id: int) -> None:
        self._require_active()
        self.ops.append(DeleteOp(msg_id))

    @property
    def touches_persistent_state(self) -> bool:
        return any(
            not isinstance(op, InsertOp) or op.persistent
            for op in self.live_ops())


def _replay(journal: list) -> tuple[list, list[bool]]:
    """Replay a journal: (live data ops, per-entry liveness flags).

    Rollback markers truncate the live list back to their savepoint's
    mark; the flags say, for every journal entry, whether it survived
    (markers themselves are flagged True — they are never "applied").
    """
    live: list = []
    live_indexes: list[int] = []
    flags = [True] * len(journal)
    marks: dict[int, int] = {}
    for index, entry in enumerate(journal):
        if isinstance(entry, SavepointOp):
            marks[entry.sp_id] = len(live)
        elif isinstance(entry, RollbackToOp):
            mark = marks[entry.sp_id]
            for dead in live_indexes[mark:]:
                flags[dead] = False
            del live[mark:]
            del live_indexes[mark:]
        else:
            live.append(entry)
            live_indexes.append(index)
    return live, flags


class TransactionManager:
    """Creates transactions and funnels commits into the store."""

    def __init__(self, store):
        self.store = store
        self._lock = threading.Lock()
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    def begin(self) -> Transaction:
        with self._lock:
            self.begun += 1
        txn = Transaction()
        if getattr(self.store, "mvcc", False):
            # Snapshot registration goes through the store latch only
            # (never this manager's lock) so a caller already inside
            # the latch — e.g. collect_garbage — cannot deadlock.
            txn.snapshot_lsn = self.store.acquire_snapshot(txn.txn_id)
        return txn

    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        try:
            self.store.apply_transaction(txn)
        finally:
            self._drop_snapshot(txn)
        txn.state = TxnState.COMMITTED
        with self._lock:
            self.committed += 1

    def abort(self, txn: Transaction) -> None:
        txn._require_active()
        if txn.published_through:
            # A chained transaction's published prefix is already logged
            # and applied; only commit can end it consistently.
            raise TransactionError(
                f"txn {txn.txn_id} has published operations and can no "
                f"longer abort")
        self._drop_snapshot(txn)
        txn.ops.clear()
        txn.state = TxnState.ABORTED
        with self._lock:
            self.aborted += 1

    def _drop_snapshot(self, txn: Transaction) -> None:
        if txn.snapshot_lsn is not None:
            self.store.release_snapshot(txn.txn_id)
            txn.snapshot_lsn = None
