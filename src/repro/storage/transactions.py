"""Transactions over the message store.

Demaq's execution model maps the processing of one message — evaluation
of all its rules plus execution of the resulting update list — onto one
transaction (paper §3.1).  Because the language's update primitives are
*pending* (snapshot semantics), transactions here are deferred-update:
an in-flight transaction buffers operations and never touches shared
state, so

* isolation comes from 2PL via the :class:`~repro.storage.locks.LockManager`
  (readers take S locks on queues/slices, commit takes X locks),
* abort is trivial (drop the buffer — nothing was written), and
* the WAL protocol is BEGIN + ops + COMMIT appended and flushed
  atomically at commit, which recovery treats as all-or-nothing.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum

from .errors import TransactionError

_TXN_IDS = itertools.count(1)


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class InsertOp:
    queue: str
    payload: bytes                     # serialized message body
    properties: dict[str, object]
    slices: list[tuple[str, object]]   # (slicing, key)
    persistent: bool = True
    msg_id: int | None = None          # assigned at commit


@dataclass
class MarkProcessedOp:
    msg_id: int


@dataclass
class SliceResetOp:
    slicing: str
    key: object


@dataclass
class DeleteOp:
    msg_id: int


@dataclass
class Transaction:
    """A buffered unit of work against the message store."""

    txn_id: int = field(default_factory=lambda: next(_TXN_IDS))
    state: TxnState = TxnState.ACTIVE
    ops: list = field(default_factory=list)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"txn {self.txn_id} is {self.state.value}, not active")

    def insert_message(self, queue: str, payload: bytes,
                       properties: dict[str, object],
                       slices: list[tuple[str, object]],
                       persistent: bool = True) -> InsertOp:
        self._require_active()
        op = InsertOp(queue, payload, dict(properties), list(slices),
                      persistent)
        self.ops.append(op)
        return op

    def mark_processed(self, msg_id: int) -> None:
        self._require_active()
        self.ops.append(MarkProcessedOp(msg_id))

    def reset_slice(self, slicing: str, key: object) -> None:
        self._require_active()
        self.ops.append(SliceResetOp(slicing, key))

    def delete_message(self, msg_id: int) -> None:
        self._require_active()
        self.ops.append(DeleteOp(msg_id))

    @property
    def touches_persistent_state(self) -> bool:
        return any(
            not isinstance(op, InsertOp) or op.persistent
            for op in self.ops)


class TransactionManager:
    """Creates transactions and funnels commits into the store."""

    def __init__(self, store):
        self.store = store
        self._lock = threading.Lock()
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    def begin(self) -> Transaction:
        with self._lock:
            self.begun += 1
        return Transaction()

    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        self.store.apply_transaction(txn)
        txn.state = TxnState.COMMITTED
        with self._lock:
            self.committed += 1

    def abort(self, txn: Transaction) -> None:
        txn._require_active()
        txn.ops.clear()
        txn.state = TxnState.ABORTED
        with self._lock:
            self.aborted += 1
