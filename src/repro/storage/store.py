"""The transactional XML message store (the Natix-substitute facade).

Owns the heap (message bodies on slotted pages through the buffer
manager), the write-ahead log, the per-queue message index, the
materialized slice index (a B+-tree keyed by slice key, §4.3), the
property-value secondary indexes (B+-trees keyed by
``(queue, property, encoded value)``, the §4.3 materialized-access idea
applied to property predicates), slice lifetimes, and the
retention-driven garbage collector (§2.3.3).

Two deletion-logging modes reproduce the paper's §4.1 claim:

* ``log_deletes=True`` — every physical message deletion is logged
  (the conventional design);
* ``log_deletes=False`` — deletions are *derived*: recovery recomputes
  deletability from slice membership and lifetimes, so the log carries
  no per-message delete records ("frees the system from the need to
  fully log message deletions").

Multiversioning (``DEMAQ_MVCC``, default on): every catalog entry is
tagged with a create LSN and (on retention deletion) a delete LSN, and
every transaction takes a *snapshot LSN* at begin.  Readers filter index
scans by visibility — ``created_lsn <= snapshot < deleted_lsn`` — so
scans see a consistent cut of the store without read locks; physically
removing a dead version waits until it is below the *version horizon*
(the minimum active snapshot).  Messages are append-only and deletion is
retention-driven (§2.3.3), so a "version chain" is never longer than
one: created once, deleted at most once.  With MVCC off, deletion stays
physical-immediate and 2PL read locks provide the reference semantics.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from decimal import Decimal
from typing import Iterable, Optional

from ..config import read_field
from ..obs import MetricsRegistry
from ..xmldm import Document, parse as parse_xml
from ..xquery.atomics import XSDateTime
from .buffer import BufferManager
from .disk import FileDiskManager, InMemoryDiskManager
from .errors import StorageError, TransactionError
from .groupcommit import GroupCommitCoordinator
from .heap import RID, RecordHeap
from .transactions import (DeleteOp, InsertOp, MarkProcessedOp, RollbackToOp,
                           SavepointOp, SliceResetOp, Transaction,
                           TransactionManager, _replay, advance_txn_ids,
                           next_txn_id_hint)
from .btree import BPlusTree
from . import wal as walmod
from .wal import WriteAheadLog


# -- typed property value (de)serialization -------------------------------------

def encode_value(value: object) -> list:
    """Encode a property value as a JSON-safe [tag, lexical] pair."""
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, Decimal):
        # Normalized so numerically equal decimals (1.5 vs 1.50, -0 vs
        # 0) share one lexical form — index keys and scan comparisons
        # agree.
        if value == 0:
            value = abs(value)
        return ["dec", format(value.normalize(), "f")]
    if isinstance(value, XSDateTime):
        return ["dt", str(value)]
    if isinstance(value, str):
        return ["s", str(value)]
    raise StorageError(f"unsupported property value type {type(value).__name__}")


def decode_value(encoded: list) -> object:
    tag, raw = encoded
    if tag == "b":
        return bool(raw)
    if tag == "i":
        return int(raw)
    if tag == "f":
        return float(raw)
    if tag == "dec":
        return Decimal(raw)
    if tag == "dt":
        return XSDateTime.parse(raw)
    if tag == "s":
        return str(raw)
    raise StorageError(f"unknown property value tag {tag!r}")


def _encode_key(key: object) -> object:
    """Slice keys inside index tuples: keep ints, stringify the rest."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, (int, str)):
        return key
    if isinstance(key, float):
        return key
    return str(key)


@dataclass
class StoredMessage:
    """Catalog entry for one message."""

    msg_id: int
    queue: str
    seqno: int
    rid: tuple[int, int]
    properties: dict[str, object]
    slices: list[tuple[str, object, int]]   # (slicing, key, lifetime)
    processed: bool = False
    persistent: bool = True
    #: Version tags (MVCC): the entry exists for snapshots in
    #: [created_lsn, deleted_lsn).  ``deleted_lsn is None`` = live.
    created_lsn: int = 0
    deleted_lsn: int | None = None

    def property(self, name: str) -> object | None:
        return self.properties.get(name)


@dataclass
class StoreStatistics:
    """Counters the benchmarks report."""

    inserts: int = 0
    processed_marks: int = 0
    deletes: int = 0
    slice_resets: int = 0
    gc_runs: int = 0
    gc_deleted: int = 0
    recoveries: int = 0
    last_recovery_seconds: float = 0.0
    replayed_records: int = 0
    body_parses: int = 0
    parse_cache_hits: int = 0
    purged_versions: int = 0
    checkpoints: int = 0
    checkpoints_deferred: int = 0
    wal_truncations: int = 0
    wal_truncated_bytes: int = 0


class MessageStore:
    """Transactional message store; one per Demaq server."""

    def __init__(self, directory: str | None = None,
                 buffer_capacity: int = 256,
                 sync_commits: bool = True,
                 log_deletes: bool = True,
                 recover: bool = True,
                 parse_cache_capacity: int = 1024,
                 durability: str | None = None,
                 group_commit_max_wait: float = 0.05,
                 metrics: MetricsRegistry | None = None,
                 mvcc: bool | None = None,
                 wal: WriteAheadLog | None = None):
        self.directory = directory
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sync_commits = sync_commits
        self.log_deletes = log_deletes
        self.parse_cache_capacity = parse_cache_capacity
        self._mutex = threading.RLock()

        # Multiversion reads: explicit argument, then the runtime config
        # (DEMAQ_MVCC — how CI runs the suite per mode), default on.
        if mvcc is None:
            mvcc = read_field("mvcc")
        self.mvcc = bool(mvcc)

        # Durability policy resolution: explicit argument, then the
        # runtime config (DEMAQ_DURABILITY — how CI runs the whole suite
        # per policy), then the legacy sync_commits flag (False always
        # meant "acknowledge before force").  The coordinator validates
        # it.
        if durability is None:
            durability = read_field("durability") or \
                ("sync" if sync_commits else "async")
        self.durability = durability
        self._group_commit_max_wait = group_commit_max_wait

        if directory is None:
            self._disk = InMemoryDiskManager()
            self.wal = WriteAheadLog(None)
        else:
            os.makedirs(directory, exist_ok=True)
            self._disk = FileDiskManager(os.path.join(directory, "pages.dat"))
            self.wal = WriteAheadLog(os.path.join(directory, "wal.log"))
        if wal is not None:
            # Replication standby: the store adopts a WAL that already
            # holds shipped bytes, so a promoted server keeps appending
            # to the same byte stream the primary's replicas hold a
            # prefix of (offsets never restart — DESIGN.md §9).
            self.wal.close()
            self.wal = wal
        self.group_commit = GroupCommitCoordinator(
            self.wal, durability, max_wait=group_commit_max_wait)
        self.buffer = BufferManager(self._disk, buffer_capacity,
                                    flush_to_lsn=self.wal.flush_to)
        self.heap = RecordHeap(self.buffer)
        self.transactions = TransactionManager(self)
        self.stats = StoreStatistics()

        self._catalog: dict[int, StoredMessage] = {}
        self._queue_index = BPlusTree()        # (queue, seqno) -> msg_id
        self._slice_index = BPlusTree()        # (slicing, key, lifetime, seqno) -> msg_id
        #: (queue, property) -> B+-tree of (tag, raw, seqno) -> msg_id.
        #: Derived state like the queue/slice indexes: maintained by the
        #: same committed operations, rebuilt (not logged) on recovery.
        self._property_indexes: dict[tuple[str, str], BPlusTree] = {}
        self._lifetimes: dict[tuple[str, object], int] = {}
        #: msg_id -> [decoded text, parsed Document | None]: bodies are
        #: append-only, so every reader of a message can share one
        #: decode and one parse.  LRU-bounded; invalidated on delete.
        self._parse_cache: OrderedDict[int, list] = OrderedDict()
        #: Chained transactions that have published but not committed;
        #: a checkpoint must not snapshot their in-flight state.
        self._published_open: set[int] = set()
        #: LSN of the last published commit span: what a snapshot taken
        #: right now would see.  Every publish raises it monotonically.
        self._visible_lsn = 0
        #: Active snapshots, token (txn id or read token) -> snapshot
        #: LSN.  The minimum is the version horizon.
        self._snapshots: dict[object, int] = {}
        #: Dead versions awaiting purge: msg_id -> delete LSN.
        self._dead: dict[int, int] = {}
        #: Reset LSN history per slice key, ascending — how a snapshot
        #: reader recovers the slice lifetime as of its snapshot.
        #: Trimmed below the horizon.
        self._reset_lsns: dict[tuple[str, object], list[int]] = {}
        self._next_read_token = 1
        self._next_msg_id = 1
        self._next_seqno = 1
        #: Serializes whole checkpoints (scheduler vs. ctl op).
        self._checkpoint_lock = threading.Lock()
        #: While a fuzzy checkpoint's page flush is in flight, the purge
        #: horizon is capped here so no RID the snapshot catalog
        #: references is physically freed before the checkpoint lands.
        self._checkpoint_pin: int | None = None

        self._commit_timer = self.metrics.histogram(
            "demaq_store_commit_seconds",
            "Transaction commit latency including the durability wait")
        if self.metrics.enabled:
            self.wal.fsync_timer = self.metrics.histogram(
                "demaq_wal_fsync_seconds", "WAL force (fsync) latency")
        self._register_collectors()

        if recover and directory is not None:
            self.recover()

    def _register_collectors(self) -> None:
        """Expose the storage counter bags as pull metrics."""
        registry = self.metrics
        for attr, name, help_ in (
                ("inserts", "demaq_store_inserts_total",
                 "Messages inserted"),
                ("processed_marks", "demaq_store_processed_marks_total",
                 "Processed-marks applied"),
                ("deletes", "demaq_store_deletes_total",
                 "Messages deleted"),
                ("slice_resets", "demaq_store_slice_resets_total",
                 "Slice resets applied"),
                ("gc_runs", "demaq_store_gc_runs_total",
                 "Garbage-collection passes"),
                ("gc_deleted", "demaq_store_gc_deleted_total",
                 "Messages reclaimed by GC"),
                ("recoveries", "demaq_store_recoveries_total",
                 "Recovery passes run"),
                ("replayed_records", "demaq_store_replayed_records_total",
                 "WAL records replayed during recovery"),
                ("body_parses", "demaq_store_body_parses_total",
                 "Message bodies parsed from storage"),
                ("parse_cache_hits", "demaq_store_parse_cache_hits_total",
                 "Body reads served from the parse cache"),
                ("purged_versions", "demaq_store_purged_versions_total",
                 "Dead versions physically removed below the horizon"),
                ("checkpoints", "demaq_checkpoint_total",
                 "Checkpoints completed"),
                ("checkpoints_deferred", "demaq_checkpoint_deferred_total",
                 "Checkpoints deferred by an open chained batch"),
                ("wal_truncations", "demaq_wal_truncations_total",
                 "WAL prefix truncations applied"),
                ("wal_truncated_bytes", "demaq_wal_truncated_bytes_total",
                 "WAL bytes physically dropped by truncation")):
            registry.collect(name, lambda a=attr: getattr(self.stats, a),
                             help=help_)
        registry.collect("demaq_wal_appended_records_total",
                         lambda: self.wal.appended_records,
                         help="WAL records appended")
        registry.collect("demaq_wal_forces_total",
                         lambda: self.wal.flushes,
                         help="WAL forces (fsyncs); the group-commit "
                              "coalescing ratio is commits/forces")
        registry.collect("demaq_groupcommit_commits_total",
                         lambda: self.group_commit.stats.commits,
                         help="Commits passing the coordinator")
        registry.collect("demaq_groupcommit_group_waits_total",
                         lambda: self.group_commit.stats.group_waits,
                         help="Commits that waited on another's force")
        registry.collect("demaq_groupcommit_leader_forces_total",
                         lambda: self.group_commit.stats.leader_forces,
                         help="Forces issued as group leader")
        registry.collect("demaq_buffer_hits_total",
                         lambda: self.buffer.hits,
                         help="Buffer-pool page hits")
        registry.collect("demaq_buffer_misses_total",
                         lambda: self.buffer.misses,
                         help="Buffer-pool page misses")
        registry.collect("demaq_buffer_evictions_total",
                         lambda: self.buffer.evictions,
                         help="Buffer-pool evictions")
        registry.collect("demaq_store_visible_lsn",
                         lambda: self._visible_lsn, kind="gauge",
                         help="LSN a fresh snapshot would read at")
        registry.collect("demaq_store_snapshot_horizon",
                         lambda: self.snapshot_horizon(), kind="gauge",
                         help="Version horizon (minimum active snapshot)")
        registry.collect("demaq_store_active_snapshots",
                         lambda: len(self._snapshots), kind="gauge",
                         help="Registered reader snapshots")
        registry.collect("demaq_store_dead_versions",
                         lambda: len(self._dead), kind="gauge",
                         help="Deleted versions awaiting purge")
        registry.collect("demaq_wal_size_bytes",
                         lambda: self.wal.size_bytes(), kind="gauge",
                         help="WAL bytes physically retained "
                              "(end LSN minus truncation base)")
        registry.collect("demaq_wal_start_lsn",
                         lambda: self.wal.start_lsn(), kind="gauge",
                         help="First LSN still present in the log")
        registry.collect("demaq_store_last_recovery_seconds",
                         lambda: self.stats.last_recovery_seconds,
                         kind="gauge",
                         help="Duration of the most recent recovery pass")

    # -- snapshots (MVCC) --------------------------------------------------------

    def visible_lsn(self) -> int:
        with self._mutex:
            return self._visible_lsn

    def acquire_snapshot(self, token: object) -> int:
        """Register *token* as a reader at the current visible LSN."""
        with self._mutex:
            snapshot = self._visible_lsn
            self._snapshots[token] = snapshot
            return snapshot

    def release_snapshot(self, token: object) -> None:
        with self._mutex:
            self._snapshots.pop(token, None)

    def snapshot_horizon(self) -> int:
        """The version horizon: no active snapshot reads below it, so
        versions deleted at or below it are physically reclaimable."""
        with self._mutex:
            if not self._snapshots:
                return self._visible_lsn
            return min(self._snapshots.values())

    @contextmanager
    def read_snapshot(self):
        """A registered snapshot for a non-transactional reader.

        Registration pins every version visible at the snapshot against
        the purge horizon for the duration of the block.
        """
        with self._mutex:
            token = ("read", self._next_read_token)
            self._next_read_token += 1
            snapshot = self._visible_lsn
            self._snapshots[token] = snapshot
        try:
            yield snapshot
        finally:
            self.release_snapshot(token)

    @staticmethod
    def _visible(meta: StoredMessage, snapshot: int | None) -> bool:
        """Is this version in the read set of *snapshot*?

        ``snapshot=None`` is a current-state read: live versions only.
        """
        if snapshot is None:
            return meta.deleted_lsn is None
        return meta.created_lsn <= snapshot and \
            (meta.deleted_lsn is None or meta.deleted_lsn > snapshot)

    def _lifetime_at(self, slicing: str, key: object,
                     snapshot: int | None) -> int:
        """The slice lifetime as of *snapshot* (current when None)."""
        current = self._lifetimes.get((slicing, key), 0)
        if snapshot is None:
            return current
        resets = self._reset_lsns.get((slicing, key))
        if not resets:
            return current
        happened_after = len(resets) - bisect_right(resets, snapshot)
        return current - happened_after

    # -- transactions ------------------------------------------------------------

    def begin(self) -> Transaction:
        return self.transactions.begin()

    def commit(self, txn: Transaction) -> None:
        self.transactions.commit(txn)

    def abort(self, txn: Transaction) -> None:
        self.transactions.abort(txn)

    def apply_transaction(self, txn: Transaction) -> None:
        """Commit: publish the journal tail, log COMMIT, await durability.

        The durability wait happens *outside* the store latch — that is
        what lets the group-commit coordinator coalesce forces across
        concurrently committing transactions.  Applied-but-unforced
        state is safe to expose early: WAL forces are prefix-closed, so
        any later commit's force covers this one too.
        """
        timing = self.metrics.enabled
        started = time.perf_counter() if timing else 0.0
        commit_lsn = None
        with self._mutex:
            self._publish(txn)
            self._published_open.discard(txn.txn_id)
            if txn.logged_begin:
                self.wal.append(walmod.COMMIT, txn.txn_id)
                commit_lsn = self.wal.end_lsn()
            # The committing transaction stops reading here; dropping
            # its snapshot before the purge check keeps it from pinning
            # its own deletions past its commit.
            self._snapshots.pop(txn.txn_id, None)
            if self.mvcc and self._dead:
                # Opportunistic version GC on the commit path: with no
                # active snapshot pinning them, dead versions go
                # physical immediately — identical net state to 2PL's
                # in-place delete; under concurrency the horizon defers
                # exactly the versions some reader still needs.
                self.purge_dead_versions()
        if commit_lsn is not None:
            self.group_commit.commit(commit_lsn)
        if timing:
            self._commit_timer.observe(time.perf_counter() - started)

    def publish(self, txn: Transaction) -> None:
        """Chained-transaction boundary: log + apply the journal tail.

        The batch executor calls this after each batch member succeeds,
        making the member's effects visible to its batch-mates exactly
        as a per-message commit would — without forcing the log.  Once
        published, a span can no longer be rolled back, and the
        transaction *must* end in commit.
        """
        with self._mutex:
            self._publish(txn)
            if txn.published_through:
                self._published_open.add(txn.txn_id)
            if self.mvcc and txn.txn_id in self._snapshots:
                # A chained transaction reads each batch member at the
                # batch's current snapshot: refresh it past the member
                # just published so batch-mates observe its effects
                # exactly as per-message commits would (§3.1).
                txn.snapshot_lsn = self._visible_lsn
                self._snapshots[txn.txn_id] = self._visible_lsn

    def _publish(self, txn: Transaction) -> None:
        """Log and apply journal entries past the published cursor."""
        if txn.poisoned:
            raise TransactionError(
                f"txn {txn.txn_id} had a failed publish; its log suffix "
                f"is indeterminate and cannot be retried")
        suffix = txn.ops[txn.published_through:]
        if not suffix:
            return
        try:
            self._publish_suffix(txn, suffix)
        except BaseException:
            # The WAL may hold part of the suffix; a retry would append
            # it again (with fresh msg_ids) and recovery would
            # materialize duplicates.  The transaction is dead — drop it
            # from the open-chain set so checkpoints are not wedged
            # forever.  Members published before the failure stay
            # applied (each is a complete, consistent unit); without a
            # COMMIT record they survive only through a later
            # checkpoint, never through log replay.
            txn.poisoned = True
            self._published_open.discard(txn.txn_id)
            # A poisoned transaction never reaches commit/abort, so its
            # snapshot would pin the horizon forever — drop it here.
            self._snapshots.pop(txn.txn_id, None)
            raise

    def _publish_suffix(self, txn: Transaction, suffix: list) -> None:
        live, flags = _replay(suffix)
        rolled_back_sps = {entry.sp_id for entry in suffix
                           if isinstance(entry, RollbackToOp)}
        # A suffix with no surviving persistent work logs nothing at all
        # (the old no-persistent-effect rule) — dead spans are logged
        # faithfully only when they ride along with live work, which is
        # exactly the batch-with-one-failed-member shape.
        log_suffix = any(not isinstance(op, InsertOp) or op.persistent
                         for op in live)
        # Assign ids to every insert (even dead or non-persistent ones)
        # so log records and callers see stable ids.
        for entry in suffix:
            if isinstance(entry, InsertOp):
                entry.msg_id = self._next_msg_id
                self._next_msg_id += 1
        # Logging pass.  SAVEPOINT records are only needed when a
        # ROLLBACK_SP will reference them (rollbacks never cross publish
        # boundaries), and only once the span logs a real record.
        pending_sps: list[SavepointOp] = []
        appended_sps: set[int] = set()
        for entry in suffix:
            if not log_suffix:
                break
            if isinstance(entry, SavepointOp):
                if entry.sp_id in rolled_back_sps:
                    pending_sps.append(entry)
            elif isinstance(entry, RollbackToOp):
                pending_sps = [sp for sp in pending_sps
                               if sp.sp_id != entry.sp_id]
                if entry.sp_id in appended_sps:
                    self.wal.append(walmod.ROLLBACK_SP, txn.txn_id,
                                    sp=entry.sp_id)
            elif not isinstance(entry, InsertOp) or entry.persistent:
                if not txn.logged_begin:
                    self.wal.append(walmod.BEGIN, txn.txn_id)
                    txn.logged_begin = True
                for marker in pending_sps:
                    self.wal.append(walmod.SAVEPOINT, txn.txn_id,
                                    sp=marker.sp_id)
                    appended_sps.add(marker.sp_id)
                pending_sps.clear()
                self._log_op(txn.txn_id, entry)
        # Apply pass: surviving data ops only, after all records are
        # appended so page LSNs respect WAL-before-data.  The whole
        # suffix shares one version LSN — the span becomes visible
        # atomically under the latch, so snapshot readers see a commit
        # span entirely or not at all.  max() keeps the tag monotonic
        # when the suffix logged nothing (transient-only work).
        span_lsn = max(self._visible_lsn + 1, self.wal.end_lsn())
        for entry, live in zip(suffix, flags):
            if live and not isinstance(entry, (SavepointOp, RollbackToOp)):
                self._apply_op(entry, span_lsn)
        txn.published_through = len(txn.ops)
        self._visible_lsn = span_lsn

    def _log_op(self, txn_id: int, op) -> None:
        if isinstance(op, InsertOp):
            self.wal.append(
                walmod.MSG_INSERT, txn_id,
                msg_id=op.msg_id, queue=op.queue,
                payload=op.payload.decode("utf-8"),
                properties={k: encode_value(v)
                            for k, v in op.properties.items()},
                slices=[[s, _encode_key(k)] for s, k in op.slices])
        elif isinstance(op, MarkProcessedOp):
            self.wal.append(walmod.MSG_PROCESSED, txn_id, msg_id=op.msg_id)
        elif isinstance(op, SliceResetOp):
            self.wal.append(walmod.SLICE_RESET, txn_id,
                            slicing=op.slicing, key=_encode_key(op.key))
        elif isinstance(op, DeleteOp):
            if self.log_deletes:
                self.wal.append(walmod.MSG_DELETE, txn_id, msg_id=op.msg_id)
        else:
            raise StorageError(f"unknown operation {op!r}")

    def _apply_op(self, op, lsn: int) -> None:
        if isinstance(op, InsertOp):
            self._apply_insert(op.msg_id, op.queue, op.payload,
                               op.properties, op.slices, op.persistent,
                               created_lsn=lsn)
        elif isinstance(op, MarkProcessedOp):
            self._apply_processed(op.msg_id)
        elif isinstance(op, SliceResetOp):
            self._apply_reset(op.slicing, op.key, lsn=lsn)
        elif isinstance(op, DeleteOp):
            self._apply_delete(op.msg_id, lsn=lsn)

    # -- operation application (shared by commit and recovery redo) ----------------

    def _apply_insert(self, msg_id: int, queue: str, payload: bytes,
                      properties: dict[str, object],
                      slices: Iterable[tuple[str, object]],
                      persistent: bool = True,
                      created_lsn: int = 0) -> StoredMessage:
        seqno = self._next_seqno
        self._next_seqno += 1
        rid = self.heap.store(payload, lsn=self.wal.end_lsn())
        memberships = []
        for slicing, key in slices:
            key = _encode_key(key)
            lifetime = self._lifetimes.get((slicing, key), 0)
            memberships.append((slicing, key, lifetime))
            self._slice_index.insert((slicing, key, lifetime, seqno), msg_id)
        meta = StoredMessage(msg_id, queue, seqno, rid.as_tuple(),
                             dict(properties), memberships,
                             persistent=persistent,
                             created_lsn=created_lsn)
        self._catalog[msg_id] = meta
        self._queue_index.insert((queue, seqno), msg_id)
        self._index_properties(meta)
        self.stats.inserts += 1
        return meta

    def _index_properties(self, meta: StoredMessage) -> None:
        for (queue, prop), tree in self._property_indexes.items():
            if queue != meta.queue:
                continue
            value = meta.properties.get(prop)
            if value is None:
                continue
            tag, raw = encode_value(value)
            tree.insert((tag, raw, meta.seqno), meta.msg_id)

    def _unindex_properties(self, meta: StoredMessage) -> None:
        for (queue, prop), tree in self._property_indexes.items():
            if queue != meta.queue:
                continue
            value = meta.properties.get(prop)
            if value is None:
                continue
            tag, raw = encode_value(value)
            tree.delete((tag, raw, meta.seqno))

    def _apply_processed(self, msg_id: int) -> None:
        meta = self._catalog.get(msg_id)
        if meta is not None:
            meta.processed = True
            self.stats.processed_marks += 1

    def _apply_reset(self, slicing: str, key: object,
                     lsn: int = 0) -> None:
        key = _encode_key(key)
        self._lifetimes[(slicing, key)] = \
            self._lifetimes.get((slicing, key), 0) + 1
        if self.mvcc:
            self._reset_lsns.setdefault((slicing, key), []).append(lsn)
        self.stats.slice_resets += 1

    def _apply_delete(self, msg_id: int, lsn: int = 0) -> None:
        if self.mvcc:
            # Logical delete: the version stays scannable by snapshots
            # below *lsn* until the horizon passes it (then purged).
            meta = self._catalog.get(msg_id)
            if meta is None or meta.deleted_lsn is not None:
                return
            meta.deleted_lsn = lsn
            self._dead[msg_id] = lsn
            self.stats.deletes += 1
            return
        meta = self._catalog.pop(msg_id, None)
        if meta is None:
            return
        self.heap.delete(RID(*meta.rid), lsn=lsn)
        self._parse_cache.pop(msg_id, None)
        self._queue_index.delete((meta.queue, meta.seqno))
        for slicing, key, lifetime in meta.slices:
            self._slice_index.delete((slicing, key, lifetime, meta.seqno))
        self._unindex_properties(meta)
        self.stats.deletes += 1

    # -- reads ------------------------------------------------------------------------

    def get(self, msg_id: int,
            snapshot: int | None = None) -> Optional[StoredMessage]:
        with self._mutex:
            meta = self._catalog.get(msg_id)
            if meta is None or not self._visible(meta, snapshot):
                return None
            return meta

    def body_bytes(self, msg_id: int) -> bytes:
        with self._mutex:
            meta = self._catalog.get(msg_id)
            if meta is None:
                raise StorageError(f"no message {msg_id}")
            return self.heap.fetch(RID(*meta.rid))

    def body_text(self, msg_id: int) -> str:
        """The message body decoded once, shared through the cache."""
        return self._body_entry(msg_id)[0]

    def parsed_body(self, msg_id: int) -> Document:
        """The message body parsed once, shared by every reader.

        Messages are append-only (§4.1), so the parsed tree never goes
        stale while the message lives; deletion invalidates the entry.
        """
        entry = self._body_entry(msg_id)
        if entry[1] is not None:
            return entry[1]
        # Parse outside the latch: bodies are immutable, so a racing
        # duplicate parse is benign — the first published tree wins.
        document = parse_xml(entry[0])
        with self._mutex:
            if entry[1] is None:
                entry[1] = document
                self.stats.body_parses += 1
            return entry[1]

    def _body_entry(self, msg_id: int) -> list:
        """The cache entry [text, document|None] for a live message.

        Decoding (like parsing) happens outside the store latch so
        concurrent readers and writers are never serialized on it.
        """
        with self._mutex:
            entry = self._parse_cache.get(msg_id)
            if entry is not None:
                self.stats.parse_cache_hits += 1
                self._parse_cache.move_to_end(msg_id)
                return entry
            meta = self._catalog.get(msg_id)
            if meta is None:
                raise StorageError(f"no message {msg_id}")
            raw = self.heap.fetch(RID(*meta.rid))
        text = raw.decode("utf-8")
        with self._mutex:
            entry = self._parse_cache.get(msg_id)
            if entry is not None:
                # another reader published while we decoded
                self._parse_cache.move_to_end(msg_id)
                return entry
            entry = [text, None]
            if self.parse_cache_capacity > 0 and msg_id in self._catalog:
                # the catalog re-check keeps a concurrent delete from
                # being resurrected into the cache
                self._parse_cache[msg_id] = entry
                while len(self._parse_cache) > self.parse_cache_capacity:
                    self._parse_cache.popitem(last=False)
            return entry

    def queue_messages(self, queue: str,
                       snapshot: int | None = None) -> list[StoredMessage]:
        """Messages of a queue visible at *snapshot* (live when None),
        in arrival order."""
        with self._mutex:
            out = []
            for _, msg_id in self._queue_index.prefix_items((queue,)):
                meta = self._catalog.get(msg_id)
                if meta is not None and self._visible(meta, snapshot):
                    out.append(meta)
            return out

    def queue_depth(self, queue: str, snapshot: int | None = None) -> int:
        """Visible-message count of a queue.

        Counts straight off the queue index under the latch instead of
        materializing the full catalog-entry list.
        """
        with self._mutex:
            count = 0
            for _, msg_id in self._queue_index.prefix_items((queue,)):
                meta = self._catalog.get(msg_id)
                if meta is not None and self._visible(meta, snapshot):
                    count += 1
            return count

    def slice_lifetime(self, slicing: str, key: object) -> int:
        with self._mutex:
            return self._lifetimes.get((slicing, _encode_key(key)), 0)

    def slice_messages(self, slicing: str, key: object,
                       snapshot: int | None = None) -> list[StoredMessage]:
        """Messages of the slice's lifetime *as of the snapshot* (current
        when None), in arrival order.

        Uses the materialized B+-tree slice index (one range scan) — the
        §4.3 optimization.  ``slice_messages_scan`` is the unmaterialized
        baseline.
        """
        key = _encode_key(key)
        with self._mutex:
            lifetime = self._lifetime_at(slicing, key, snapshot)
            out = []
            for _, msg_id in self._slice_index.prefix_items(
                    (slicing, key, lifetime)):
                meta = self._catalog.get(msg_id)
                if meta is not None and self._visible(meta, snapshot):
                    out.append(meta)
            return out

    def slice_messages_scan(self, slicing: str, key: object,
                            snapshot: int | None = None
                            ) -> list[StoredMessage]:
        """Baseline slice access: full catalog scan (merged-query plan)."""
        key = _encode_key(key)
        with self._mutex:
            lifetime = self._lifetime_at(slicing, key, snapshot)
            out = [meta for meta in self._catalog.values()
                   if (slicing, key, lifetime) in meta.slices
                   and self._visible(meta, snapshot)]
            out.sort(key=lambda m: m.seqno)
            return out

    # -- property-value secondary indexes -------------------------------------------

    def create_property_index(self, queue: str, prop: str) -> None:
        """Register and build a ``(queue, property, value)`` index.

        Registration survives crashes of the in-memory structures
        (:meth:`recover` rebuilds registered indexes from the replayed
        catalog); creating an existing index is a no-op.
        """
        with self._mutex:
            if (queue, prop) in self._property_indexes:
                return
            tree = BPlusTree()
            self._property_indexes[(queue, prop)] = tree
            for _, msg_id in self._queue_index.prefix_items((queue,)):
                meta = self._catalog.get(msg_id)
                if meta is None:
                    continue
                value = meta.properties.get(prop)
                if value is None:
                    continue
                tag, raw = encode_value(value)
                tree.insert((tag, raw, meta.seqno), msg_id)

    def drop_property_index(self, queue: str, prop: str) -> None:
        with self._mutex:
            self._property_indexes.pop((queue, prop), None)

    def has_property_index(self, queue: str, prop: str) -> bool:
        with self._mutex:
            return (queue, prop) in self._property_indexes

    def property_indexes(self) -> list[tuple[str, str]]:
        with self._mutex:
            return sorted(self._property_indexes)

    def property_index_entries(self, queue: str, prop: str
                               ) -> list[tuple[tuple, int]]:
        """Dump one index's (normalized key, msg_id) pairs (tests/rebuild
        comparisons)."""
        with self._mutex:
            tree = self._property_indexes.get((queue, prop))
            if tree is None:
                raise StorageError(f"no index on ({queue!r}, {prop!r})")
            return tree.dump()

    def property_lookup(self, queue: str, prop: str, value: object,
                        snapshot: int | None = None
                        ) -> list[StoredMessage]:
        """Equality lookup through the secondary index: one range scan
        over ``(tag, raw)``, results in arrival order."""
        tag, raw = encode_value(value)
        with self._mutex:
            tree = self._property_indexes.get((queue, prop))
            if tree is None:
                raise StorageError(f"no index on ({queue!r}, {prop!r})")
            out = []
            for _, msg_id in tree.prefix_items((tag, raw)):
                meta = self._catalog.get(msg_id)
                if meta is not None and self._visible(meta, snapshot):
                    out.append(meta)
            return out

    def property_lookup_scan(self, queue: str, prop: str, value: object,
                             snapshot: int | None = None
                             ) -> list[StoredMessage]:
        """Baseline for :meth:`property_lookup`: full queue scan with a
        per-message property comparison (same typed-value encoding as the
        index, so both sides agree on e.g. ``1`` vs ``1.0`` vs ``true``)."""
        encoded = encode_value(value)
        with self._mutex:
            out = []
            for _, msg_id in self._queue_index.prefix_items((queue,)):
                meta = self._catalog.get(msg_id)
                if meta is None or not self._visible(meta, snapshot):
                    continue
                stored = meta.properties.get(prop)
                if stored is not None and encode_value(stored) == encoded:
                    out.append(meta)
            return out

    def export_queue_messages(self, queue: str
                              ) -> list[tuple[StoredMessage, bytes]]:
        """Handoff read for rebalancing: (catalog entry, body bytes) of
        every live message of *queue*, in arrival order.

        Under MVCC this reads a registered snapshot: the latch is held
        only briefly per message (the snapshot pins each visible version
        against purge), so a migrator no longer quiesces readers for the
        whole export.  Without MVCC it keeps the one-latch consistent
        cut.
        """
        if not self.mvcc:
            with self._mutex:
                out = []
                for _, msg_id in self._queue_index.prefix_items((queue,)):
                    meta = self._catalog.get(msg_id)
                    if meta is not None:
                        out.append((meta, self.heap.fetch(RID(*meta.rid))))
                return out
        with self.read_snapshot() as snapshot:
            metas = self.queue_messages(queue, snapshot=snapshot)
            out = []
            for meta in metas:
                with self._mutex:
                    if meta.msg_id in self._catalog:
                        out.append((meta, self.heap.fetch(RID(*meta.rid))))
            return out

    def unprocessed_messages(self) -> list[StoredMessage]:
        with self._mutex:
            out = [m for m in self._catalog.values()
                   if not m.processed and m.deleted_lsn is None]
            out.sort(key=lambda m: m.seqno)
            return out

    def message_count(self) -> int:
        """Live (visible-now) messages; dead versions awaiting purge do
        not count."""
        with self._mutex:
            return len(self._catalog) - len(self._dead)

    # -- retention / garbage collection -------------------------------------------------

    def is_retained(self, meta: StoredMessage) -> bool:
        """A processed message is retained while any membership is live."""
        for slicing, key, lifetime in meta.slices:
            if self._lifetimes.get((slicing, key), 0) == lifetime:
                return True
        return False

    def collect_garbage(self) -> int:
        """Delete processed, unretained messages (paper §2.3.3).

        Decoupled from processing: the engine calls this in the
        background or under low load.
        """
        with self._mutex:
            victims = [m for m in self._catalog.values()
                       if m.processed and m.deleted_lsn is None
                       and not self.is_retained(m)]
            if not victims:
                self.stats.gc_runs += 1
                if self.mvcc:
                    self.purge_dead_versions()
                return 0
            txn = self.begin()
            for meta in victims:
                txn.delete_message(meta.msg_id)
            self.commit(txn)
            if self.mvcc:
                # The retention-deletion commit is the version-GC hook:
                # everything below the horizon goes physical right here.
                self.purge_dead_versions()
            self.stats.gc_runs += 1
            self.stats.gc_deleted += len(victims)
            return len(victims)

    def purge_dead_versions(self, horizon: int | None = None) -> int:
        """Physically remove dead versions at or below the horizon.

        A version deleted at LSN *d* is unreachable once no active
        snapshot reads below *d*; then its catalog entry, heap record,
        and index entries can go.  Reset-LSN histories are trimmed the
        same way.  Returns the number of versions purged.
        """
        with self._mutex:
            if horizon is None:
                horizon = self.snapshot_horizon()
            if self._checkpoint_pin is not None:
                # A fuzzy checkpoint captured the catalog and is still
                # flushing pages: versions live in that snapshot must
                # keep their heap records until the checkpoint lands.
                horizon = min(horizon, self._checkpoint_pin)
            purged = 0
            if self._dead:
                victims = [msg_id for msg_id, lsn in self._dead.items()
                           if lsn <= horizon]
                for msg_id in victims:
                    self._purge_one(msg_id)
                purged = len(victims)
                self.stats.purged_versions += purged
            for key, resets in list(self._reset_lsns.items()):
                keep = [lsn for lsn in resets if lsn > horizon]
                if keep:
                    self._reset_lsns[key] = keep
                else:
                    del self._reset_lsns[key]
            return purged

    def _purge_one(self, msg_id: int) -> None:
        meta = self._catalog.pop(msg_id, None)
        deleted_lsn = self._dead.pop(msg_id, None)
        if meta is None:
            return
        self.heap.delete(RID(*meta.rid), lsn=deleted_lsn or 0)
        self._parse_cache.pop(msg_id, None)
        self._queue_index.delete((meta.queue, meta.seqno))
        for slicing, key, lifetime in meta.slices:
            self._slice_index.delete((slicing, key, lifetime, meta.seqno))
        self._unindex_properties(meta)

    # -- checkpoints and recovery ----------------------------------------------------------

    def _checkpoint_path(self) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, "checkpoint.json")

    def _snapshot_state(self) -> dict:
        """The catalog snapshot dict — caller holds the latch."""
        return {
            "next_msg_id": self._next_msg_id,
            "next_seqno": self._next_seqno,
            "next_txn": next_txn_id_hint(),
            "visible_lsn": self._visible_lsn,
            "lifetimes": [[s, k, v] for (s, k), v
                          in self._lifetimes.items()],
            "messages": [
                {
                    "msg_id": m.msg_id,
                    "queue": m.queue,
                    "seqno": m.seqno,
                    "rid": list(m.rid),
                    "properties": {k: encode_value(v)
                                   for k, v in m.properties.items()},
                    "slices": [[s, k, lt] for s, k, lt in m.slices],
                    "processed": m.processed,
                    "created_lsn": m.created_lsn,
                    "deleted_lsn": m.deleted_lsn,
                }
                for m in self._catalog.values() if m.persistent
            ],
        }

    def checkpoint(self) -> str:
        """Fuzzy checkpoint: snapshot under the latch, flush pages
        incrementally, then log CHECKPOINT.

        Returns ``"completed"``, ``"deferred"`` (a chained transaction
        has published uncommitted work — the scheduler retries), or
        ``"skipped"`` (in-memory store, nothing to checkpoint against).

        The snapshot and its LSN are captured in one latch acquisition
        (phase 1); dirty pages are then flushed one short latch
        acquisition at a time, so commits interleave with the page sweep
        instead of stalling behind one long ``flush_all`` (phase 2).
        Records appended during phase 2 land *after* the snapshot LSN
        and are replayed on recovery — replay is idempotent (inserts
        keyed by msg_id, processed/delete marks absorb repeats, heap
        deletes tolerate already-freed slots), so the fuzziness is
        invisible.  The CHECKPOINT record's ``wal_end`` is the snapshot
        LSN, not the append-time LSN: recovery must replay everything
        the snapshot did not see.
        """
        if self.directory is None:
            return "skipped"
        with self._checkpoint_lock:
            with self._mutex:
                if self._published_open:
                    self.stats.checkpoints_deferred += 1
                    return "deferred"
                if self.mvcc:
                    # Reclaim what the horizon allows first; versions
                    # still pinned by an active snapshot are
                    # checkpointed *with* their delete LSN so a restart
                    # keeps them dead (no snapshot survives a restart,
                    # so recovery purges them).
                    self.purge_dead_versions()
                checkpoint_lsn = self.wal.end_lsn()
                snapshot = self._snapshot_state()
                dirty = self.buffer.dirty_page_ids()
                self._checkpoint_pin = checkpoint_lsn
            try:
                for page_id in dirty:
                    # Brief per-page latch: a page image must not be
                    # copied mid-mutation, but commits may run between
                    # pages — that is the incremental part.
                    with self._mutex:
                        self.buffer.flush_page(page_id)
                self._disk.sync()
                tmp = self._checkpoint_path() + ".tmp"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(snapshot, fh)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self._checkpoint_path())
            finally:
                with self._mutex:
                    self._checkpoint_pin = None
            with self._mutex:
                self.wal.append(walmod.CHECKPOINT, None,
                                wal_end=checkpoint_lsn,
                                visible_lsn=snapshot["visible_lsn"])
                self.wal.flush()
                self.stats.checkpoints += 1
        return "completed"

    def truncate_wal(self, force: bool = False) -> int:
        """Physically drop the WAL prefix no longer needed; returns
        bytes dropped.

        The truncation point is ``min(checkpoint wal_end, version
        horizon, replica ack horizon)`` — everything below it is (a)
        reconstructible from the checkpoint, (b) invisible to every
        active snapshot, and (c) already held by every replica.  With
        ``force=True`` the replica constraint is dropped (the WAL
        ceiling breach case): a replica still needing the dropped prefix
        re-seeds from checkpoint state instead of holding the log
        hostage (DESIGN.md §10).
        """
        with self._mutex:
            checkpoint = self.wal.last_checkpoint()
            if checkpoint is None:
                return 0
            target = min(checkpoint.data["wal_end"],
                         self.snapshot_horizon())
            shipper = getattr(self.group_commit, "shipper", None)
            if shipper is not None and not force:
                acked = shipper.min_acked()
                if acked is not None:
                    target = min(target, acked)
            dropped = self.wal.truncate_prefix(target)
            if dropped:
                self.stats.wal_truncations += 1
                self.stats.wal_truncated_bytes += dropped
            return dropped

    # -- replica re-seed (truncated-past-the-horizon standby) -----------------------

    def export_reseed_state(self) -> tuple[int, dict]:
        """Capture ``(wal_end, state)`` for re-seeding a lagging replica.

        Unlike the checkpoint snapshot, the state carries message
        *bodies* (the replica has no pages.dat to read them from).
        Shipped bytes resume exactly at the returned LSN.
        """
        with self._mutex:
            state = self._snapshot_state()
            for raw in state["messages"]:
                body = self.heap.fetch(RID(*raw.pop("rid")))
                raw["body"] = base64.b64encode(body).decode("ascii")
            return self.wal.end_lsn(), state

    def install_state(self, state: dict) -> None:
        """Replace all store contents with re-seed *state* (standby)."""
        with self._mutex:
            self.buffer.drop_all()
            self._catalog.clear()
            self._parse_cache.clear()
            self._queue_index = BPlusTree()
            self._slice_index = BPlusTree()
            for pair in self._property_indexes:
                self._property_indexes[pair] = BPlusTree()
            self._lifetimes.clear()
            self._snapshots.clear()
            self._dead.clear()
            self._reset_lsns.clear()
            self.heap.reset_hints()
            self._next_msg_id = state["next_msg_id"]
            self._next_seqno = state["next_seqno"]
            self._visible_lsn = state["visible_lsn"]
            advance_txn_ids(state["next_txn"])
            for slicing, key, lifetime in state["lifetimes"]:
                self._lifetimes[(slicing, key)] = lifetime
            for raw in state["messages"]:
                body = base64.b64decode(raw["body"])
                rid = self.heap.store(body, lsn=self.wal.end_lsn())
                meta = StoredMessage(
                    msg_id=raw["msg_id"], queue=raw["queue"],
                    seqno=raw["seqno"], rid=rid.as_tuple(),
                    properties={k: decode_value(v)
                                for k, v in raw["properties"].items()},
                    slices=[(s, k, lt) for s, k, lt in raw["slices"]],
                    processed=raw["processed"],
                    created_lsn=raw.get("created_lsn", 0),
                    deleted_lsn=raw.get("deleted_lsn"))
                if meta.deleted_lsn is not None:
                    self._dead[meta.msg_id] = meta.deleted_lsn
                self._catalog[meta.msg_id] = meta
                self._queue_index.insert((meta.queue, meta.seqno),
                                         meta.msg_id)
                for slicing, key, lifetime in meta.slices:
                    self._slice_index.insert(
                        (slicing, key, lifetime, meta.seqno), meta.msg_id)
                self._index_properties(meta)

    def simulate_crash(self, lose_unflushed: bool = False) -> None:
        """Drop all volatile state (buffer pool + in-memory structures).

        Index *registrations* model the durable catalog (they come from
        the application definition), so they survive; contents rebuild
        in :meth:`recover`.

        ``lose_unflushed=True`` also discards the appended-but-unforced
        WAL tail, modelling a power cut under the ``async`` (and, for
        in-flight commits, ``group``) durability policies.  The flusher
        is halted *without* a final force first, so a background fsync
        cannot race the cut.
        """
        self.group_commit.close(flush=not lose_unflushed)
        if lose_unflushed:
            self.wal.discard_unflushed()
        self.group_commit = GroupCommitCoordinator(
            self.wal, self.durability,
            max_wait=self._group_commit_max_wait)
        with self._mutex:
            self.buffer.drop_all()
            self.heap.reset_hints()
            self._catalog.clear()
            self._parse_cache.clear()
            self._queue_index = BPlusTree()
            self._slice_index = BPlusTree()
            for pair in self._property_indexes:
                self._property_indexes[pair] = BPlusTree()
            self._lifetimes.clear()
            self._snapshots.clear()
            self._dead.clear()
            self._reset_lsns.clear()
            self._visible_lsn = 0

    def recover(self) -> None:
        """Restore state from the checkpoint (if any) plus the WAL tail."""
        started = time.perf_counter()
        with self._mutex:
            # Drop any torn tail physically: appends after recovery must
            # extend the valid log, not hide behind garbage.
            self.wal.truncate_torn_tail()
            self._published_open.clear()
            self.heap.reset_hints()
            self._catalog.clear()
            self._parse_cache.clear()
            self._queue_index = BPlusTree()
            self._slice_index = BPlusTree()
            for pair in self._property_indexes:
                self._property_indexes[pair] = BPlusTree()
            self._lifetimes.clear()
            self._snapshots.clear()
            self._dead.clear()
            self._reset_lsns.clear()
            self._visible_lsn = 0
            self._next_msg_id = 1
            self._next_seqno = 1

            replay_from = 0
            next_txn_floor = 1
            checkpoint = self.wal.last_checkpoint()
            if checkpoint is not None and os.path.exists(
                    self._checkpoint_path()):
                with open(self._checkpoint_path(), encoding="utf-8") as fh:
                    snapshot = json.load(fh)
                self._load_snapshot(snapshot)
                replay_from = checkpoint.data["wal_end"]
                next_txn_floor = snapshot.get("next_txn", 1)

            # Txn ids restart at 1 per process; move the counter past
            # every id in the log so a new COMMIT cannot recycle an old
            # loser's id and resurrect its records on the next replay.
            # Bounded: the checkpoint snapshot carries the id watermark
            # for everything below ``replay_from``, so only the tail is
            # scanned — recovery cost tracks the checkpoint interval,
            # not total log history.
            max_txn = 0
            for record in self.wal.records(replay_from):
                if record.txn is not None and record.txn > max_txn:
                    max_txn = record.txn
            if max_txn or next_txn_floor > 1:
                advance_txn_ids(max(max_txn + 1, next_txn_floor))

            analysis = walmod.analyze_records(self.wal.records(replay_from))
            replayed = 0
            for record in self.wal.records(replay_from):
                if record.txn is not None \
                        and record.txn not in analysis.committed:
                    continue
                if analysis.is_rolled_back(record):
                    # The span between SAVEPOINT and ROLLBACK_SP is a
                    # batch member that aborted alone: logged, dead.
                    continue
                replayed += 1
                self._redo(record)
            self.stats.recoveries += 1
            self.stats.replayed_records = replayed
            # No snapshot outlives a restart: everything that was dead
            # at the crash is below the (fresh) horizon — purge it now
            # so recovery lands on a fully compacted store.
            self._visible_lsn = max(self._visible_lsn, self.wal.end_lsn())
            if not self.log_deletes:
                # Derived deletion: recompute deletability instead of
                # replaying delete records (there are none).
                self.collect_garbage()
            if self.mvcc:
                self.purge_dead_versions()
            self.stats.last_recovery_seconds = time.perf_counter() - started

    def _load_snapshot(self, snapshot: dict) -> None:
        self._next_msg_id = snapshot["next_msg_id"]
        self._next_seqno = snapshot["next_seqno"]
        self._visible_lsn = snapshot.get("visible_lsn", 0)
        for slicing, key, lifetime in snapshot["lifetimes"]:
            self._lifetimes[(slicing, key)] = lifetime
        for raw in snapshot["messages"]:
            meta = StoredMessage(
                msg_id=raw["msg_id"], queue=raw["queue"], seqno=raw["seqno"],
                rid=tuple(raw["rid"]),
                properties={k: decode_value(v)
                            for k, v in raw["properties"].items()},
                slices=[(s, k, lt) for s, k, lt in raw["slices"]],
                processed=raw["processed"],
                created_lsn=raw.get("created_lsn", 0),
                deleted_lsn=raw.get("deleted_lsn"))
            if meta.deleted_lsn is not None:
                # Dead-but-pinned at checkpoint time; indexed below so
                # the post-replay purge can unhook it normally.
                self._dead[meta.msg_id] = meta.deleted_lsn
            self._catalog[meta.msg_id] = meta
            self._queue_index.insert((meta.queue, meta.seqno), meta.msg_id)
            for slicing, key, lifetime in meta.slices:
                self._slice_index.insert(
                    (slicing, key, lifetime, meta.seqno), meta.msg_id)
            self._index_properties(meta)

    def redo_record(self, record) -> None:
        """Apply one committed WAL record — replica continuous redo.

        The applier feeds records of committed transactions (minus
        rolled-back savepoint spans, which it analyzes itself) in log
        order; idempotence comes from the same guards recovery relies
        on (inserts keyed by msg_id, processed/delete marks absorbing
        repeats).
        """
        with self._mutex:
            self._redo(record)

    def finish_redo(self) -> None:
        """Seal a continuous-redo standby store for live service.

        Mirrors the tail of :meth:`recover`: snapshot visibility moves
        to the log end and anything dead below the fresh horizon is
        purged, so a promoted replica starts from a compacted store.
        """
        with self._mutex:
            self._visible_lsn = max(self._visible_lsn, self.wal.end_lsn())
            if not self.log_deletes:
                self.collect_garbage()
            if self.mvcc:
                self.purge_dead_versions()

    def _redo(self, record) -> None:
        # Version tags replay from the record's own LSN — that is what
        # makes versioned index entries identical across crash recovery
        # and torn-tail truncation (a truncated record simply never
        # created or deleted its version).
        if record.type == walmod.MSG_INSERT:
            data = record.data
            if data["msg_id"] in self._catalog:
                return  # idempotent redo
            self._apply_insert(
                data["msg_id"], data["queue"],
                data["payload"].encode("utf-8"),
                {k: decode_value(v) for k, v in data["properties"].items()},
                [(s, k) for s, k in data["slices"]],
                created_lsn=record.lsn)
            self._next_msg_id = max(self._next_msg_id, data["msg_id"] + 1)
        elif record.type == walmod.MSG_PROCESSED:
            self._apply_processed(record.data["msg_id"])
        elif record.type == walmod.SLICE_RESET:
            self._apply_reset(record.data["slicing"], record.data["key"],
                              lsn=record.lsn)
        elif record.type == walmod.MSG_DELETE:
            self._apply_delete(record.data["msg_id"], lsn=record.lsn)
        # BEGIN/COMMIT/ABORT/CHECKPOINT/SAVEPOINT/ROLLBACK_SP carry no
        # redo work of their own.

    def close(self) -> None:
        # Quiesce the flusher before the latch: a background force must
        # not race the final buffer flush / file close.
        self.group_commit.close()
        with self._mutex:
            self.buffer.flush_all()
            self.wal.close()
            self._disk.close()
