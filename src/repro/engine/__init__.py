"""The Demaq rule engine: compiler, scheduler, executor, server."""

from .compiler import (CompiledApplication, CompiledRule, QueuePlan,
                       compile_rules, element_names)
from .environment import RuleEnvironment
from .errors import (APPLICATION, DISCONNECTED, MESSAGE, NETWORK, SYSTEM,
                     TIMEOUT, EngineError, build_error_message,
                     resolve_error_queue)
from .executor import ExecutionStatistics, RuleExecutor
from .locking import LockingPolicy
from .scheduler import Scheduler
from .server import DemaqServer, run_cluster

__all__ = [
    "CompiledApplication", "CompiledRule", "QueuePlan", "compile_rules",
    "element_names",
    "RuleEnvironment",
    "APPLICATION", "DISCONNECTED", "MESSAGE", "NETWORK", "SYSTEM", "TIMEOUT",
    "EngineError", "build_error_message", "resolve_error_queue",
    "ExecutionStatistics", "RuleExecutor",
    "LockingPolicy",
    "Scheduler",
    "DemaqServer", "run_cluster",
]
