"""Locking policies: queue-granularity vs slice-granularity (paper §4.3).

The slice policy takes intention locks on queues and real locks on the
affected slices, so transactions touching *different* slices of one queue
run concurrently; the queue policy locks whole queues.  ``bench_locking``
compares the two under contention — the paper's claimed win.

With ``mvcc=True`` the read-lock methods are no-ops: readers scan a
consistent store snapshot instead, and only write locks (enqueue,
processed-mark, slice reset) remain — reader/writer deadlocks disappear
by construction.  ``bench_mvcc`` measures that.
"""

from __future__ import annotations

from ..storage.locks import IS, IX, S, X, LockManager


class LockingPolicy:
    """Acquires locks for reads/writes at a chosen granularity."""

    def __init__(self, locks: LockManager, granularity: str = "slice",
                 timeout: float | None = None, mvcc: bool = False):
        if granularity not in ("queue", "slice"):
            raise ValueError(f"unknown lock granularity {granularity!r}")
        self.locks = locks
        self.granularity = granularity
        self.timeout = timeout
        self.mvcc = mvcc

    # -- reads ---------------------------------------------------------------

    def lock_queue_read(self, txn_id: int, queue: str) -> None:
        if self.mvcc:
            return      # snapshot reads need no S locks
        self.locks.acquire(txn_id, ("queue", queue), S, self.timeout)

    def lock_slice_read(self, txn_id: int, slicing: str, key: object) -> None:
        if self.mvcc:
            return      # snapshot reads need no S locks
        if self.granularity == "queue":
            # Coarse mode has no slice resources; serialize on the slicing.
            self.locks.acquire(txn_id, ("slicing", slicing), S, self.timeout)
        else:
            self.locks.acquire(txn_id, ("slicing", slicing), IS, self.timeout)
            self.locks.acquire(txn_id, ("slice", slicing, str(key)), S,
                               self.timeout)

    # -- writes ---------------------------------------------------------------

    def lock_queue_write(self, txn_id: int, queue: str) -> None:
        if self.granularity == "queue":
            self.locks.acquire(txn_id, ("queue", queue), X, self.timeout)
        else:
            self.locks.acquire(txn_id, ("queue", queue), IX, self.timeout)

    def lock_slice_write(self, txn_id: int, slicing: str,
                         key: object) -> None:
        if self.granularity == "queue":
            self.locks.acquire(txn_id, ("slicing", slicing), X, self.timeout)
        else:
            self.locks.acquire(txn_id, ("slicing", slicing), IX, self.timeout)
            self.locks.acquire(txn_id, ("slice", slicing, str(key)), X,
                               self.timeout)

    def release(self, txn_id: int) -> None:
        self.locks.release_all(txn_id)
