"""The rule-evaluation environment: glue between qs: functions and the
engine state, with lock acquisition on every read the rule performs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..xquery import Environment
from ..xquery.atomics import XSDateTime
from ..xquery.errors import DynamicError

if TYPE_CHECKING:  # pragma: no cover
    from ..queues import Message
    from .server import DemaqServer


class RuleEnvironment(Environment):
    """Environment for evaluating one rule against one message."""

    def __init__(self, server: "DemaqServer", message: "Message",
                 txn_id: int,
                 slicing: str | None = None,
                 slice_key: object | None = None,
                 snapshot: int | None = None):
        self.server = server
        self.msg = message
        self.txn_id = txn_id
        self.slicing = slicing
        self._slice_key = slice_key
        #: MVCC snapshot LSN every qs: read runs at (None under 2PL,
        #: where the read locks below provide isolation instead).
        self.snapshot = snapshot

    # -- qs: hooks ---------------------------------------------------------------

    def message(self):
        return self.msg.body

    def queue(self, name: Optional[str]):
        if name is None:
            name = self.msg.queue
        if name not in self.server.app.queues:
            raise DynamicError(f"qs:queue(): unknown queue {name!r}")
        self.server.locking.lock_queue_read(self.txn_id, name)
        return [m.body for m in
                self.server.live_messages(name, snapshot=self.snapshot)]

    def queue_lookup(self, name: str, prop: str, values):
        """Index-backed equality read over one queue's messages.

        Takes the same read lock as a full ``qs:queue()`` scan — the
        index is an access path, not a weaker isolation level.
        """
        if name not in self.server.app.queues:
            raise DynamicError(f"qs:queue-index(): unknown queue {name!r}")
        if not self.server.store.has_property_index(name, prop):
            # A hand-written qs:queue-index() on an unindexed pair is a
            # dynamic error like any other, routed to the error queue —
            # not a storage fault that kills the processing loop.
            raise DynamicError(
                f"qs:queue-index(): no index on queue {name!r} "
                f"property {prop!r}")
        self.server.locking.lock_queue_read(self.txn_id, name)
        return [m.body for m in
                self.server.indexed_live_messages(name, prop, values,
                                                  snapshot=self.snapshot)]

    def slice_messages(self):
        if self.slicing is None:
            raise DynamicError(
                "qs:slice() is only available in rules defined on slicings")
        self.server.locking.lock_slice_read(self.txn_id, self.slicing,
                                            self._slice_key)
        return [m.body for m in
                self.server.slice_live_messages(self.slicing,
                                                self._slice_key,
                                                snapshot=self.snapshot)]

    def slice_key(self):
        if self.slicing is None:
            raise DynamicError(
                "qs:slicekey() is only available in rules defined on "
                "slicings")
        return self._slice_key

    def property(self, name: str):
        return self.msg.property(name)

    def collection(self, name: str):
        return self.server.collection_documents(name)

    def current_datetime(self) -> XSDateTime:
        return self.server.clock.now_datetime()
