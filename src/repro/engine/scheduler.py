"""The message scheduler (paper §3.1, §4.4.2).

"The scheduler maintains a list of all unprocessed messages and chooses
the next message to be handled, considering both their temporal ordering
and the priority of the containing queues.  Thus, a message in a high
priority queue may be processed before another one stored in a queue
with a lower priority, even if it has been created more recently."
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field

from ..qdl.model import Application


@dataclass(order=True)
class _Entry:
    neg_priority: int
    seqno: int
    msg_id: int = field(compare=False)
    queue: str = field(compare=False, default="")


class Scheduler:
    """Priority-then-FIFO scheduling of unprocessed messages."""

    def __init__(self, app: Application):
        self.app = app
        self._heap: list[_Entry] = []
        self._enqueued: set[int] = set()
        self._lock = threading.Lock()
        #: Queue priorities are snapshotted at construction: the engine
        #: rebuilds the scheduler on (re)deployment, so a heap entry
        #: never mixes priorities from two application versions.
        self._priorities: dict[str, int] = {
            name: queue.priority for name, queue in app.queues.items()}
        self.scheduled = 0
        self.dispatched = 0
        self.requeues = 0
        #: Per-queue counts of entries currently in the heap, maintained
        #: incrementally so depth gauges are O(#queues) reads under the
        #: scheduler lock — never the store latch, never O(depth).
        self._depths: dict[str, int] = {}

    def queue_priority(self, queue: str) -> int:
        return self._priorities.get(queue, 0)

    def notify(self, msg_id: int, queue: str, seqno: int) -> None:
        """Make a new unprocessed message known to the scheduler."""
        with self._lock:
            if msg_id in self._enqueued:
                return
            self._enqueued.add(msg_id)
            heapq.heappush(self._heap,
                           _Entry(-self.queue_priority(queue), seqno,
                                  msg_id, queue))
            self.scheduled += 1
            self._depths[queue] = self._depths.get(queue, 0) + 1

    def next_message(self) -> int | None:
        """Pop the most urgent unprocessed message id."""
        batch = self.next_batch(1)
        return batch[0] if batch else None

    def next_batch(self, limit: int) -> list[int]:
        """Pop up to *limit* message ids in scheduling order.

        Exactly the order ``limit`` successive :meth:`next_message`
        calls would produce — priority first, arrival second — so batch
        execution preserves the §4.4.2 scheduling contract; requeued
        messages re-enter through the same heap and are picked the same
        way.
        """
        with self._lock:
            batch: list[int] = []
            while self._heap and len(batch) < limit:
                entry = heapq.heappop(self._heap)
                self._enqueued.discard(entry.msg_id)
                batch.append(entry.msg_id)
                depth = self._depths.get(entry.queue, 0) - 1
                if depth > 0:
                    self._depths[entry.queue] = depth
                else:
                    self._depths.pop(entry.queue, None)
            self.dispatched += len(batch)
            return batch

    def requeue(self, msg_id: int, queue: str, seqno: int) -> None:
        """Put a message back (e.g. after a deadlock abort).

        Tracked in ``requeues`` (not ``scheduled``), so the counters
        stay consistent: scheduled + requeues == dispatched + backlog.
        """
        with self._lock:
            if msg_id in self._enqueued:
                return
            self._enqueued.add(msg_id)
            heapq.heappush(self._heap,
                           _Entry(-self.queue_priority(queue), seqno,
                                  msg_id, queue))
            self.requeues += 1
            self._depths[queue] = self._depths.get(queue, 0) + 1

    def has_work(self) -> bool:
        with self._lock:
            return bool(self._heap)

    def backlog(self) -> int:
        with self._lock:
            return len(self._heap)

    def backlog_for(self, queue: str) -> int:
        """Unprocessed-entry count for one queue (metrics gauge path)."""
        with self._lock:
            return self._depths.get(queue, 0)

    def queue_backlogs(self) -> dict[str, int]:
        """Snapshot of per-queue backlog counts (queues at zero omitted)."""
        with self._lock:
            return dict(self._depths)
