"""Error handling as messages (paper §3.6).

"Like all other events in the Demaq system, errors are represented by
XML messages sent to error queues."  This module builds those messages
and resolves the error queue for a failure, walking the paper's
escalation chain: rule level → queue level → module/system level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..qdl.model import Application
from ..xmldm import Document, Element, Text, deep_copy

if TYPE_CHECKING:  # pragma: no cover
    from ..queues import Message

#: Error kinds (the §3.6 taxonomy).
APPLICATION = "applicationError"
MESSAGE = "messageError"
NETWORK = "networkError"
SYSTEM = "systemError"

#: Specific network failure markers (Fig. 10 matches on these elements).
DISCONNECTED = "disconnectedTransport"
TIMEOUT = "deliveryTimeout"


class EngineError(Exception):
    """An unhandled engine failure (no error queue was configured)."""


def build_error_message(kind: str, description: str,
                        rule: str | None = None,
                        queue: str | None = None,
                        marker: str | None = None,
                        code: str | None = None,
                        initial_message: "Message | Document | None" = None
                        ) -> Document:
    """Construct the error document per the predefined schema.

    Shape (matching the Fig. 10 access patterns
    ``/error/disconnectedTransport`` and
    ``/error/initialMessage//orderID``)::

        <error>
          <applicationError/>            <!-- kind marker -->
          <disconnectedTransport/>       <!-- optional specific marker -->
          <code>err:XPDY0002</code>
          <description>…</description>
          <rule>checkPayment</rule>
          <queue>finance</queue>
          <initialMessage>…copy of the triggering body…</initialMessage>
        </error>
    """
    error = Element("error")
    error.append(Element(kind))
    if marker:
        error.append(Element(marker))
    if code:
        error.append(Element("code", children=[Text(code)]))
    error.append(Element("description", children=[Text(description)]))
    if rule:
        error.append(Element("rule", children=[Text(rule)]))
    if queue:
        error.append(Element("queue", children=[Text(queue)]))
    if initial_message is not None:
        body = (initial_message.body
                if hasattr(initial_message, "body") else initial_message)
        wrapper = Element("initialMessage")
        root = body.root_element if isinstance(body, Document) else body
        if root is not None:
            wrapper.append(deep_copy(root))
        error.append(wrapper)
    return Document([error])


def resolve_error_queue(app: Application,
                        rule_name: str | None = None,
                        queue_name: str | None = None) -> Optional[str]:
    """The paper's escalation: rule errorqueue > queue errorqueue > system."""
    if rule_name is not None:
        for rule in app.rules:
            if rule.name == rule_name and rule.error_queue:
                return rule.error_queue
    if queue_name is not None:
        queue = app.queues.get(queue_name)
        if queue is not None and queue.error_queue:
            return queue.error_queue
    return app.system_error_queue
