"""The Demaq server (paper Fig. 1, §4).

Wires every subsystem together: compiled application, message store,
lock manager, scheduler, rule executor, echo timers, gateway
communication, collections, and garbage collection.  One instance is one
Active Web node; several instances connected through a
:class:`~repro.network.Network` form a distributed application.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..config import read_field
from ..network import (Network, build_envelope, is_reserved_endpoint,
                       parse_envelope, parse_wsdl)
from ..obs import TRACE_PROPERTY, MetricsRegistry, Tracer
from ..qdl import Application, compile_application
from ..qdl.model import QueueDef, QueueKind
from ..queues import (Clock, EchoService, Message, PropertyError,
                      PropertyResolver, VirtualClock)
from ..storage import CheckpointScheduler, LockManager, MessageStore
from ..storage.transactions import InsertOp
from ..xmldm import Document, XMLError, parse
from ..xquery.atomics import (UntypedAtomic, XSDateTime, cast_atomic,
                              cast_to_double, is_numeric)
from ..xquery.errors import DynamicError, XQueryError
from . import errors as err
from .compiler import compile_rules
from .executor import RuleExecutor
from .locking import LockingPolicy
from .scheduler import Scheduler

_HANDLE_COUNTER = itertools.count(1)

#: Properties consumed by the system; not forwarded by echo/gateway relays.
_INTERNAL_PROPERTIES = frozenset(
    {"timeout", "target", "creationTime", "creatingRule", "sourceQueue"})

_MAX_RELIABLE_ATTEMPTS = 16


class DemaqServer:
    """One Demaq node executing a declarative application."""

    def __init__(self, app: Application | str,
                 data_dir: str | None = None,
                 clock: Clock | None = None,
                 network: Network | None = None,
                 name: str = "demaq",
                 lock_granularity: str = "slice",
                 optimize_rules: bool = True,
                 sync_commits: bool = True,
                 log_deletes: bool = True,
                 buffer_capacity: int = 256,
                 lock_timeout: float | None = None,
                 register_gateways: bool = True,
                 durability: str | None = None,
                 batch_size: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 mvcc: bool | None = None,
                 store: MessageStore | None = None):
        if isinstance(app, str):
            app = compile_application(app)
        self.app = app
        self.name = name
        self.clock = clock or VirtualClock()
        self.network = network
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(node=name)
        if batch_size is None:
            batch_size = read_field("batch_size")
        if batch_size < 1:
            raise err.EngineError(f"batch_size must be >= 1, got {batch_size}")
        #: How many scheduler picks one execution step may run inside a
        #: single chained, group-committed transaction (§3.1 batching).
        self.batch_size = batch_size
        if lock_timeout is None:
            # DEMAQ_LOCK_TIMEOUT replaces the old hard-coded 10s: how
            # long a blocked lock request waits before the member is
            # rolled back and retried.
            lock_timeout = read_field("lock_timeout")
        if store is not None:
            # Replica promotion hands in a standby store whose state
            # was built by continuous redo — adopt it instead of
            # constructing (and recovering) a fresh one.
            self.store = store
        else:
            self.store = MessageStore(data_dir,
                                      buffer_capacity=buffer_capacity,
                                      sync_commits=sync_commits,
                                      log_deletes=log_deletes,
                                      durability=durability,
                                      metrics=self.metrics,
                                      mvcc=mvcc)
        #: Epoch fencing (DESIGN.md §9): a zombie primary whose shard
        #: was promoted elsewhere refuses every ingest once fenced.
        self.fenced = False
        #: Endurance operation (DESIGN.md §10): ticked from the work
        #: loop; inert unless a checkpoint knob is configured.
        self.checkpoints = CheckpointScheduler(
            self.store,
            interval_bytes=read_field("checkpoint_interval_bytes"),
            interval_seconds=read_field("checkpoint_interval_seconds"),
            wal_ceiling_bytes=read_field("wal_ceiling_bytes"),
            truncate=read_field("wal_truncate"))
        self.locks = LockManager(lock_timeout)
        self.locking = LockingPolicy(self.locks, lock_granularity,
                                     lock_timeout, mvcc=self.store.mvcc)
        if self.metrics.enabled:
            self.locks.wait_timer = self.metrics.histogram(
                "demaq_lock_wait_seconds",
                "Blocked lock-acquisition wait time")
        self.resolver = PropertyResolver(app)
        for index in app.indexes.values():
            self.store.create_property_index(index.queue,
                                             index.property_name)
        self.compiled = compile_rules(app, optimize=optimize_rules)
        self.scheduler = Scheduler(app)
        self.executor = RuleExecutor(self)
        self.echo = EchoService(self.clock)
        self.collections: dict[str, list[Document]] = {
            name: [] for name in app.collections}
        self.unhandled_errors: list[Document] = []
        self._pending_sends: list[int] = []
        self._send_attempts: dict[int, int] = {}
        self._wsdl_sources: dict[str, str] = {}
        self._register_collectors()
        self._bootstrap()
        if network is not None and register_gateways:
            self._register_incoming_gateways()

    def _register_collectors(self) -> None:
        """Expose scheduler/lock/server state as pull metrics.

        Collectors read through ``self`` so they survive
        ``crash_and_recover`` rebuilding the scheduler underneath them.
        """
        registry = self.metrics
        registry.collect("demaq_scheduler_scheduled_total",
                         lambda: self.scheduler.scheduled,
                         help="Messages handed to the scheduler")
        registry.collect("demaq_scheduler_dispatched_total",
                         lambda: self.scheduler.dispatched,
                         help="Messages popped for execution")
        registry.collect("demaq_scheduler_requeues_total",
                         lambda: self.scheduler.requeues,
                         help="Messages put back after an abort")
        registry.collect("demaq_scheduler_backlog",
                         lambda: self.scheduler.backlog(), kind="gauge",
                         help="Unprocessed messages awaiting dispatch")
        for queue in self.app.queues:
            registry.collect(
                "demaq_scheduler_queue_backlog",
                lambda q=queue: self.scheduler.backlog_for(q),
                kind="gauge", help="Per-queue scheduler backlog",
                queue=queue)
        registry.collect("demaq_locks_acquisitions_total",
                         lambda: self.locks.acquisitions,
                         help="Lock acquisitions granted")
        registry.collect("demaq_locks_waits_total",
                         lambda: self.locks.waits,
                         help="Lock requests that had to wait")
        registry.collect("demaq_locks_deadlocks_total",
                         lambda: self.locks.deadlocks,
                         help="Deadlocks detected and broken")
        registry.collect("demaq_server_pending_sends",
                         lambda: len(self._pending_sends), kind="gauge",
                         help="Outgoing-gateway sends awaiting initiation")
        registry.collect("demaq_server_unhandled_errors",
                         lambda: len(self.unhandled_errors), kind="gauge",
                         help="Error documents with no resolvable queue")

    # -- deployment helpers --------------------------------------------------------

    def register_wsdl(self, file_name: str, source: str) -> None:
        """Supply the content of a WSDL file referenced by a gateway."""
        parse_wsdl(source)   # validate eagerly
        self._wsdl_sources[file_name] = source

    def load_collection(self, name: str,
                        documents: Iterable[str | Document]) -> None:
        """Load master data accessed via ``fn:collection`` (§3.5.2)."""
        docs = [parse(d) if isinstance(d, str) else d for d in documents]
        self.collections.setdefault(name, []).extend(docs)

    def collection_documents(self, name: str) -> list[Document]:
        if name not in self.collections:
            raise DynamicError(f"no collection {name!r} is available")
        return list(self.collections[name])

    # -- external message injection ----------------------------------------------------

    def enqueue(self, queue: str, body: str | Document,
                properties: dict[str, object] | None = None) -> int:
        """Inject a message from outside (tests, examples, drivers).

        Schema violations raise synchronously — an external producer gets
        the error directly rather than via an error queue.
        """
        document = parse(body) if isinstance(body, str) else body
        txn = self.store.begin()
        try:
            self.executor.enqueue_in_txn(txn, queue, document,
                                         explicit=properties)
            self.store.commit(txn)
        except Exception:
            if txn.state.value == "active":
                self.store.abort(txn)
            raise
        finally:
            self.locking.release(txn.txn_id)
        self.after_commit(txn)
        return next(op.msg_id for op in txn.ops if isinstance(op, InsertOp))

    def request(self, queue: str, body: str | Document,
                properties: dict[str, object] | None = None
                ) -> Optional[Document]:
        """Synchronous request/response via connection handles (§2.2).

        Enqueues the request with a fresh ``connectionHandle``, runs the
        server to quiescence, and returns the first reply carrying the
        same handle in an outgoing gateway queue.
        """
        handle = f"conn-{next(_HANDLE_COUNTER)}"
        merged = dict(properties or {})
        merged["connectionHandle"] = handle
        self.enqueue(queue, body, merged)
        self.run_until_idle()
        for queue_def in self.app.queues.values():
            if queue_def.kind is not QueueKind.OUTGOING_GATEWAY:
                continue
            for message in self.live_messages(queue_def.name):
                if message.property("connectionHandle") == handle:
                    return message.body
        return None

    # -- post-commit dispatch -------------------------------------------------------------

    def after_commit(self, txn) -> None:
        """Register every inserted message with the right subsystem."""
        tracer = self.tracer if self.tracer.enabled else None
        for op in txn.ops:
            if not isinstance(op, InsertOp) or op.msg_id is None:
                continue
            meta = self.store.get(op.msg_id)
            if meta is None:
                continue
            if tracer is not None:
                tracer.record(meta.properties.get(TRACE_PROPERTY),
                              "enqueued", queue=meta.queue,
                              msg_id=meta.msg_id)
            queue_def = self.app.queues.get(op.queue)
            if queue_def is None:
                continue
            if queue_def.kind is QueueKind.ECHO:
                self._schedule_echo(meta)
            elif queue_def.kind is QueueKind.OUTGOING_GATEWAY:
                self._pending_sends.append(meta.msg_id)
            self.scheduler.notify(meta.msg_id, meta.queue, meta.seqno)

    def _schedule_echo(self, meta) -> None:
        target = meta.properties.get("target")
        if not isinstance(target, str) or target not in self.app.queues:
            self._report_error(err.build_error_message(
                err.MESSAGE,
                f"echo message {meta.msg_id} has no valid 'target' property",
                queue=meta.queue,
                initial_message=Message(meta, self.store)),
                None, meta.queue,
                trace=meta.properties.get(TRACE_PROPERTY))
            return
        timeout = meta.properties.get("timeout", 0)
        try:
            seconds = cast_to_double(timeout)
        except Exception:
            seconds = 0.0
        self.echo.schedule(meta.msg_id, seconds, target)

    # -- the execution loop ------------------------------------------------------------------

    def step_local(self) -> bool:
        """One unit of *node-local* work; False when locally idle.

        Everything but the shared network pump: rule processing, echo
        deliveries, and gateway send initiation.  The cluster driver
        runs this concurrently per node and pumps the network itself at
        a barrier, so node threads never touch each other's stores.
        """
        batch = self.scheduler.next_batch(self.batch_size)
        if batch:
            for msg_id in self.executor.process_batch(batch):
                meta = self.store.get(msg_id)
                if meta is not None:
                    self.scheduler.requeue(msg_id, meta.queue, meta.seqno)
            return True
        due = self.echo.due_deliveries()
        if due:
            for msg_id, target in due:
                self._deliver_echo(msg_id, target)
            return True
        if self._pending_sends:
            self._initiate_sends()
            return True
        return False

    def step(self) -> bool:
        """Do one unit of work; False when idle."""
        if self.step_local():
            return True
        if self.network is not None and self.network.pump():
            return True
        return False

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Process work until quiescent; returns the number of steps."""
        steps = 0
        while steps < max_steps and self.step():
            steps += 1
            self.checkpoints.maybe_run()
        # One idle tick so the clock trigger fires on a quiet node too.
        self.checkpoints.maybe_run()
        return steps

    def advance_time(self, seconds: float) -> int:
        """Advance the virtual clock, then drain newly due work."""
        if isinstance(self.clock, VirtualClock):
            self.clock.advance(seconds)
        return self.run_until_idle()

    # -- echo delivery ----------------------------------------------------------------------

    def _deliver_echo(self, msg_id: int, target: str) -> None:
        meta = self.store.get(msg_id)
        if meta is None:
            return
        message = Message(meta, self.store)
        txn = self.store.begin()
        try:
            explicit = self._forwardable_properties(target,
                                                    message.properties)
            self.executor.enqueue_in_txn(txn, target, message.body,
                                         explicit=explicit, trigger=message)
            txn.mark_processed(msg_id)
            self.store.commit(txn)
        except (PropertyError, XMLError) as exc:
            self.store.abort(txn)
            self.locking.release(txn.txn_id)
            self._report_error(err.build_error_message(
                err.MESSAGE, str(exc), queue=meta.queue,
                initial_message=message), None, meta.queue,
                trace=meta.properties.get(TRACE_PROPERTY))
            return
        finally:
            if txn.state.value == "active":
                self.store.abort(txn)
            self.locking.release(txn.txn_id)
        self.after_commit(txn)

    def _forwardable_properties(self, queue: str,
                                properties: dict[str, object]
                                ) -> dict[str, object]:
        """Ad-hoc properties a relay passes along (fixed ones recompute)."""
        out = {}
        for name, value in properties.items():
            if name in _INTERNAL_PROPERTIES:
                continue
            declared = self.app.properties.get(name)
            if declared is not None and declared.fixed:
                continue
            out[name] = value
        return out

    # -- gateway sending ------------------------------------------------------------------------

    def _endpoint_for(self, queue_def: QueueDef) -> str | None:
        if queue_def.endpoint:
            return queue_def.endpoint
        if queue_def.interface and queue_def.interface in self._wsdl_sources:
            interface = parse_wsdl(self._wsdl_sources[queue_def.interface])
            if queue_def.port:
                return interface.port(queue_def.port).address
        return None

    def _initiate_sends(self) -> None:
        pending, self._pending_sends = self._pending_sends, []
        for msg_id in pending:
            self._send_one(msg_id)

    def _send_one(self, msg_id: int) -> None:
        meta = self.store.get(msg_id)
        if meta is None or meta.processed:
            return
        message = Message(meta, self.store)
        queue_def = self.app.queues[meta.queue]
        endpoint = self._endpoint_for(queue_def)
        if self.network is None or endpoint is None:
            self._send_failed(msg_id, err.DISCONNECTED)
            return
        if queue_def.interface in self._wsdl_sources and queue_def.port:
            interface = parse_wsdl(self._wsdl_sources[queue_def.interface])
            root = message.body.root_element
            if root is not None and not interface.port(
                    queue_def.port).accepts(root.name.local_name):
                self._report_error(err.build_error_message(
                    err.MESSAGE,
                    f"<{root.name.local_name}> matches no operation of "
                    f"port {queue_def.port!r}", queue=meta.queue,
                    initial_message=message), None, meta.queue,
                    trace=meta.properties.get(TRACE_PROPERTY))
                self._mark_processed(msg_id)
                return
        envelope = build_envelope(message.body, message.properties)
        self.network.send(
            endpoint, envelope, source=f"demaq://{self.name}",
            on_delivered=lambda: self._delivered(msg_id),
            on_failed=lambda marker: self._send_failed(msg_id, marker))

    def _delivered(self, msg_id: int) -> None:
        if self.tracer.enabled:
            meta = self.store.get(msg_id)
            if meta is not None:
                self.tracer.record(meta.properties.get(TRACE_PROPERTY),
                                   "delivered", queue=meta.queue,
                                   msg_id=msg_id)
        self._mark_processed(msg_id)

    def _mark_processed(self, msg_id: int) -> None:
        meta = self.store.get(msg_id)
        if meta is None or meta.processed:
            return
        txn = self.store.begin()
        txn.mark_processed(msg_id)
        self.store.commit(txn)
        self.locking.release(txn.txn_id)

    def _send_failed(self, msg_id: int, marker: str) -> None:
        meta = self.store.get(msg_id)
        if meta is None:
            return
        queue_def = self.app.queues[meta.queue]
        if self.tracer.enabled:
            self.tracer.record(meta.properties.get(TRACE_PROPERTY),
                               "failed", queue=meta.queue, marker=marker,
                               msg_id=msg_id)
        attempts = self._send_attempts.get(msg_id, 0) + 1
        self._send_attempts[msg_id] = attempts
        if queue_def.uses_extension("WS-ReliableMessaging") \
                and attempts < _MAX_RELIABLE_ATTEMPTS:
            self._pending_sends.append(msg_id)   # retry on the next pump
            return
        message = Message(meta, self.store)
        self._report_error(err.build_error_message(
            err.NETWORK, f"delivery to remote endpoint failed ({marker})",
            queue=meta.queue, marker=marker, initial_message=message),
            None, meta.queue,
            trace=meta.properties.get(TRACE_PROPERTY))
        self._mark_processed(msg_id)

    def _register_incoming_gateways(self) -> None:
        for queue_def in self.app.queues.values():
            if queue_def.kind is QueueKind.INCOMING_GATEWAY:
                self.register_incoming_gateway(queue_def.name)

    def gateway_endpoint(self, queue: str) -> str:
        """The transport address of an incoming gateway on this node."""
        queue_def = self.app.queues[queue]
        return queue_def.endpoint or f"demaq://{self.name}/{queue_def.name}"

    def register_incoming_gateway(self, queue: str) -> None:
        """Attach one incoming gateway's endpoint to this node.

        Standalone servers do this for every gateway at startup; in a
        sharded cluster only the queue's ring owner holds the endpoint,
        and rebalancing moves it by unregister/register.
        """
        endpoint = self.gateway_endpoint(queue)
        if is_reserved_endpoint(endpoint):
            raise err.EngineError(
                f"gateway queue {queue!r} declares endpoint {endpoint!r} "
                f"inside the runtime-reserved '!' namespace (cluster "
                f"ingest / control addresses); pick another address")
        self.network.register(
            endpoint,
            lambda envelope, source, q=queue:
                self._receive(q, envelope, source))

    def unregister_incoming_gateway(self, queue: str) -> None:
        self.network.unregister(self.gateway_endpoint(queue))

    def register_ingest(self, endpoint: str, queue: str) -> None:
        """Expose *queue* for envelope ingest at *endpoint*.

        The cluster router uses this to address any queue of a node —
        not just declared incoming gateways — when forwarding enqueues
        to the partition owner.
        """
        if self.network is None:
            raise err.EngineError(
                f"server {self.name!r} has no network to register on")
        if queue not in self.app.queues:
            raise err.EngineError(f"no queue {queue!r} to expose as ingest")
        self.network.register(
            endpoint,
            lambda envelope, source, q=queue:
                self.ingest(q, envelope, source))

    def ingest(self, queue: str, envelope: Document, source: str) -> None:
        """Accept one router envelope into *queue* (public hook).

        Unlike a gateway relay, a router forward is an *original*
        enqueue on behalf of an external producer, so explicit
        properties (``timeout``, ``target``, …) pass through intact
        instead of being stripped as internal relay state.
        """
        self._receive(queue, envelope, source, relay=False)

    def _receive(self, queue: str, envelope: Document, source: str,
                 relay: bool = True) -> None:
        if self.fenced:
            # A fenced zombie must not accept writes: the raised error
            # fails the transport delivery, so the sender's failure
            # marker (§3.6) routes the message elsewhere.
            raise err.EngineError(
                f"server {self.name!r} is fenced (shard promoted "
                f"at a newer epoch)")
        body, properties = parse_envelope(envelope)
        if self.tracer.enabled:
            self.tracer.record(properties.get(TRACE_PROPERTY), "received",
                               queue=queue, source=source)
        explicit = self._forwardable_properties(queue, properties) \
            if relay else dict(properties)
        txn = self.store.begin()
        try:
            self.executor.enqueue_in_txn(
                txn, queue, body, explicit=explicit,
                system_extra={"Sender": source})
            self.store.commit(txn)
        except (PropertyError, XMLError) as exc:
            self.store.abort(txn)
            self.locking.release(txn.txn_id)
            self._report_error(err.build_error_message(
                err.MESSAGE, str(exc), queue=queue, initial_message=body),
                None, queue, trace=properties.get(TRACE_PROPERTY))
            return
        finally:
            if txn.state.value == "active":
                self.store.abort(txn)
            self.locking.release(txn.txn_id)
        self.after_commit(txn)

    # -- error reporting outside a rule transaction ------------------------------------------------

    def _report_error(self, document: Document, rule_name: str | None,
                      queue_name: str | None,
                      trace: str | None = None) -> None:
        target = err.resolve_error_queue(self.app, rule_name, queue_name)
        if target is None:
            self.unhandled_errors.append(document)
            return
        explicit = {TRACE_PROPERTY: trace} if trace is not None else None
        txn = self.store.begin()
        try:
            self.executor.enqueue_in_txn(txn, target, document,
                                         explicit=explicit)
            self.store.commit(txn)
        finally:
            if txn.state.value == "active":
                self.store.abort(txn)
            self.locking.release(txn.txn_id)
        self.after_commit(txn)

    # -- accessors --------------------------------------------------------------------------------------

    def live_messages(self, queue: str,
                      snapshot: int | None = None) -> list[Message]:
        """All retained messages of a queue (processed and not), in
        order — at *snapshot* when given (MVCC), else current state."""
        return [Message(meta, self.store)
                for meta in self.store.queue_messages(queue,
                                                      snapshot=snapshot)]

    def slice_live_messages(self, slicing: str, key: object,
                            snapshot: int | None = None) -> list[Message]:
        return [Message(meta, self.store)
                for meta in self.store.slice_messages(slicing, key,
                                                      snapshot=snapshot)]

    def indexed_live_messages(self, queue: str, prop: str,
                              values: Iterable[object],
                              snapshot: int | None = None) -> list[Message]:
        """Messages of *queue* whose *prop* equals any probe value.

        Probes are coerced to the property's declared type before the
        index read — the stored value was resolved under that type at
        enqueue time, so both sides of the equality agree.  Uncastable
        probes match nothing (the scan-side comparison could not have
        produced a typed match either), and so do probes the cast
        cannot represent exactly (1.5 against an xs:integer property
        must not match stored 1 the way a truncating cast would).
        """
        prop_def = self.app.properties.get(prop)
        by_id: dict[int, object] = {}
        for value in values:
            if isinstance(value, UntypedAtomic):
                value = str(value)
            if prop_def is not None:
                try:
                    typed = cast_atomic(value, prop_def.type_name)
                except XQueryError:
                    continue
                # For xs:double properties the scan plan compares at
                # double precision anyway, so the cast *is* the scan's
                # coercion; elsewhere a lossy cast must not match.
                if prop_def.type_name != "xs:double" \
                        and not _cast_preserves_value(value, typed):
                    continue
                value = typed
            for meta in self.store.property_lookup(queue, prop, value,
                                                   snapshot=snapshot):
                by_id[meta.msg_id] = meta
        metas = sorted(by_id.values(), key=lambda m: m.seqno)
        return [Message(meta, self.store) for meta in metas]

    def queue_documents(self, queue: str) -> list[Document]:
        return [m.body for m in self.live_messages(queue)]

    def queue_texts(self, queue: str) -> list[str]:
        return [m.body_text() for m in self.live_messages(queue)]

    # -- maintenance -------------------------------------------------------------------------------------

    def collect_garbage(self) -> int:
        return self.store.collect_garbage()

    def checkpoint(self) -> str:
        return self.store.checkpoint()

    def truncate_wal(self, force: bool = False) -> int:
        return self.store.truncate_wal(force=force)

    def crash_and_recover(self) -> None:
        """Test/bench hook: lose volatile state, then run recovery."""
        self.store.simulate_crash()
        self.store.recover()
        self.scheduler = Scheduler(self.app)
        self.echo = EchoService(self.clock)
        self._pending_sends.clear()
        self._send_attempts.clear()
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Register every unprocessed message after startup/recovery."""
        for meta in self.store.unprocessed_messages():
            self.register_unprocessed(meta)

    def register_unprocessed(self, meta) -> None:
        """Hand one pre-existing unprocessed message to its subsystem.

        Shared by startup, recovery, and cluster rebalancing (a migrated
        message is recovered state, not a fresh enqueue): echo timers
        resume with their *remaining* timeout rather than restarting.
        """
        queue_def = self.app.queues.get(meta.queue)
        if queue_def is None:
            # Undefined queue (the application dropped it since this
            # message was stored): schedule it anyway so the executor
            # escalates per §3.6 instead of stranding it forever.
            self.scheduler.notify(meta.msg_id, meta.queue, meta.seqno)
            return
        if queue_def.kind is QueueKind.ECHO:
            self._reschedule_recovered_echo(meta)
        elif queue_def.kind is QueueKind.OUTGOING_GATEWAY:
            # at-least-once resend across failures (WS-RM semantics)
            self._pending_sends.append(meta.msg_id)
        else:
            self.scheduler.notify(meta.msg_id, meta.queue, meta.seqno)

    def _reschedule_recovered_echo(self, meta) -> None:
        target = meta.properties.get("target")
        if not isinstance(target, str):
            return
        created = meta.properties.get("creationTime")
        timeout = meta.properties.get("timeout", 0)
        try:
            seconds = cast_to_double(timeout)
        except Exception:
            seconds = 0.0
        if isinstance(created, XSDateTime):
            remaining = created.epoch() + seconds - self.clock.now()
        else:
            remaining = seconds
        self.echo.schedule(meta.msg_id, max(0.0, remaining), target)

    def close(self) -> None:
        self.store.close()


def _cast_preserves_value(original: object, cast_value: object) -> bool:
    """Did casting a probe to the property type keep its value?

    Guards the index access path against lossy numeric casts: under the
    scan plan ``1.5 = <stored xs:integer 1>`` is false, so the index
    plan must not match either after the cast truncates 1.5 to 1.
    """
    if isinstance(original, bool) or isinstance(cast_value, bool):
        return True     # boolean casts follow the xs:boolean lexical rules
    numeric_cast = is_numeric(cast_value)
    if is_numeric(original) and numeric_cast:
        # Python's mixed int/float/Decimal == is mathematically exact
        # (no lossy conversion), unlike comparing via float().
        return original == cast_value
    if isinstance(original, str) and numeric_cast:
        # untyped lexical probe: coerced through double, as the scan
        # plan's general comparison would coerce it
        try:
            return float(original) == cast_value
        except (OverflowError, ValueError):
            return False
    return True


def run_cluster(servers: Iterable[DemaqServer], max_rounds: int = 10_000
                ) -> None:
    """Run several connected servers until the whole system is idle."""
    servers = list(servers)
    for _ in range(max_rounds):
        if not any(server.step() for server in servers):
            return
    raise err.EngineError("cluster did not quiesce")
