"""The rule executor: one message, one transaction (paper §3.1).

Processing a message means evaluating every rule attached to its queue
(and to every slice it belongs to), collecting all pending updates, and
executing them together with the processed-mark in a single transaction
against the message store.  Evaluation never observes its own updates —
snapshot semantics — and concurrency control is 2PL through the
:class:`~repro.engine.locking.LockingPolicy`; a deadlock aborts the
transaction and the message is retried (after a jittered backoff so the
conflicting pair does not immediately re-collide).  Under MVCC
(``DEMAQ_MVCC``, default on) every rule read runs at the transaction's
snapshot LSN instead of taking read locks, so reader/writer deadlocks
cannot form and only write/write conflicts ever retry.
"""

from __future__ import annotations

import os
import sys
from time import perf_counter, sleep
from typing import TYPE_CHECKING

from ..backoff import BackoffPolicy
from ..config import read_field
from ..obs import COUNT_BUCKETS, TRACE_PROPERTY, MetricsRegistry
from ..qdl.model import QueueKind
from ..queues import Message, PropertyError
from ..storage.errors import DeadlockError, LockTimeoutError
from ..storage.transactions import TxnState
from ..xmldm import Document, XMLError, serialize
from ..xquery import DynamicContext, PendingUpdateList
from ..xquery.errors import XQueryError
from ..xquery.updates import EnqueuePrimitive, ResetPrimitive
from . import errors as err
from .compiler import CompiledRule, element_names
from .environment import RuleEnvironment

if TYPE_CHECKING:  # pragma: no cover
    from .server import DemaqServer


class ExecutionStatistics:
    """Per-server counters the benchmarks read.

    Since the telemetry plane landed these are *views* over the metrics
    registry: each attribute reads a live registry counter, so the same
    numbers show up under ``demaq_executor_*`` on ``/metrics``.
    Counters stay live with ``DEMAQ_OBS=0`` (they are semantic engine
    statistics, not optional telemetry).
    """

    _COUNTERS = {
        "messages_processed": ("demaq_executor_messages_processed_total",
                               "Messages fully processed"),
        "rules_evaluated": ("demaq_executor_rules_evaluated_total",
                            "Rule bodies evaluated"),
        "rules_skipped_by_prefilter": (
            "demaq_executor_rules_skipped_by_prefilter_total",
            "Rule evaluations skipped by the element-name prefilter"),
        "rule_errors": ("demaq_executor_rule_errors_total",
                        "Rule evaluations escalated per §3.6"),
        "deadlock_retries": ("demaq_executor_deadlock_retries_total",
                             "Members retried after deadlock/lock timeout"),
        "retry_backoffs": ("demaq_executor_retry_backoffs_total",
                           "Backoff sleeps taken before requeueing "
                           "deadlocked/timed-out members"),
        "enqueues": ("demaq_executor_enqueues_total",
                     "Messages inserted by rules or producers"),
        "resets": ("demaq_executor_slice_resets_total",
                   "Slice resets executed"),
        "batches_committed": ("demaq_executor_batches_committed_total",
                              "Multi-member batches committed"),
        "batch_members_rolled_back": (
            "demaq_executor_batch_members_rolled_back_total",
            "Batch members rolled back to their savepoint"),
    }

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            registry = MetricsRegistry(enabled=False)
        self._counters = {attr: registry.counter(name, help_)
                          for attr, (name, help_) in self._COUNTERS.items()}

    def add(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(name)


class RuleExecutor:
    """Executes the compiled plans against arriving messages."""

    def __init__(self, server: "DemaqServer"):
        self.server = server
        registry = getattr(server, "metrics", None)
        if registry is None:
            registry = MetricsRegistry(enabled=False)
        self.metrics = registry
        self.stats = ExecutionStatistics(registry)
        self._batch_fill = registry.histogram(
            "demaq_executor_batch_fill", "Members per committed batch",
            buckets=COUNT_BUCKETS)
        self._rule_timers: dict[str, object] = {}
        # Jittered exponential backoff before deadlock/timeout requeues:
        # without it, the conflicting pair re-collides on the very next
        # pick.  Full jitter, base doubling per consecutive failure of
        # the same message, capped; DEMAQ_RETRY_BACKOFF=0 disables.
        self.retry_backoff = BackoffPolicy(
            base=read_field("retry_backoff"), cap=0.05)
        self._retry_attempts: dict[int, int] = {}

    @property
    def retry_backoff_base(self) -> float:
        return self.retry_backoff.base

    @property
    def retry_backoff_cap(self) -> float:
        return self.retry_backoff.cap

    def _rule_timer(self, rule_name: str):
        timer = self._rule_timers.get(rule_name)
        if timer is None:
            timer = self.metrics.histogram(
                "demaq_rule_seconds", "Per-rule evaluation time",
                rule=rule_name)
            self._rule_timers[rule_name] = timer
        return timer

    # -- main entry ---------------------------------------------------------------

    def process_message(self, msg_id: int) -> bool:
        """Process one message; False means "aborted, retry later"."""
        return not self.process_batch([msg_id])

    def process_batch(self, msg_ids: list[int]) -> list[int]:
        """Process several messages inside one chained transaction.

        Every batch member gets a savepoint before its rules run; after
        a member succeeds its buffered operations are *published* —
        logged and applied without forcing the WAL — so batch-mates
        observe its effects exactly as they would under one-message-one-
        transaction execution (snapshot semantics per member, paper
        §3.1).  A member that aborts (deadlock, lock timeout) rolls back
        to its own savepoint and is returned for retry; its batch-mates
        are unaffected.  The single commit at the end forces the log
        once for the whole batch — with the ``group`` durability policy
        that force is further coalesced across concurrently committing
        shards.

        Returns the message ids that must be rescheduled.
        """
        server = self.server
        store = server.store
        tracer = server.tracer if server.tracer.enabled else None
        retry: list[int] = []
        abandoned: list[int] = []
        traced: list[str] = []
        processed = 0
        stranded = 0
        txn = store.begin()
        try:
            for position, msg_id in enumerate(msg_ids):
                meta = store.get(msg_id)
                if meta is None or meta.processed:
                    continue
                trace = (meta.properties.get(TRACE_PROPERTY)
                         if tracer is not None else None)
                if trace is not None:
                    tracer.record(trace, "scheduled", queue=meta.queue,
                                  msg_id=msg_id)
                message = Message(meta, store)
                sp = txn.savepoint()
                try:
                    normal = self._process_into_txn(txn, meta, message)
                    store.publish(txn)
                except (DeadlockError, LockTimeoutError):
                    txn.rollback_to_savepoint(sp)
                    self.stats.add("deadlock_retries")
                    self.stats.add("batch_members_rolled_back")
                    self._retry_attempts[msg_id] = \
                        self._retry_attempts.get(msg_id, 0) + 1
                    retry.append(msg_id)
                    continue
                except BaseException:
                    # An engine bug must not strand this member or its
                    # unreached batch-mates — next_batch already popped
                    # them all from the scheduler.  Reschedule them,
                    # commit the completed prefix, re-raise.
                    if not txn.poisoned:
                        txn.rollback_to_savepoint(sp)
                    abandoned.extend(msg_ids[position:])
                    raise
                self._retry_attempts.pop(msg_id, None)
                if normal:
                    processed += 1
                else:
                    stranded += 1
                if trace is not None:
                    tracer.record(trace, "executed", queue=meta.queue,
                                  msg_id=msg_id)
                    traced.append(trace)
        finally:
            try:
                if txn.state is TxnState.ACTIVE and not txn.poisoned:
                    if txn.published_through:
                        store.commit(txn)
                    else:
                        store.abort(txn)
                if txn.state is TxnState.COMMITTED:
                    self.stats.add("messages_processed", processed)
                    self.stats.add("rule_errors", stranded)
                    if len(msg_ids) > 1:
                        self.stats.add("batches_committed")
                    if processed or stranded:
                        self._batch_fill.observe(processed + stranded)
                    for trace in traced:
                        tracer.record(trace, "committed")
                    server.after_commit(txn)
            finally:
                server.locking.release(txn.txn_id)
                if sys.exc_info()[0] is not None:
                    # Exception path (member bug, commit I/O failure):
                    # the caller never sees the retry list, and every
                    # unfinished member was already popped from the
                    # scheduler by next_batch — reschedule them all.
                    for msg_id in abandoned + retry:
                        meta = store.get(msg_id)
                        if meta is not None and not meta.processed:
                            server.scheduler.requeue(msg_id, meta.queue,
                                                     meta.seqno)
                    if txn.state is not TxnState.COMMITTED \
                            and txn.published_through:
                        # Published members' enqueues are applied in the
                        # store even though COMMIT failed; register them
                        # so they are scheduled, not stranded.
                        server.after_commit(txn)
        # Backoff *after* the finally released this batch's locks:
        # sleeping while holding them would widen the very collision
        # window the backoff is meant to shrink.
        self._backoff_before_retry(retry)
        return retry

    def _backoff_before_retry(self, retry: list[int]) -> None:
        """Jittered exponential backoff before requeueing aborted members."""
        if not retry or self.retry_backoff.base <= 0:
            return
        attempt = max(self._retry_attempts.get(m, 1) for m in retry)
        self.stats.add("retry_backoffs")
        self.retry_backoff.sleep(attempt, sleeper=sleep)

    def _process_into_txn(self, txn, meta, message: Message) -> bool:
        """Buffer the full processing of one message into *txn*.

        Returns True for normal rule processing, False when the message
        was stranded on an undefined queue and escalated per §3.6 (the
        error document goes to the resolved error queue — or
        ``server.unhandled_errors`` — and the message is marked
        processed so it can be garbage-collected instead of sitting in
        the store forever).
        """
        server = self.server
        queue_def = server.app.queues.get(meta.queue)
        if queue_def is None:
            document = err.build_error_message(
                err.SYSTEM,
                f"message {meta.msg_id} arrived on undefined queue "
                f"{meta.queue!r}",
                queue=meta.queue, initial_message=message)
            self._route_error(txn, document, None, meta.queue,
                              trace=message.property(TRACE_PROPERTY))
            txn.mark_processed(meta.msg_id)
            return False

        plan = server.compiled.plan_for(meta.queue)
        pending: list[tuple[CompiledRule | None, object]] = []
        body_names = None
        for compiled in plan.rules:
            body_names = self._evaluate_rule(
                compiled, message, txn, pending, body_names)
        for compiled in plan.slice_rules:
            body_names = self._evaluate_slice_rule(
                compiled, message, txn, pending, body_names)

        for compiled, primitive in pending:
            self._apply_primitive(txn, compiled, message, primitive)

        # Echo and outgoing-gateway messages stay unprocessed until
        # their delivery completes (see server pumps); rule-triggered
        # processing must not let GC take them first.
        if queue_def.kind in (QueueKind.BASIC, QueueKind.INCOMING_GATEWAY):
            txn.mark_processed(meta.msg_id)
            server.locking.lock_queue_write(txn.txn_id, meta.queue)
        return True

    # -- rule evaluation -------------------------------------------------------------

    def _evaluate_rule(self, compiled: CompiledRule, message: Message,
                       txn, pending, body_names,
                       slicing: str | None = None,
                       slice_key: object | None = None):
        if compiled.required_elements is not None:
            if body_names is None:
                body_names = element_names(message.body)
            if not (compiled.required_elements & body_names):
                self.stats.add("rules_skipped_by_prefilter")
                return body_names

        environment = RuleEnvironment(self.server, message, txn.txn_id,
                                      slicing, slice_key,
                                      snapshot=txn.snapshot_lsn)
        pul = PendingUpdateList()
        ctx = DynamicContext(item=message.body, environment=environment,
                             updates=pul)
        self.stats.add("rules_evaluated")
        timing = self.metrics.enabled
        started = perf_counter() if timing else 0.0
        try:
            compiled.evaluator()(ctx)
        except (DeadlockError, LockTimeoutError):
            raise
        except (XQueryError, XMLError, PropertyError) as exc:
            self._handle_rule_error(txn, compiled, message, exc, pending)
            return body_names
        if timing:
            self._rule_timer(compiled.name).observe(perf_counter() - started)
        pending.extend((compiled, primitive) for primitive in pul)
        return body_names

    def _evaluate_slice_rule(self, compiled: CompiledRule, message: Message,
                             txn, pending, body_names):
        slicing = compiled.slicing
        assert slicing is not None
        prop_name = slicing.property_name
        key = message.property(prop_name)
        if key is None:
            return body_names   # message carries no key: not in any slice
        return self._evaluate_rule(compiled, message, txn, pending,
                                   body_names, slicing=slicing.name,
                                   slice_key=key)

    # -- pending update application ------------------------------------------------------

    def _apply_primitive(self, txn, compiled: CompiledRule | None,
                         message: Message, primitive) -> None:
        if isinstance(primitive, EnqueuePrimitive):
            rule_name = compiled.name if compiled else None
            try:
                self.enqueue_in_txn(
                    txn, primitive.queue, primitive.body,
                    explicit=primitive.property_dict(),
                    trigger=message, creating_rule=rule_name)
            except (DeadlockError, LockTimeoutError):
                raise
            except (PropertyError, XMLError) as exc:
                self._route_error(
                    txn, err.build_error_message(
                        err.MESSAGE, str(exc), rule=rule_name,
                        queue=message.queue, initial_message=message),
                    rule_name, message.queue,
                    trace=message.property(TRACE_PROPERTY))
        elif isinstance(primitive, ResetPrimitive):
            self._apply_reset(txn, compiled, message, primitive)
        else:  # pragma: no cover - defensive
            raise err.EngineError(f"unknown primitive {primitive!r}")

    def _apply_reset(self, txn, compiled: CompiledRule | None,
                     message: Message, primitive: ResetPrimitive) -> None:
        slicing = primitive.slicing
        key = primitive.key
        if slicing is None:
            assert compiled is not None and compiled.slicing is not None
            slicing = compiled.slicing.name
        if key is None:
            slicing_def = self.server.app.slicings[slicing]
            key = message.property(slicing_def.property_name)
            if key is None:
                return
        self.server.locking.lock_slice_write(txn.txn_id, slicing, key)
        txn.reset_slice(slicing, key)
        self.stats.add("resets")

    def enqueue_in_txn(self, txn, queue_name: str, body: Document,
                       explicit: dict[str, object] | None = None,
                       trigger: Message | None = None,
                       creating_rule: str | None = None,
                       system_extra: dict[str, object] | None = None) -> None:
        """Insert one new message into *queue_name* within *txn*.

        Validates against the queue schema, resolves properties, derives
        slice memberships, and takes the write locks.  Raises
        :class:`PropertyError`/:class:`XMLError` for message-level
        problems (callers route those to error queues).
        """
        server = self.server
        queue_def = server.app.queues.get(queue_name)
        if queue_def is None:
            raise err.EngineError(f"enqueue into unknown queue {queue_name!r}")
        if queue_def.schema is not None:
            failures = queue_def.schema.validate(body)
            if failures:
                raise XMLError(
                    f"message rejected by schema of queue {queue_name!r}: "
                    + "; ".join(str(f) for f in failures[:3]))

        system: dict[str, object] = {
            "creationTime": server.clock.now_datetime(),
        }
        if creating_rule:
            system["creatingRule"] = creating_rule
        if trigger is not None:
            system["sourceQueue"] = trigger.queue
            # Connection handles "automatically propagate with the
            # messages" (§2.2) so synchronous replies can be correlated.
            handle = trigger.property("connectionHandle")
            if handle is not None and (explicit is None
                                       or "connectionHandle" not in explicit):
                system["connectionHandle"] = handle
            # The correlation id rides the same rails: every message a
            # rule derives belongs to the trace of the one that fired it.
            trace = trigger.property(TRACE_PROPERTY)
            if trace is not None and (explicit is None
                                      or TRACE_PROPERTY not in explicit):
                system[TRACE_PROPERTY] = trace
        if system_extra:
            system.update(system_extra)

        trigger_properties = trigger.properties if trigger is not None else {}
        properties = server.resolver.resolve(
            queue_name, body, explicit=explicit,
            trigger_properties=trigger_properties, system=system)

        slices = []
        for slicing in server.app.slicings.values():
            prop = server.app.properties.get(slicing.property_name)
            if prop is None or not prop.defined_on(queue_name):
                continue
            key = properties.get(slicing.property_name)
            if key is not None:
                slices.append((slicing.name, key))

        server.locking.lock_queue_write(txn.txn_id, queue_name)
        for slicing_name, key in slices:
            server.locking.lock_slice_write(txn.txn_id, slicing_name, key)

        payload = serialize(body).encode("utf-8")
        txn.insert_message(queue_name, payload, properties, slices,
                           persistent=queue_def.persistent)
        self.stats.add("enqueues")

    # -- error routing -----------------------------------------------------------------------

    def _handle_rule_error(self, txn, compiled: CompiledRule,
                           message: Message, exc: Exception,
                           pending) -> None:
        self.stats.add("rule_errors")
        kind = err.MESSAGE if isinstance(exc, XMLError) else err.APPLICATION
        code = getattr(exc, "code", None)
        document = err.build_error_message(
            kind, str(exc), rule=compiled.name, queue=message.queue,
            code=code, initial_message=message)
        self._route_error(txn, document, compiled.name, message.queue,
                          trace=message.property(TRACE_PROPERTY))

    def _route_error(self, txn, document: Document,
                     rule_name: str | None, queue_name: str | None,
                     trace: object | None = None) -> None:
        target = err.resolve_error_queue(self.server.app, rule_name,
                                         queue_name)
        if target is None:
            self.server.unhandled_errors.append(document)
            return
        # Escalated errors keep the triggering message's correlation id
        # so an operator can follow a request into the error queue.
        explicit = {TRACE_PROPERTY: trace} if trace is not None else None
        self.enqueue_in_txn(txn, target, document, explicit=explicit,
                            creating_rule=rule_name)
