"""The rule compiler (paper §4.4.1).

On deployment, rules are compiled into per-queue execution plans:

* **default-argument rewriting** — ``qs:queue()`` becomes
  ``qs:queue("<queue>")`` for rules attached to a queue ("supplying
  default parameters to functions which depend on the current queue");
* **fixed-property inlining** — ``qs:property("p")`` for a *fixed*
  computed property is replaced by the property's value expression,
  evaluated against the current message ("similar to conventional view
  merging, fixed properties are inlined");
* **condition prefilters** — for each rule, the compiler extracts the set
  of element names the rule's condition requires (the XML-filtering idea
  of [Diao & Franklin]); at runtime a one-pass scan of the message body
  skips rules that cannot fire.

``benchmarks/bench_rule_compile.py`` measures these against the naive
plan (re-parse + evaluate every rule on every message).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from ..qdl.model import Application, RuleDef, SlicingDef
from ..xmldm import Document, Element, Node
from ..xquery import ast


@dataclass
class CompiledRule:
    """One rule, rewritten and analyzed, ready for evaluation."""

    rule: RuleDef
    body: ast.Expr
    #: Element names the condition requires (None → always evaluate).
    required_elements: Optional[frozenset[str]]
    #: Set when the rule is attached to a slicing.
    slicing: Optional[SlicingDef] = None

    @property
    def name(self) -> str:
        return self.rule.name


@dataclass
class QueuePlan:
    """Everything that runs when a message arrives in one queue."""

    queue: str
    #: Rules attached directly to the queue.
    rules: list[CompiledRule] = field(default_factory=list)
    #: Rules attached to slicings whose property covers this queue.
    slice_rules: list[CompiledRule] = field(default_factory=list)

    def all_rules(self) -> list[CompiledRule]:
        return [*self.rules, *self.slice_rules]


@dataclass
class CompiledApplication:
    app: Application
    plans: dict[str, QueuePlan]

    def plan_for(self, queue: str) -> QueuePlan:
        return self.plans.get(queue) or QueuePlan(queue)


def compile_rules(app: Application, optimize: bool = True
                  ) -> CompiledApplication:
    """Build per-queue plans; *optimize=False* keeps the canonical plan
    (no rewriting, no prefilters) as the baseline for E4."""
    plans: dict[str, QueuePlan] = {
        name: QueuePlan(name) for name in app.queues}

    for rule in app.rules:
        if rule.target in app.slicings:
            slicing = app.slicings[rule.target]
            compiled = _compile_one(rule, app, queue=None, optimize=optimize,
                                    slicing=slicing)
            prop = app.properties[slicing.property_name]
            for binding in prop.bindings:
                for queue in binding.queues:
                    if queue in plans:
                        plans[queue].slice_rules.append(compiled)
        else:
            compiled = _compile_one(rule, app, queue=rule.target,
                                    optimize=optimize)
            plans[rule.target].rules.append(compiled)

    return CompiledApplication(app, plans)


def _compile_one(rule: RuleDef, app: Application, queue: str | None,
                 optimize: bool, slicing: SlicingDef | None = None
                 ) -> CompiledRule:
    body = rule.body
    required = None
    if optimize:
        body = copy.deepcopy(body)
        if queue is not None:
            _supply_default_queue(body, queue)
            _inline_fixed_properties(body, app, queue)
        required = _required_elements(body)
    return CompiledRule(rule, body, required, slicing)


# -- rewrites ---------------------------------------------------------------------

def _supply_default_queue(expr: ast.Expr, queue: str) -> None:
    for node in ast.walk(expr):
        if isinstance(node, ast.FunctionCall) and node.name == "qs:queue" \
                and not node.args:
            node.args.append(ast.Literal(queue))


def _inline_fixed_properties(expr: ast.Expr, app: Application,
                             queue: str) -> None:
    """Replace qs:property('p') with p's value expression (view merging)."""
    _rewrite_children(expr, app, queue)


def _rewrite_children(expr: ast.Expr, app: Application, queue: str) -> None:
    for name in getattr(expr, "__dataclass_fields__", {}):
        value = getattr(expr, name)
        if isinstance(value, ast.Expr):
            replacement = _maybe_inline(value, app, queue)
            if replacement is not None:
                setattr(expr, name, replacement)
            else:
                _rewrite_children(value, app, queue)
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, ast.Expr):
                    replacement = _maybe_inline(item, app, queue)
                    if replacement is not None:
                        value[index] = replacement
                    else:
                        _rewrite_children(item, app, queue)
                elif isinstance(item, tuple) and len(item) == 2 \
                        and isinstance(item[1], ast.Expr):
                    replacement = _maybe_inline(item[1], app, queue)
                    if replacement is not None:
                        value[index] = (item[0], replacement)
                    else:
                        _rewrite_children(item[1], app, queue)
                elif type(item).__name__ in ("ForClause", "LetClause"):
                    _rewrite_children_of_clause(item, app, queue)
                elif type(item).__name__ == "OrderSpec":
                    replacement = _maybe_inline(item.key, app, queue)
                    if replacement is not None:
                        item.key = replacement
                    else:
                        _rewrite_children(item.key, app, queue)


def _rewrite_children_of_clause(clause, app, queue) -> None:
    attr = "source" if hasattr(clause, "source") else "value"
    child = getattr(clause, attr)
    replacement = _maybe_inline(child, app, queue)
    if replacement is not None:
        setattr(clause, attr, replacement)
    else:
        _rewrite_children(child, app, queue)


def _maybe_inline(expr: ast.Expr, app: Application,
                  queue: str) -> ast.Expr | None:
    if not (isinstance(expr, ast.FunctionCall)
            and expr.name == "qs:property" and len(expr.args) == 1):
        return None
    arg = expr.args[0]
    if not isinstance(arg, ast.Literal) or not isinstance(arg.value, str):
        return None
    prop = app.properties.get(arg.value)
    if prop is None or not prop.fixed:
        return None
    binding = prop.binding_for(queue)
    if binding is None:
        return None
    # Wrap in the xs constructor so inlining preserves the property type.
    inlined = copy.deepcopy(binding.value)
    return ast.FunctionCall(prop.type_name, [inlined])


# -- prefilter analysis --------------------------------------------------------------

def _required_elements(body: ast.Expr) -> Optional[frozenset[str]]:
    """Names such that the rule can only fire if one occurs in the body.

    Analyzes the rule's top-level condition.  ``None`` means "cannot
    tell, always evaluate".
    """
    if not isinstance(body, ast.IfExpr):
        return None
    if body.else_branch is not None:
        # an else branch fires even when the condition is false
        return None
    return _condition_names(body.condition)


def _condition_names(expr: ast.Expr) -> Optional[frozenset[str]]:
    if isinstance(expr, ast.PathExpr) and expr.absolute:
        name = _leading_name(expr)
        return frozenset([name]) if name else None
    if isinstance(expr, ast.AxisStep):
        if isinstance(expr.test, ast.NameTest) and expr.test.local_name:
            return frozenset([expr.test.local_name])
        return None
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "and":
            # either conjunct's requirement is necessary; prefer the
            # more selective (non-None) one
            left = _condition_names(expr.left)
            right = _condition_names(expr.right)
            return left or right
        if expr.op == "or":
            left = _condition_names(expr.left)
            right = _condition_names(expr.right)
            if left is None or right is None:
                return None
            return left | right
    if isinstance(expr, ast.Comparison):
        return _condition_names(expr.left) or _condition_names(expr.right)
    if isinstance(expr, ast.FilterExpr):
        return _condition_names(expr.base)
    if isinstance(expr, ast.FunctionCall) and expr.name in (
            "exists", "fn:exists", "boolean", "fn:boolean") and expr.args:
        return _condition_names(expr.args[0])
    return None


def _leading_name(path: ast.PathExpr) -> Optional[str]:
    """The first concrete name test in an absolute path."""
    for step in path.steps:
        if not isinstance(step, ast.AxisStep):
            return None
        if isinstance(step.test, ast.KindTest):
            continue  # e.g. the descendant-or-self::node() of //
        if step.test.local_name:
            return step.test.local_name
        return None
    return None


def element_names(document: Document) -> frozenset[str]:
    """One-pass set of element local names in a message body."""
    names = set()
    stack: list[Node] = list(document.children)
    while stack:
        node = stack.pop()
        if isinstance(node, Element):
            names.add(node.name.local_name)
            stack.extend(node.children)
    return frozenset(names)
