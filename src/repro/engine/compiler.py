"""The rule compiler (paper §4.4.1).

On deployment, rules are compiled into per-queue execution plans:

* **default-argument rewriting** — ``qs:queue()`` becomes
  ``qs:queue("<queue>")`` for rules attached to a queue ("supplying
  default parameters to functions which depend on the current queue");
* **fixed-property inlining** — ``qs:property("p")`` for a *fixed*
  computed property is replaced by the property's value expression,
  evaluated against the current message ("similar to conventional view
  merging, fixed properties are inlined");
* **condition prefilters** — for each rule, the compiler extracts the set
  of element names the rule's condition requires (the XML-filtering idea
  of [Diao & Franklin]); at runtime a one-pass scan of the message body
  skips rules that cannot fire;
* **index predicate pushdown** — an equality predicate over
  ``qs:queue("<q>")`` whose compared expression structurally matches the
  value expression of a *fixed* property with a declared index on ``<q>``
  (``create index on queue q property p``) is rewritten into an
  index-lookup access path ``qs:queue-index(q, p, <probe>)``: the
  evaluator answers it with one B+-tree range read instead of scanning
  and re-evaluating the predicate across the whole queue (the paper's
  §4.3 materialization idea applied to property predicates).  Both the
  postfix form ``qs:queue("q")[<path> = <probe>]`` and the FLWOR form
  ``for $m in qs:queue("q") … where $m/<path> = <probe>`` are
  recognized.  Three conditions keep the rewrite semantics-preserving:
  the property must be fixed (otherwise explicit/inherited values can
  diverge from the body path the predicate tests), the probe's static
  type class must equal the property's declared class (the scan
  compares the raw node value under the probe's type), and the probe
  must be evaluable at the access path's position (focus-independent
  in the postfix form, FLWOR-variable-free in the for/where form).

``benchmarks/bench_rule_compile.py`` measures the first three against
the naive plan (re-parse + evaluate every rule on every message);
``benchmarks/bench_indexing.py`` (E10) measures the pushdown.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..qdl.model import Application, RuleDef, SlicingDef
from ..xmldm import Document, Element, Node
from ..xquery import active_backend, ast, make_evaluator


@dataclass
class CompiledRule:
    """One rule, rewritten and analyzed, ready for evaluation."""

    rule: RuleDef
    body: ast.Expr
    #: Element names the condition requires (None → always evaluate).
    required_elements: Optional[frozenset[str]]
    #: Set when the rule is attached to a slicing.
    slicing: Optional[SlicingDef] = None
    #: (queue, property) pairs whose equality predicates were pushed
    #: down to secondary-index lookups.
    index_lookups: list[tuple[str, str]] = field(default_factory=list)
    #: Per-backend evaluation callables for *body*, built lazily: the
    #: closure-compiled form is lowered once per rule, not once per
    #: message (the §3.1 hot path).
    _evaluators: dict[str, Callable] = field(
        default_factory=dict, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.rule.name

    def evaluator(self) -> Callable:
        """The body's evaluation callable under the active backend."""
        backend = active_backend()
        fn = self._evaluators.get(backend)
        if fn is None:
            fn = make_evaluator(self.body, backend)
            self._evaluators[backend] = fn
        return fn


@dataclass
class QueuePlan:
    """Everything that runs when a message arrives in one queue."""

    queue: str
    #: Rules attached directly to the queue.
    rules: list[CompiledRule] = field(default_factory=list)
    #: Rules attached to slicings whose property covers this queue.
    slice_rules: list[CompiledRule] = field(default_factory=list)

    def all_rules(self) -> list[CompiledRule]:
        return [*self.rules, *self.slice_rules]


@dataclass
class CompiledApplication:
    app: Application
    plans: dict[str, QueuePlan]

    def plan_for(self, queue: str) -> QueuePlan:
        return self.plans.get(queue) or QueuePlan(queue)


def compile_rules(app: Application, optimize: bool = True
                  ) -> CompiledApplication:
    """Build per-queue plans; *optimize=False* keeps the canonical plan
    (no rewriting, no prefilters) as the baseline for E4."""
    plans: dict[str, QueuePlan] = {
        name: QueuePlan(name) for name in app.queues}

    for rule in app.rules:
        if rule.target in app.slicings:
            slicing = app.slicings[rule.target]
            compiled = _compile_one(rule, app, queue=None, optimize=optimize,
                                    slicing=slicing)
            prop = app.properties[slicing.property_name]
            for binding in prop.bindings:
                for queue in binding.queues:
                    if queue in plans:
                        plans[queue].slice_rules.append(compiled)
        else:
            compiled = _compile_one(rule, app, queue=rule.target,
                                    optimize=optimize)
            plans[rule.target].rules.append(compiled)

    return CompiledApplication(app, plans)


def _compile_one(rule: RuleDef, app: Application, queue: str | None,
                 optimize: bool, slicing: SlicingDef | None = None
                 ) -> CompiledRule:
    body = rule.body
    required = None
    index_lookups: list[tuple[str, str]] = []
    if optimize:
        body = copy.deepcopy(body)
        if queue is not None:
            _supply_default_queue(body, queue)
            _inline_fixed_properties(body, app, queue)
        if app.indexes:
            index_lookups = _push_down_index_predicates(body, app)
        required = _required_elements(body)
    return CompiledRule(rule, body, required, slicing, index_lookups)


# -- rewrites ---------------------------------------------------------------------

def _supply_default_queue(expr: ast.Expr, queue: str) -> None:
    for node in ast.walk(expr):
        if isinstance(node, ast.FunctionCall) and node.name == "qs:queue" \
                and not node.args:
            node.args.append(ast.Literal(queue))


def _inline_fixed_properties(expr: ast.Expr, app: Application,
                             queue: str) -> None:
    """Replace qs:property('p') with p's value expression (view merging)."""
    _rewrite_children(expr, app, queue)


def _rewrite_children(expr: ast.Expr, app: Application, queue: str) -> None:
    for name in getattr(expr, "__dataclass_fields__", {}):
        value = getattr(expr, name)
        if isinstance(value, ast.Expr):
            replacement = _maybe_inline(value, app, queue)
            if replacement is not None:
                setattr(expr, name, replacement)
            else:
                _rewrite_children(value, app, queue)
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, ast.Expr):
                    replacement = _maybe_inline(item, app, queue)
                    if replacement is not None:
                        value[index] = replacement
                    else:
                        _rewrite_children(item, app, queue)
                elif isinstance(item, tuple) and len(item) == 2 \
                        and isinstance(item[1], ast.Expr):
                    replacement = _maybe_inline(item[1], app, queue)
                    if replacement is not None:
                        value[index] = (item[0], replacement)
                    else:
                        _rewrite_children(item[1], app, queue)
                elif type(item).__name__ in ("ForClause", "LetClause"):
                    _rewrite_children_of_clause(item, app, queue)
                elif type(item).__name__ == "OrderSpec":
                    replacement = _maybe_inline(item.key, app, queue)
                    if replacement is not None:
                        item.key = replacement
                    else:
                        _rewrite_children(item.key, app, queue)


def _rewrite_children_of_clause(clause, app, queue) -> None:
    attr = "source" if hasattr(clause, "source") else "value"
    child = getattr(clause, attr)
    replacement = _maybe_inline(child, app, queue)
    if replacement is not None:
        setattr(clause, attr, replacement)
    else:
        _rewrite_children(child, app, queue)


def _maybe_inline(expr: ast.Expr, app: Application,
                  queue: str) -> ast.Expr | None:
    if not (isinstance(expr, ast.FunctionCall)
            and expr.name == "qs:property" and len(expr.args) == 1):
        return None
    arg = expr.args[0]
    if not isinstance(arg, ast.Literal) or not isinstance(arg.value, str):
        return None
    prop = app.properties.get(arg.value)
    if prop is None or not prop.fixed:
        return None
    binding = prop.binding_for(queue)
    if binding is None:
        return None
    # Wrap in the xs constructor so inlining preserves the property type.
    inlined = copy.deepcopy(binding.value)
    return ast.FunctionCall(prop.type_name, [inlined])


# -- index predicate pushdown ---------------------------------------------------

def _push_down_index_predicates(body: ast.Expr,
                                app: Application) -> list[tuple[str, str]]:
    """Rewrite indexable equality predicates into index lookups.

    Mutates *body* in place; returns the (queue, property) pairs that
    got an index access path.
    """
    pushed: list[tuple[str, str]] = []
    for node in list(ast.walk(body)):
        if isinstance(node, ast.FilterExpr):
            _try_filter_pushdown(node, app, pushed)
        elif isinstance(node, ast.FLWORExpr):
            _try_flwor_pushdown(node, app, pushed)
    return pushed


def _index_lookup_call(queue: str, prop: str, probe: ast.Expr
                       ) -> ast.FunctionCall:
    return ast.FunctionCall("qs:queue-index",
                            [ast.Literal(queue), ast.Literal(prop), probe])


def _try_filter_pushdown(node: ast.FilterExpr, app: Application,
                         pushed: list[tuple[str, str]]) -> None:
    """``qs:queue("q")[<path> = <probe>]`` → index lookup.

    Only the *first* predicate may be pushed: later predicates then see
    exactly the sequence the removed one produced, so chained
    (including positional) predicates keep their semantics.
    """
    queue = _literal_queue_call(node.base)
    if queue is None or not node.predicates:
        return
    match = _match_indexed_equality(node.predicates[0], app, queue, var=None)
    if match is None:
        return
    prop, probe = match
    node.base = _index_lookup_call(queue, prop, probe)
    del node.predicates[0]
    pushed.append((queue, prop))


def _try_flwor_pushdown(node: ast.FLWORExpr, app: Application,
                        pushed: list[tuple[str, str]]) -> None:
    """``for $m in qs:queue("q") … where … $m/<path> = <probe> …``.

    The matched conjunct moves out of the where clause and into the
    for-clause source as an index lookup.  The probe must not reference
    any variable bound by this FLWOR (it is hoisted to the source
    position), and clauses with a positional variable are skipped
    (positions observe the unfiltered source).
    """
    if node.where is None:
        return
    flwor_vars = set()
    for clause in node.clauses:
        flwor_vars.add(clause.var)
        if isinstance(clause, ast.ForClause) and clause.position_var:
            flwor_vars.add(clause.position_var)
    for position, clause in enumerate(node.clauses):
        if not isinstance(clause, ast.ForClause) \
                or clause.position_var is not None:
            continue
        if any(later.var == clause.var
               for later in node.clauses[position + 1:]):
            # shadowed: in the where clause, $var means the later
            # binding, not this one
            continue
        queue = _literal_queue_call(clause.source)
        if queue is None:
            continue
        conjuncts = _split_conjuncts(node.where)
        for index, conjunct in enumerate(conjuncts):
            match = _match_indexed_equality(conjunct, app, queue,
                                            var=clause.var,
                                            forbidden_vars=flwor_vars)
            if match is None:
                continue
            prop, probe = match
            clause.source = _index_lookup_call(queue, prop, probe)
            del conjuncts[index]
            node.where = _join_conjuncts(conjuncts)
            pushed.append((queue, prop))
            return


def _literal_queue_call(expr: ast.Expr) -> Optional[str]:
    """The queue name iff *expr* is ``qs:queue("<literal>")``."""
    if isinstance(expr, ast.FunctionCall) and expr.name == "qs:queue" \
            and len(expr.args) == 1:
        arg = expr.args[0]
        if isinstance(arg, ast.Literal) and isinstance(arg.value, str):
            return arg.value
    return None


def _split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return [*_split_conjuncts(expr.left), *_split_conjuncts(expr.right)]
    return [expr]


def _join_conjuncts(conjuncts: list[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    joined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        joined = ast.BinaryOp("and", joined, conjunct)
    return joined


def _match_indexed_equality(pred: ast.Expr, app: Application, queue: str,
                            var: str | None,
                            forbidden_vars: set[str] | None = None
                            ) -> Optional[tuple[str, ast.Expr]]:
    """(property, probe expression) when *pred* is an indexable equality.

    One comparison side must structurally equal an indexed property's
    value expression for *queue* (evaluated against the scanned message,
    as the property was at enqueue time); the other side — the probe —
    must be evaluable at the access path's position: focus-independent
    in the postfix form (predicates re-focus on each scanned message),
    free of this FLWOR's variables in the for/where form.

    The probe's *static type class* must equal the property's declared
    class: the scan plan compares the raw node value as untypedAtomic
    (coerced by the probe's type under the general-comparison rules),
    so a string probe against a numeric property compares lexically
    while the index compares typed values — only same-class probes are
    semantics-preserving.  ``eq`` treats untypedAtomic as xs:string, so
    value comparisons push down only for string-typed properties.
    """
    if not isinstance(pred, ast.Comparison) or pred.op not in ("=", "eq"):
        return None
    for side, probe in ((pred.left, pred.right), (pred.right, pred.left)):
        prop_name = _matching_indexed_property(side, app, queue, var)
        if prop_name is None:
            continue
        decl_class = _TYPE_CLASSES.get(app.properties[prop_name].type_name)
        if decl_class is None:
            continue
        if pred.op == "eq" and decl_class != "string":
            continue
        if _probe_class(probe, app) != decl_class:
            continue
        if var is None:
            if _uses_focus(probe):
                continue
        elif _references_vars(probe, forbidden_vars or {var}):
            continue
        return prop_name, probe
    return None


def _matching_indexed_property(side: ast.Expr, app: Application, queue: str,
                               var: str | None) -> Optional[str]:
    for prop_name in app.indexed_properties(queue):
        prop = app.properties.get(prop_name)
        if prop is None or not prop.fixed:
            # Only *fixed* properties always carry their computed value
            # (explicit/inherited values may diverge from the body path
            # the predicate tests) — same condition as property
            # inlining in _maybe_inline.
            continue
        binding = prop.binding_for(queue)
        if binding is None:
            continue
        if var is None:
            # Postfix predicate: focus is the scanned message, the same
            # context the binding expression was resolved in.
            if _ast_equal(side, binding.value):
                return prop_name
        else:
            steps = _var_relative_steps(side, var)
            if steps is not None \
                    and _steps_match_binding(steps, binding.value):
                return prop_name
    return None


def _var_relative_steps(expr: ast.Expr, var: str) -> Optional[list]:
    """``$var/s1/s2…`` → [s1, s2, …]; None when not of that shape."""
    if not isinstance(expr, ast.PathExpr) or expr.absolute \
            or not expr.steps:
        return None
    head = expr.steps[0]
    if not (isinstance(head, ast.VarRef) and head.name == var):
        return None
    rest = expr.steps[1:]
    if not all(isinstance(step, ast.AxisStep) for step in rest):
        return None
    return rest


def _steps_match_binding(steps: list, binding_value: ast.Expr) -> bool:
    """Does ``$m/<steps>`` equal the binding path over message $m?

    The binding is evaluated with the message document as context item,
    so both its relative and absolute forms resolve against the same
    root as ``$m/…``.
    """
    if isinstance(binding_value, ast.PathExpr):
        if not all(isinstance(s, ast.AxisStep)
                   for s in binding_value.steps):
            return False
        return _ast_equal(steps, binding_value.steps)
    if isinstance(binding_value, ast.AxisStep):
        return _ast_equal(steps, [binding_value])
    return False


#: Property type → comparison class (dateTime is excluded: equal
#: instants can have distinct lexical index keys).
_TYPE_CLASSES = {
    "xs:string": "string", "xs:untypedAtomic": "string",
    "xs:boolean": "boolean",
    "xs:integer": "numeric", "xs:int": "numeric", "xs:long": "numeric",
    "xs:decimal": "numeric", "xs:double": "numeric",
}

_STRING_FUNCTIONS = frozenset({
    "string", "concat", "substring", "string-join", "upper-case",
    "lower-case", "normalize-space", "translate", "replace",
    "substring-before", "substring-after", "name", "local-name",
    "namespace-uri",
})
_NUMERIC_FUNCTIONS = frozenset({
    "count", "abs", "floor", "ceiling", "round", "number",
    "string-length", "position", "last",
})
_BOOLEAN_FUNCTIONS = frozenset({
    "true", "false", "not", "boolean", "exists", "empty", "contains",
    "starts-with", "ends-with", "matches", "deep-equal",
})


def _probe_class(probe: ast.Expr, app: Application) -> Optional[str]:
    """The probe's statically known comparison class (None → unknown)."""
    if isinstance(probe, ast.Literal):
        if isinstance(probe.value, bool):
            return "boolean"
        if isinstance(probe.value, str):
            return "string"
        return "numeric"
    if isinstance(probe, ast.FunctionCall):
        name = probe.name[3:] if probe.name.startswith("fn:") else probe.name
        if name in _TYPE_CLASSES:                   # xs: constructors
            return _TYPE_CLASSES[name]
        if name in _STRING_FUNCTIONS:
            return "string"
        if name in _NUMERIC_FUNCTIONS:
            return "numeric"
        if name in _BOOLEAN_FUNCTIONS:
            return "boolean"
        if name == "qs:property" and len(probe.args) == 1:
            arg = probe.args[0]
            if isinstance(arg, ast.Literal) and isinstance(arg.value, str):
                declared = app.properties.get(arg.value)
                if declared is not None:
                    return _TYPE_CLASSES.get(declared.type_name)
    return None


def _ast_equal(a: object, b: object) -> bool:
    """Structural equality over AST nodes (and their field values).

    Deliberately not the dataclass ``==``: literal values compare
    type-strictly here (``Literal(1)`` is not ``Literal(True)`` or
    ``Literal(1.0)``), where Python equality would conflate them.
    """
    if type(a) is not type(b):
        return False
    fields = getattr(a, "__dataclass_fields__", None)
    if fields is not None:
        return all(_ast_equal(getattr(a, name), getattr(b, name))
                   for name in fields)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and \
            all(_ast_equal(x, y) for x, y in zip(a, b))
    return a == b


#: Functions that read the focus even without arguments.
_FOCUS_FUNCTIONS = frozenset({"position", "last"})
_ZERO_ARG_FOCUS_FUNCTIONS = frozenset({
    "string", "string-length", "normalize-space", "number",
    "name", "local-name", "namespace-uri", "root",
})


def _uses_focus(expr: ast.Expr) -> bool:
    """Conservatively: can *expr*'s value depend on the context item?

    Sub-expressions that establish their own focus (predicates, path
    tails) do not count against the enclosing expression.
    """
    if isinstance(expr, ast.ContextItem):
        return True
    if isinstance(expr, ast.AxisStep):
        return True
    if isinstance(expr, ast.PathExpr):
        if expr.absolute:
            return True
        return bool(expr.steps) and _uses_focus(expr.steps[0])
    if isinstance(expr, ast.FilterExpr):
        return _uses_focus(expr.base)
    if isinstance(expr, ast.FunctionCall):
        name = expr.name[3:] if expr.name.startswith("fn:") else expr.name
        if name in _FOCUS_FUNCTIONS:
            return True
        if not expr.args and name in _ZERO_ARG_FOCUS_FUNCTIONS:
            return True
        return any(_uses_focus(arg) for arg in expr.args)
    return any(_uses_focus(child) for child in expr.children())


def _references_vars(expr: ast.Expr, names: set[str]) -> bool:
    return any(isinstance(node, ast.VarRef) and node.name in names
               for node in ast.walk(expr))


# -- prefilter analysis --------------------------------------------------------------

def _required_elements(body: ast.Expr) -> Optional[frozenset[str]]:
    """Names such that the rule can only fire if one occurs in the body.

    Analyzes the rule's top-level condition.  ``None`` means "cannot
    tell, always evaluate".
    """
    if not isinstance(body, ast.IfExpr):
        return None
    if body.else_branch is not None:
        # an else branch fires even when the condition is false
        return None
    return _condition_names(body.condition)


def _condition_names(expr: ast.Expr) -> Optional[frozenset[str]]:
    if isinstance(expr, ast.PathExpr) and expr.absolute:
        name = _leading_name(expr)
        return frozenset([name]) if name else None
    if isinstance(expr, ast.AxisStep):
        if isinstance(expr.test, ast.NameTest) and expr.test.local_name:
            return frozenset([expr.test.local_name])
        return None
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "and":
            # either conjunct's requirement is necessary; prefer the
            # more selective (non-None) one
            left = _condition_names(expr.left)
            right = _condition_names(expr.right)
            return left or right
        if expr.op == "or":
            left = _condition_names(expr.left)
            right = _condition_names(expr.right)
            if left is None or right is None:
                return None
            return left | right
    if isinstance(expr, ast.Comparison):
        return _condition_names(expr.left) or _condition_names(expr.right)
    if isinstance(expr, ast.FilterExpr):
        return _condition_names(expr.base)
    if isinstance(expr, ast.FunctionCall) and expr.name in (
            "exists", "fn:exists", "boolean", "fn:boolean") and expr.args:
        return _condition_names(expr.args[0])
    return None


def _leading_name(path: ast.PathExpr) -> Optional[str]:
    """The first concrete name test in an absolute path."""
    for step in path.steps:
        if not isinstance(step, ast.AxisStep):
            return None
        if isinstance(step.test, ast.KindTest):
            continue  # e.g. the descendant-or-self::node() of //
        if step.test.local_name:
            return step.test.local_name
        return None
    return None


def element_names(document: Document) -> frozenset[str]:
    """One-pass set of element local names in a message body."""
    names = set()
    stack: list[Node] = list(document.children)
    while stack:
        node = stack.pop()
        if isinstance(node, Element):
            names.add(node.name.local_name)
            stack.extend(node.children)
    return frozenset(names)
