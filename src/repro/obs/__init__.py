"""Unified telemetry plane: metrics registry, lifecycle tracing, logging.

See DESIGN.md § Observability for the registry layout, metric naming
convention, trace header format, and overhead budget.
"""

from .logs import (JsonLineFormatter, SpoolWriter, configure_json_logging,
                   get_logger, log_event, pump_stream_to_spool)
from .metrics import (COUNT_BUCKETS, LATENCY_BUCKETS, NULL_HISTOGRAM,
                      OBS_ENV, Counter, Gauge, Histogram, MetricsRegistry,
                      flatten_snapshot, merge_snapshots, obs_enabled,
                      render_prometheus)
from .trace import (EVENTS, TRACE_PROPERTY, Tracer, ensure_trace,
                    new_trace_id, stitch)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "EVENTS",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_HISTOGRAM",
    "OBS_ENV",
    "SpoolWriter",
    "TRACE_PROPERTY",
    "Tracer",
    "configure_json_logging",
    "ensure_trace",
    "flatten_snapshot",
    "get_logger",
    "log_event",
    "merge_snapshots",
    "new_trace_id",
    "obs_enabled",
    "pump_stream_to_spool",
    "render_prometheus",
    "stitch",
]
