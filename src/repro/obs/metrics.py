"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the single funnel for every number the runtime emits
(DESIGN.md § Observability).  Three instrument kinds cover the paper's
runtime surface:

* :class:`Counter` — monotone event counts.  Counters **always count**,
  even when observability is disabled: the engine's semantic statistics
  (``ExecutionStatistics``, ``WAL.stats()``) are views over them and
  benchmarks read those views with ``DEMAQ_OBS=0``.  A single locked
  integer increment is the whole cost.
* :class:`Gauge` — point-in-time values (queue depths, pending frames).
  Mostly registered as *pull* collectors via :meth:`MetricsRegistry.collect`
  so a scrape reads the live value and steady-state pays nothing.
* :class:`Histogram` — fixed-bucket latency/size distributions.  When the
  registry is disabled, :meth:`MetricsRegistry.histogram` hands back a
  shared no-op instrument and call sites skip their ``perf_counter``
  pairs, so the disabled path stays inert.

Naming convention: ``demaq_<subsystem>_<what>[_total|_seconds]`` with
Prometheus semantics (counters end in ``_total``, durations in
``_seconds``).  Snapshots are plain JSON dicts so worker processes can
ship them over the ctl channel; :func:`merge_snapshots` sums them and
:func:`render_prometheus` emits text exposition format for ``/metrics``.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from ..config import read_field

OBS_ENV = "DEMAQ_OBS"

#: Default buckets for duration histograms, in seconds (100µs .. 10s).
LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default buckets for small-count histograms (batch fill and friends).
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def obs_enabled() -> bool:
    """Whether observability is on for this process (``DEMAQ_OBS``)."""
    return read_field("obs")


class Counter:
    """A monotone counter.  ``inc`` is thread-safe and always live."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A settable point-in-time value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket histogram (cumulative on read, per-bucket inside)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)   # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


class _NullHistogram:
    """Shared no-op histogram handed out by a disabled registry."""

    buckets: tuple[float, ...] = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> list[tuple[float, int]]:
        return [(float("inf"), 0)]


NULL_HISTOGRAM = _NullHistogram()


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Family:
    __slots__ = ("kind", "help", "series")

    def __init__(self, kind: str, help_: str) -> None:
        self.kind = kind
        self.help = help_
        self.series: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """One registry per server (one per process in a worker).

    ``enabled`` controls the *expensive* half of the plane — histograms,
    timers, and tracing hooks.  Counters and pull collectors stay live
    regardless because the engine's statistics objects are views over
    them (see module docstring).
    """

    def __init__(self, enabled: bool | None = None) -> None:
        self.enabled = obs_enabled() if enabled is None else enabled
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- instrument factories ----------------------------------------------------

    def _series(self, name: str, kind: str, help_: str,
                labels: dict[str, str], factory: Callable[[], object]):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(kind, help_)
            instrument = family.series.get(key)
            if instrument is None or not isinstance(
                    instrument, (Counter, Gauge, Histogram)):
                instrument = family.series[key] = factory()
            return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._series(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._series(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = LATENCY_BUCKETS,
                  **labels: str):
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._series(name, "histogram", help, labels,
                            lambda: Histogram(buckets))

    def collect(self, name: str, fn: Callable[[], float],
                kind: str = "counter", help: str = "",
                **labels: str) -> None:
        """Register a pull collector; re-registering replaces the callback.

        Replacement matters: ``crash_and_recover`` rebuilds engine objects
        and re-registers their collectors over the stale closures.
        """
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(kind, help)
            family.series[key] = fn

    # -- snapshot / export -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe view of every family, evaluating pull collectors."""
        with self._lock:
            families = {name: (f.kind, f.help, dict(f.series))
                        for name, f in self._families.items()}
        out: dict = {}
        for name, (kind, help_, series) in sorted(families.items()):
            rows = []
            for key, instrument in sorted(series.items()):
                labels = dict(key)
                if isinstance(instrument, Histogram):
                    rows.append({"labels": labels,
                                 "count": instrument.count,
                                 "sum": instrument.sum,
                                 "buckets": [[le, n] for le, n
                                             in instrument.cumulative()]})
                elif isinstance(instrument, (Counter, Gauge)):
                    rows.append({"labels": labels,
                                 "value": instrument.value})
                else:   # pull collector
                    try:
                        value = instrument()
                    except Exception:
                        continue
                    rows.append({"labels": labels, "value": value})
            out[name] = {"kind": kind, "help": help_, "series": rows}
        return out

    def values(self) -> dict[str, float]:
        """Flat ``{name: total}`` map for benchmark report rows."""
        return flatten_snapshot(self.snapshot())

    def render(self) -> str:
        return render_prometheus(self.snapshot())


# -- snapshot algebra ------------------------------------------------------------

def flatten_snapshot(snapshot: dict) -> dict[str, float]:
    """Sum each family across label sets: histograms become _count/_sum."""
    flat: dict[str, float] = {}
    for name, family in snapshot.items():
        if family["kind"] == "histogram":
            flat[name + "_count"] = sum(r.get("count", 0)
                                        for r in family["series"])
            flat[name + "_sum"] = sum(r.get("sum", 0.0)
                                      for r in family["series"])
        else:
            flat[name] = sum(r.get("value", 0) for r in family["series"])
    return flat


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Sum several per-process snapshots into one cluster-wide view.

    Counters, gauges, and histogram buckets all add; label sets that
    appear in only some processes pass through unchanged.
    """
    merged: dict = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            target = merged.setdefault(
                name, {"kind": family["kind"], "help": family["help"],
                       "series": []})
            index = {_label_key(r["labels"]): r for r in target["series"]}
            for row in family["series"]:
                key = _label_key(row["labels"])
                existing = index.get(key)
                if existing is None:
                    copied = {"labels": dict(row["labels"])}
                    if "buckets" in row:
                        copied["count"] = row["count"]
                        copied["sum"] = row["sum"]
                        copied["buckets"] = [list(b) for b in row["buckets"]]
                    else:
                        copied["value"] = row["value"]
                    target["series"].append(copied)
                    index[key] = copied
                elif "buckets" in row:
                    existing["count"] += row["count"]
                    existing["sum"] += row["sum"]
                    merged_buckets = {le: n for le, n
                                      in existing["buckets"]}
                    for le, n in row["buckets"]:
                        merged_buckets[le] = merged_buckets.get(le, 0) + n
                    existing["buckets"] = [[le, n] for le, n
                                           in sorted(merged_buckets.items())]
                else:
                    existing["value"] += row["value"]
    return merged


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name, family in sorted(snapshot.items()):
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for row in family["series"]:
            labels = row["labels"]
            if "buckets" in row:
                for le, count in row["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(le)
                    lines.append(f"{name}_bucket"
                                 f"{_format_labels(bucket_labels)} {count}")
                lines.append(f"{name}_sum{_format_labels(labels)} "
                             f"{_format_value(row['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} "
                             f"{row['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels)} "
                             f"{_format_value(row['value'])}")
    return "\n".join(lines) + "\n"
