"""Message-lifecycle tracing: correlation ids and per-process span buffers.

A trace id is minted once at the system boundary (the HTTP gateway, or
any producer that sets the property explicitly) and rides in the message
properties from then on.  Properties serialize into SOAP envelope header
blocks (§4.2), so the id crosses sockets, rebalance re-ingestion, and
§3.6 error-queue escalation without any extra wire format.

Each process keeps a bounded ring buffer of :class:`Span` events
(``received → routed → enqueued → scheduled → executed → committed →
delivered``, plus ``failed``).  Buffers are stitched across workers by
trace id: the coordinator asks each worker for its spans over the ctl
channel and sorts the union by wall-clock timestamp (same-host clocks;
per-process order is additionally preserved by a sequence number).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from typing import Iterable

#: Message property carrying the correlation id (ad-hoc, so it passes
#: through gateways, rebalance, and error routing untouched).
TRACE_PROPERTY = "traceId"

#: Canonical lifecycle event names, in nominal order.
EVENTS = ("received", "routed", "enqueued", "scheduled", "executed",
          "committed", "delivered", "failed")


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def ensure_trace(properties: dict) -> tuple[dict, str]:
    """Return ``(properties, trace_id)``, minting an id if absent."""
    trace_id = properties.get(TRACE_PROPERTY)
    if trace_id is None:
        trace_id = new_trace_id()
        properties = dict(properties)
        properties[TRACE_PROPERTY] = trace_id
    return properties, str(trace_id)


class Tracer:
    """A bounded per-process span buffer (drop-oldest ring)."""

    def __init__(self, node: str = "", enabled: bool | None = None,
                 capacity: int = 4096) -> None:
        from .metrics import obs_enabled
        self.node = node
        self.enabled = obs_enabled() if enabled is None else enabled
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, trace_id, event: str, **detail) -> None:
        """Append a span event; no-op when disabled or untraced."""
        if not self.enabled or not trace_id:
            return
        span = {"trace": str(trace_id), "event": event, "node": self.node,
                "ts": time.time()}
        if detail:
            span["detail"] = {k: v for k, v in detail.items()
                              if v is not None}
        with self._lock:
            self._seq += 1
            span["seq"] = self._seq
            self._spans.append(span)

    def spans(self, trace_id: str | None = None) -> list[dict]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s["trace"] == str(trace_id)]
        return spans


def stitch(span_lists: Iterable[list[dict]],
           trace_id: str | None = None) -> list[dict]:
    """Merge spans from several processes into one timeline.

    Sorted by wall clock, tie-broken by (node, seq) so each process's
    own ordering survives identical timestamps.
    """
    merged: list[dict] = []
    for spans in span_lists:
        merged.extend(spans)
    if trace_id is not None:
        merged = [s for s in merged if s["trace"] == str(trace_id)]
    merged.sort(key=lambda s: (s["ts"], s.get("node", ""), s.get("seq", 0)))
    return merged
