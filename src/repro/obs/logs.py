"""Structured JSON logging and capped spool files.

``src/`` previously wrote nothing through :mod:`logging`; worker
processes dumped bare tracebacks to an unbounded stderr spool.  This
module gives every component a namespaced stdlib logger
(``demaq.<component>``) with a JSON-lines formatter, and a
:class:`SpoolWriter` that caps and rotates the per-worker spool files
the process cluster keeps for crash reports.

Library code calls :func:`get_logger` freely — the ``demaq`` root gets a
``NullHandler`` so nothing prints unless a process opts in by calling
:func:`configure_json_logging` (the worker main loop does, targeting its
stderr spool).
"""

from __future__ import annotations

import json
import logging
import os
import threading

LOG_LEVEL_ENV = "DEMAQ_LOG_LEVEL"
ROOT_LOGGER = "demaq"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {"ts": round(record.created, 6),
                 "level": record.levelname.lower(),
                 "logger": record.name,
                 "event": record.getMessage()}
        fields = getattr(record, "demaq", None)
        if fields:
            entry.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=str)


def get_logger(name: str) -> logging.Logger:
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(logger: logging.Logger, event: str,
              level: int = logging.INFO, **fields) -> None:
    """Emit ``event`` with structured ``fields`` (JSON keys, not text)."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"demaq": fields})


def configure_json_logging(stream=None, level: str | None = None,
                           ) -> logging.Logger:
    """Attach a JSON-lines handler to the ``demaq`` root logger.

    Idempotent per stream; ``DEMAQ_LOG_LEVEL`` overrides ``level``
    (default INFO).
    """
    root = logging.getLogger(ROOT_LOGGER)
    from ..config import read_field
    configured = read_field("log_level")
    # A non-default configured level wins over the caller's argument
    # (mirrors the old env-beats-argument behaviour).
    chosen = (configured if configured != "INFO" else None) or level or "INFO"
    root.setLevel(getattr(logging, chosen.upper(), logging.INFO))
    for handler in root.handlers:
        if getattr(handler, "_demaq_json", False) and \
                getattr(handler, "stream", None) is stream:
            return root
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    handler._demaq_json = True
    root.addHandler(handler)
    return root


class SpoolWriter:
    """A size-capped, self-rotating line sink backing worker stderr spools.

    Keeps at most two generations on disk: the live file at ``path`` and
    one rotated predecessor at ``path + ".1"``.  When the live file
    would exceed ``cap_bytes`` it is closed, renamed over the rotated
    slot, and a fresh file is started — so a chatty or crash-looping
    worker can never fill the disk, while crash reports still find the
    most recent output at a stable path.
    """

    def __init__(self, path: str, cap_bytes: int = 512 * 1024) -> None:
        self.path = path
        self.cap_bytes = max(1, cap_bytes)
        self._lock = threading.Lock()
        self._file = open(path, "w", encoding="utf-8")
        self._written = 0
        self.rotations = 0

    @property
    def rotated_path(self) -> str:
        return self.path + ".1"

    def write(self, text: str) -> None:
        if not text:
            return
        data = text if text.endswith("\n") else text + "\n"
        with self._lock:
            if self._file.closed:
                return
            if self._written and \
                    self._written + len(data) > self.cap_bytes:
                self._rotate_locked()
            self._file.write(data)
            self._file.flush()
            self._written += len(data)

    def _rotate_locked(self) -> None:
        self._file.close()
        os.replace(self.path, self.rotated_path)
        self._file = open(self.path, "w", encoding="utf-8")
        self._written = 0
        self.rotations += 1

    def tail(self, limit: int = 2000) -> str:
        """Most recent output (live file, falling back across rotation)."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()
        chunks = []
        for candidate in (self.rotated_path, self.path):
            try:
                with open(candidate, "r", encoding="utf-8",
                          errors="replace") as fh:
                    chunks.append(fh.read())
            except OSError:
                continue
        return "".join(chunks)[-limit:]

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def pump_stream_to_spool(stream, spool: SpoolWriter) -> threading.Thread:
    """Copy a subprocess pipe into a spool on a daemon thread."""

    def drain() -> None:
        try:
            for line in stream:
                spool.write(line)
        except (OSError, ValueError):
            pass
        finally:
            try:
                stream.close()
            except OSError:
                pass

    thread = threading.Thread(target=drain, daemon=True,
                              name=f"demaq-spool-{os.path.basename(spool.path)}")
    thread.start()
    return thread
