"""Parser for QDL statements (``create queue|property|slicing|rule|...``).

Reuses the XQuery lexer/parser: property value expressions and rule
bodies are parsed in-place with the shared recursive-descent machinery,
so a QDL module is a single token stream — no fragile regex splitting.
Statements may optionally be separated by ``;``.
"""

from __future__ import annotations

from ..xquery.errors import StaticError
from ..xquery.lexer import EOF, INTEGER, NAME, STRING, SYMBOL
from ..xquery.parser import Parser
from .model import (Application, CollectionDef, ExtensionUse, IndexDef,
                    PropertyBinding, PropertyDef, QueueDef, QueueKind,
                    QueueMode, RuleDef, SlicingDef)

_QUEUE_KINDS = {kind.value: kind for kind in QueueKind}
_QUEUE_MODES = {mode.value: mode for mode in QueueMode}


class QDLParser(Parser):
    """Extends the expression parser with statement productions."""

    def parse_module(self) -> Application:
        app = Application()
        while True:
            while self.current.is_symbol(";"):
                self.advance()
            if self.current.type == EOF:
                return app
            self.parse_statement(app)

    def parse_statement(self, app: Application) -> None:
        self.expect_name("create")
        token = self.current
        if token.is_name("queue"):
            self.advance()
            queue = self.parse_queue()
            self._define(app.queues, queue.name, queue, "queue")
        elif token.is_name("property"):
            self.advance()
            prop = self.parse_property()
            self._define(app.properties, prop.name, prop, "property")
        elif token.is_name("slicing"):
            self.advance()
            slicing = self.parse_slicing()
            self._define(app.slicings, slicing.name, slicing, "slicing")
        elif token.is_name("index"):
            self.advance()
            index = self.parse_index()
            self._define(app.indexes, index.name, index, "index")
        elif token.is_name("rule"):
            self.advance()
            app.rules.append(self.parse_rule(app))
        elif token.is_name("collection"):
            self.advance()
            name = self.expect_qname()
            self._define(app.collections, name, CollectionDef(name),
                         "collection")
        elif token.is_name("errorqueue"):
            # module-level default error queue: `create errorqueue <name>`
            self.advance()
            app.system_error_queue = self.expect_qname()
        else:
            raise self.error(
                "expected 'queue', 'property', 'slicing', 'index', 'rule', "
                "'collection', or 'errorqueue'")

    def _define(self, table: dict, name: str, value, what: str) -> None:
        if name in table:
            raise self.error(f"duplicate {what} definition {name!r}")
        table[name] = value

    # -- create queue -------------------------------------------------------

    def parse_queue(self) -> QueueDef:
        name = self.expect_qname()
        self.expect_name("kind")
        kind_token = self.expect_qname()
        try:
            kind = _QUEUE_KINDS[kind_token]
        except KeyError:
            raise self.error(
                f"unknown queue kind {kind_token!r} "
                f"(expected one of {sorted(_QUEUE_KINDS)})") from None
        self.expect_name("mode")
        mode_token = self.expect_qname()
        try:
            mode = _QUEUE_MODES[mode_token]
        except KeyError:
            raise self.error(
                f"unknown queue mode {mode_token!r} "
                f"(expected persistent or transient)") from None
        queue = QueueDef(name, kind, mode)

        while True:
            token = self.current
            if token.is_name("priority"):
                self.advance()
                sign = 1
                if self.current.is_symbol("-"):
                    self.advance()
                    sign = -1
                if self.current.type != INTEGER:
                    raise self.error("expected an integer priority")
                queue.priority = sign * int(self.advance().value)
            elif token.is_name("schema"):
                self.advance()
                if self.current.type != STRING:
                    raise self.error("expected a schema string literal")
                queue.schema_source = self.advance().value
            elif token.is_name("interface"):
                self.advance()
                queue.interface = self._file_or_name()
                self.expect_name("port")
                queue.port = self.expect_qname()
            elif token.is_name("using"):
                self.advance()
                extension = self.expect_qname()
                self.expect_name("policy")
                queue.extensions.append(
                    ExtensionUse(extension, self._file_or_name()))
            elif token.is_name("errorqueue"):
                self.advance()
                queue.error_queue = self.expect_qname()
            elif token.is_name("endpoint"):
                self.advance()
                if self.current.type == STRING:
                    queue.endpoint = self.advance().value
                else:
                    queue.endpoint = self.expect_qname()
            else:
                return queue

    def _file_or_name(self) -> str:
        if self.current.type == STRING:
            return self.advance().value
        if self.current.type == NAME:
            return self.advance().value
        raise self.error("expected a file name")

    # -- create property -----------------------------------------------------

    def parse_property(self) -> PropertyDef:
        name = self.expect_qname()
        self.expect_name("as")
        type_name = self.expect_qname()
        prop = PropertyDef(name, type_name)
        while self.current.is_name("inherited", "fixed"):
            flag = self.advance().value
            if flag == "inherited":
                prop.inherited = True
            else:
                prop.fixed = True
        while self.current.is_name("queue"):
            self.advance()
            queues = [self.expect_qname()]
            while self.current.is_symbol(","):
                self.advance()
                queues.append(self.expect_qname())
            self.expect_name("value")
            start = self.current.start
            value = self.parse_expr_single()
            source = self.lexer.text[start:self._previous_end()].strip()
            prop.bindings.append(PropertyBinding(queues, source, value))
        if not prop.bindings:
            raise self.error(
                f"property {name!r} needs at least one 'queue … value …' "
                "binding")
        return prop

    def _previous_end(self) -> int:
        # The current token starts after the expression just parsed.
        return self.current.start

    # -- create slicing --------------------------------------------------------

    def parse_slicing(self) -> SlicingDef:
        name = self.expect_qname()
        self.expect_name("on")
        property_name = self.expect_qname()
        return SlicingDef(name, property_name)

    # -- create index ------------------------------------------------------------

    def parse_index(self) -> IndexDef:
        """``create index [<name>] on queue <q> property <p>``.

        The name is optional; an anonymous index is named
        ``<queue>_<property>_idx``.
        """
        name = None
        if not self.current.is_name("on"):
            name = self.expect_qname()
        self.expect_name("on")
        self.expect_name("queue")
        queue = self.expect_qname()
        self.expect_name("property")
        property_name = self.expect_qname()
        if name is None:
            name = f"{queue}_{property_name}_idx"
        return IndexDef(name, queue, property_name)

    # -- create rule -------------------------------------------------------------

    def parse_rule(self, app: Application) -> RuleDef:
        name = self.expect_qname()
        self.expect_name("for")
        target = self.expect_qname()
        error_queue = None
        if self.current.is_name("errorqueue"):
            self.advance()
            error_queue = self.expect_qname()
        start = self.current.start
        body = self.parse_expr_single()
        source = self.lexer.text[start:self._previous_end()].strip()
        if any(rule.name == name for rule in app.rules):
            raise self.error(f"duplicate rule definition {name!r}")
        return RuleDef(name, target, source, body, error_queue)


def parse_qdl(text: str,
              namespaces: dict[str, str] | None = None) -> Application:
    """Parse a QDL module into an (unvalidated) :class:`Application`.

    >>> app = parse_qdl("create queue crm kind basic mode persistent")
    >>> app.queues["crm"].persistent
    True
    """
    return QDLParser(text, namespaces).parse_module()
