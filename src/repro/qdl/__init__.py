"""QDL/QML: the Demaq application language compiler.

``compile_application`` is the one-stop entry: parse + validate.
"""

from __future__ import annotations

from .model import (Application, CollectionDef, ExtensionUse, IndexDef,
                    PropertyBinding, PropertyDef, QueueDef, QueueKind,
                    QueueMode, RuleDef, SlicingDef)
from .parser import parse_qdl
from .validator import SYSTEM_PROPERTIES, ValidationError, validate


def compile_application(source: str,
                        namespaces: dict[str, str] | None = None
                        ) -> Application:
    """Compile and validate a QDL module.

    >>> app = compile_application('''
    ...     create queue crm kind basic mode persistent;
    ...     create rule r1 for crm
    ...         if (//ping) then do enqueue <pong/> into crm
    ... ''')
    >>> app.rule_names()
    ['r1']
    """
    app = parse_qdl(source, namespaces)
    validate(app)
    return app


__all__ = [
    "Application", "CollectionDef", "ExtensionUse", "IndexDef",
    "PropertyBinding", "PropertyDef", "QueueDef", "QueueKind", "QueueMode",
    "RuleDef", "SlicingDef",
    "parse_qdl", "validate", "ValidationError", "SYSTEM_PROPERTIES",
    "compile_application",
]
