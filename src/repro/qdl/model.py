"""The application model produced by the QDL compiler.

A Demaq application (paper Fig. 1) is a set of queue definitions,
property definitions, slicings, and rules.  These dataclasses are the
compiled, name-resolved form the engine deploys; each keeps the original
source text of embedded expressions for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..xmldm.schema import Schema
from ..xquery import ast


class QueueKind(str, Enum):
    """The queue kinds of paper §2.1."""

    BASIC = "basic"
    INCOMING_GATEWAY = "incomingGateway"
    OUTGOING_GATEWAY = "outgoingGateway"
    ECHO = "echo"


class QueueMode(str, Enum):
    """Persistent queues survive crashes; transient queues may lose data."""

    PERSISTENT = "persistent"
    TRANSIENT = "transient"


@dataclass
class ExtensionUse:
    """A ``using <extension> policy <file>`` clause (WS-RM, WS-Security…)."""

    name: str
    policy: str


@dataclass
class QueueDef:
    """One ``create queue`` statement."""

    name: str
    kind: QueueKind
    mode: QueueMode
    priority: int = 0
    schema_source: Optional[str] = None
    schema: Optional[Schema] = None
    interface: Optional[str] = None
    port: Optional[str] = None
    extensions: list[ExtensionUse] = field(default_factory=list)
    error_queue: Optional[str] = None
    endpoint: Optional[str] = None     # remote address for gateway queues

    @property
    def is_gateway(self) -> bool:
        return self.kind in (QueueKind.INCOMING_GATEWAY,
                             QueueKind.OUTGOING_GATEWAY)

    @property
    def persistent(self) -> bool:
        return self.mode is QueueMode.PERSISTENT

    def uses_extension(self, name: str) -> bool:
        return any(e.name == name for e in self.extensions)


@dataclass
class PropertyBinding:
    """One ``queue a, b value <expr>`` clause of a property definition."""

    queues: list[str]
    value_source: str
    value: ast.Expr


@dataclass
class PropertyDef:
    """One ``create property`` statement (paper §2.2).

    Value resolution per message, in priority order:

    1. *fixed* properties always take the computed value (explicit
       setting is a deployment error, enforced at runtime);
    2. an explicit ``with name value`` on the enqueue;
    3. an inherited value from the triggering message (``inherited``);
    4. the computed/default value expression bound to the target queue;
    5. otherwise the property is absent.
    """

    name: str
    type_name: str = "xs:string"
    inherited: bool = False
    fixed: bool = False
    bindings: list[PropertyBinding] = field(default_factory=list)

    def binding_for(self, queue: str) -> Optional[PropertyBinding]:
        for binding in self.bindings:
            if queue in binding.queues:
                return binding
        return None

    def defined_on(self, queue: str) -> bool:
        return self.binding_for(queue) is not None


@dataclass
class SlicingDef:
    """One ``create slicing <name> on <property>`` statement (§2.3.1)."""

    name: str
    property_name: str


@dataclass
class IndexDef:
    """One ``create index [<name>] on queue <q> property <p>`` statement.

    Declares a property-value secondary index: the store maintains a
    B+-tree keyed by the property's typed value over the queue's live
    messages, and the rule compiler pushes matching equality predicates
    over ``qs:queue(<q>)`` down to index lookups (§4.3 materialization
    applied to property predicates)."""

    name: str
    queue: str
    property_name: str


@dataclass
class RuleDef:
    """One ``create rule`` statement: an updating expression on a target.

    The target is either a physical queue or a slicing (in which case the
    rule fires for every slice of that slicing, §3.5.1).
    """

    name: str
    target: str
    body_source: str
    body: ast.Expr
    error_queue: Optional[str] = None


@dataclass
class CollectionDef:
    """A named master-data collection (accessed via fn:collection, §3.5.2)."""

    name: str


@dataclass
class Application:
    """A complete compiled Demaq application."""

    queues: dict[str, QueueDef] = field(default_factory=dict)
    properties: dict[str, PropertyDef] = field(default_factory=dict)
    slicings: dict[str, SlicingDef] = field(default_factory=dict)
    indexes: dict[str, IndexDef] = field(default_factory=dict)
    rules: list[RuleDef] = field(default_factory=list)
    collections: dict[str, CollectionDef] = field(default_factory=dict)
    system_error_queue: Optional[str] = None

    def index_on(self, queue: str, property_name: str
                 ) -> Optional[IndexDef]:
        """The index covering (queue, property), if one is declared."""
        for index in self.indexes.values():
            if index.queue == queue and index.property_name == property_name:
                return index
        return None

    def indexed_properties(self, queue: str) -> list[str]:
        """Property names with a declared index on *queue*."""
        return [index.property_name for index in self.indexes.values()
                if index.queue == queue]

    def rules_for(self, target: str) -> list[RuleDef]:
        """Rules attached to a queue or slicing, in definition order."""
        return [rule for rule in self.rules if rule.target == target]

    def slicings_on_queue(self, queue: str) -> list[SlicingDef]:
        """Slicings whose property is defined on *queue*."""
        out = []
        for slicing in self.slicings.values():
            prop = self.properties.get(slicing.property_name)
            if prop is not None and prop.defined_on(queue):
                out.append(slicing)
        return out

    def rule_names(self) -> list[str]:
        return [rule.name for rule in self.rules]
