"""Static validation of compiled applications.

The paper (§3.6) distinguishes compile-time detectable errors from
runtime errors; this pass catches everything that can be caught before
deployment: dangling names, slice functions outside slicing rules,
schema problems, and the WS-ReliableMessaging persistence constraint
(§2.1.2: "the created queue must be persistent").
"""

from __future__ import annotations

from ..xmldm.schema import SchemaError, compile_schema
from ..xquery import ast
from ..xquery.errors import StaticError
from .model import Application, QueueKind

#: Property names reserved for the system (paper §2.2 "System" values).
SYSTEM_PROPERTIES = frozenset({
    "messageID", "creationTime", "creatingRule", "sourceQueue",
    "Sender", "Recipient", "connectionHandle", "timeout", "target",
})


class ValidationError(StaticError):
    """A static application error, with every finding in the message."""

    def __init__(self, findings: list[str]):
        self.findings = findings
        summary = "; ".join(findings)
        super().__init__(f"invalid application: {summary}")


def validate(app: Application) -> None:
    """Raise :class:`ValidationError` if *app* is not deployable."""
    findings: list[str] = []
    _check_queues(app, findings)
    _check_properties(app, findings)
    _check_slicings(app, findings)
    _check_indexes(app, findings)
    _check_rules(app, findings)
    if app.system_error_queue and app.system_error_queue not in app.queues:
        findings.append(
            f"system error queue {app.system_error_queue!r} is not defined")
    if findings:
        raise ValidationError(findings)


def _check_queues(app: Application, findings: list[str]) -> None:
    for queue in app.queues.values():
        if queue.schema_source is not None:
            try:
                queue.schema = compile_schema(queue.schema_source)
            except (SchemaError, Exception) as exc:  # parse errors too
                if not isinstance(exc, (SchemaError,)) and \
                        type(exc).__name__ != "XMLParseError":
                    raise
                findings.append(
                    f"queue {queue.name!r}: bad schema ({exc})")
        if queue.error_queue and queue.error_queue not in app.queues:
            findings.append(
                f"queue {queue.name!r}: error queue "
                f"{queue.error_queue!r} is not defined")
        if queue.uses_extension("WS-ReliableMessaging") and not queue.persistent:
            findings.append(
                f"queue {queue.name!r}: WS-ReliableMessaging requires a "
                "persistent queue")
        if queue.is_gateway and queue.interface is None \
                and queue.endpoint is None:
            findings.append(
                f"gateway queue {queue.name!r} needs an interface or "
                "endpoint")
        if not queue.is_gateway and (queue.interface or queue.extensions):
            findings.append(
                f"queue {queue.name!r}: interface/extension clauses are "
                "only valid on gateway queues")


def _check_properties(app: Application, findings: list[str]) -> None:
    for prop in app.properties.values():
        if prop.name in SYSTEM_PROPERTIES:
            findings.append(
                f"property {prop.name!r} shadows a system property")
        for binding in prop.bindings:
            for queue in binding.queues:
                if queue not in app.queues:
                    findings.append(
                        f"property {prop.name!r}: queue {queue!r} is not "
                        "defined")


def _check_slicings(app: Application, findings: list[str]) -> None:
    for slicing in app.slicings.values():
        if slicing.name in app.queues:
            findings.append(
                f"slicing {slicing.name!r} collides with a queue name")
        if slicing.property_name not in app.properties:
            findings.append(
                f"slicing {slicing.name!r}: property "
                f"{slicing.property_name!r} is not defined")


def _check_indexes(app: Application, findings: list[str]) -> None:
    seen: set[tuple[str, str]] = set()
    for index in app.indexes.values():
        if index.queue not in app.queues:
            findings.append(
                f"index {index.name!r}: queue {index.queue!r} is not defined")
        prop = app.properties.get(index.property_name)
        if prop is None:
            findings.append(
                f"index {index.name!r}: property {index.property_name!r} is "
                "not defined")
        elif index.queue in app.queues and not prop.defined_on(index.queue):
            findings.append(
                f"index {index.name!r}: property {index.property_name!r} has "
                f"no binding on queue {index.queue!r}")
        pair = (index.queue, index.property_name)
        if pair in seen:
            findings.append(
                f"index {index.name!r}: duplicate index on "
                f"({index.queue!r}, {index.property_name!r})")
        seen.add(pair)


def _check_rules(app: Application, findings: list[str]) -> None:
    seen: set[str] = set()
    for rule in app.rules:
        if rule.name in seen:
            findings.append(f"duplicate rule name {rule.name!r}")
        seen.add(rule.name)

        on_slicing = rule.target in app.slicings
        if not on_slicing and rule.target not in app.queues:
            findings.append(
                f"rule {rule.name!r}: target {rule.target!r} is neither a "
                "queue nor a slicing")
        if rule.error_queue and rule.error_queue not in app.queues:
            findings.append(
                f"rule {rule.name!r}: error queue {rule.error_queue!r} is "
                "not defined")

        for node in ast.walk(rule.body):
            if isinstance(node, ast.FunctionCall):
                if node.name in ("qs:slice", "qs:slicekey") and not on_slicing:
                    findings.append(
                        f"rule {rule.name!r}: {node.name}() is only "
                        "available in rules on slicings (paper §3.5.2)")
            if isinstance(node, ast.EnqueueExpr):
                if node.queue not in app.queues:
                    findings.append(
                        f"rule {rule.name!r}: enqueue into unknown queue "
                        f"{node.queue!r}")
                else:
                    target = app.queues[node.queue]
                    if target.kind is QueueKind.INCOMING_GATEWAY:
                        findings.append(
                            f"rule {rule.name!r}: cannot enqueue into "
                            f"incoming gateway {node.queue!r}")
                for prop_name, _ in node.properties:
                    fixed = app.properties.get(prop_name)
                    if fixed is not None and fixed.fixed:
                        findings.append(
                            f"rule {rule.name!r}: property {prop_name!r} is "
                            "fixed and may not be set explicitly")
            if isinstance(node, ast.ResetExpr):
                if node.slicing is None and not on_slicing:
                    findings.append(
                        f"rule {rule.name!r}: bare 'do reset' is only "
                        "available in rules on slicings")
                if node.slicing is not None \
                        and node.slicing not in app.slicings:
                    findings.append(
                        f"rule {rule.name!r}: reset of unknown slicing "
                        f"{node.slicing!r}")
