"""Full-jitter exponential backoff, shared across retry sites.

One policy object covers the two places the runtime retries with
backoff: the rule executor's deadlock/timeout requeue delay (PR 8) and
the socket transport's transient-connect budget (failover windows leave
a worker's listener down for a few milliseconds; an immediate
``disconnectedTransport`` verdict would turn every such blip into a §3.6
error-queue detour).

Full jitter (delay drawn uniformly from ``[0, min(cap, base * 2**n)]``)
is the standard cure for retry synchronization: under contention the
retriers spread out instead of stampeding in lockstep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class BackoffPolicy:
    """A bounded full-jitter exponential backoff schedule.

    ``base`` seconds doubles per attempt up to ``cap``; a ``base`` of 0
    disables delays entirely (used by tests that want fast failure).
    """

    base: float = 0.002
    cap: float = 0.05

    def delay(self, attempt: int) -> float:
        """The sleep before retry *attempt* (1-based): full jitter."""
        if self.base <= 0.0 or attempt <= 0:
            return 0.0
        ceiling = min(self.cap, self.base * (2 ** (attempt - 1)))
        return random.uniform(0.0, ceiling)

    def sleep(self, attempt: int,
              sleeper: Callable[[float], None] = time.sleep) -> float:
        """Sleep the jittered delay for *attempt*; returns the delay."""
        delay = self.delay(attempt)
        if delay > 0.0:
            sleeper(delay)
        return delay

    def retry(self, fn: Callable[[], object], attempts: int,
              retryable: tuple[type[BaseException], ...] = (Exception,),
              sleeper: Callable[[float], None] = time.sleep):
        """Call *fn* up to *attempts* times, sleeping between failures.

        Re-raises the last exception once the budget is spent.  The
        budget is intentionally small everywhere this is used — backoff
        masks transient blips, it must not hide a dead peer for long.
        """
        last: BaseException | None = None
        for attempt in range(1, max(1, attempts) + 1):
            try:
                return fn()
            except retryable as exc:      # noqa: PERF203 - retry loop
                last = exc
                if attempt < attempts:
                    self.sleep(attempt, sleeper)
        assert last is not None
        raise last


def policy_from_env(var: str, default_base: float = 0.002,
                    cap: float = 0.05) -> BackoffPolicy:
    """Build a policy from an env knob holding the base delay seconds."""
    import os

    raw = os.environ.get(var, "")
    base = float(raw) if raw else default_base
    return BackoffPolicy(base=base, cap=cap)
