"""Shard replication via WAL shipping (DESIGN.md §9).

Each shard's primary streams its WAL byte suffix to R ring-successor
replicas; a replica applies committed transactions by continuous redo
into a standby store and acknowledges the byte offset (= LSN) it holds.
On primary loss the most-caught-up replica is promoted: it truncates
any torn tail, seals its standby store, and starts serving under a
bumped shard epoch — the old primary is *fenced* by that epoch, so a
zombie process can neither ship nor accept writes.

Everything here is transport-agnostic: the shipper talks through a
``send_fn(replica, frame) -> bool`` callable and the applier consumes
plain dict frames, so tier-1 tests wire the two directly together
while the socket cluster rides ``SocketTransport.repl_send``.

Gated behind ``DEMAQ_REPLICATION`` (default off — the unreplicated
path stays the reference); ``DEMAQ_REPLICA_COUNT`` picks R (default 1).
"""

from __future__ import annotations

from ..config import read_field

REPLICATION_ENV = "DEMAQ_REPLICATION"
REPLICA_COUNT_ENV = "DEMAQ_REPLICA_COUNT"


def replication_enabled() -> bool:
    """Whether WAL-shipping replication is on (``DEMAQ_REPLICATION``)."""
    return read_field("replication")


def replica_count() -> int:
    """How many ring successors receive each shard's WAL stream."""
    return max(0, read_field("replica_count"))


from .applier import ReplicaApplier           # noqa: E402
from .shipper import WalShipper               # noqa: E402

__all__ = [
    "REPLICATION_ENV",
    "REPLICA_COUNT_ENV",
    "ReplicaApplier",
    "WalShipper",
    "replica_count",
    "replication_enabled",
]
