"""The primary-side WAL shipper.

Rides the group-commit force path: :meth:`WalShipper.ship` is called by
the :class:`~repro.storage.groupcommit.GroupCommitCoordinator` on every
commit (all durability policies — replicas stream continuously), and
``replica-ack`` commits additionally block in :meth:`await_acked` until
one replica confirms it holds the commit's bytes in memory.

LSNs are WAL byte offsets, so the protocol is a byte-suffix copy: each
replica tracks ``sent`` and ``acked`` offsets; an acknowledgement below
``sent`` is the replica reporting a gap (dropped or reordered frame)
and simply rewinds ``sent`` so the suffix is resent.  Frames carry the
shard's *epoch*; a replica that has seen a newer epoch replies with a
fence verdict, which permanently stops this shipper — the zombie-
primary half of epoch fencing (DESIGN.md §9).
"""

from __future__ import annotations

import base64
import threading
from typing import Callable

from ..storage.wal import WriteAheadLog

#: Cap on the byte payload of one shipped frame; bigger suffixes are
#: streamed in consecutive frames (keeps frame sizes bounded under the
#: transport's length-prefixed wire format).
MAX_SEGMENT_BYTES = 512 * 1024


class WalShipper:
    """Streams one shard's WAL suffix to its replica set."""

    def __init__(self, primary: str, wal: WriteAheadLog,
                 replicas: list[str],
                 send_fn: Callable[[str, dict], bool],
                 epoch: int = 0,
                 metrics=None,
                 on_fenced: Callable[[], None] | None = None,
                 reseed_fn: Callable[[], tuple[int, dict]] | None = None):
        self.primary = primary
        self.wal = wal
        self.replicas = list(replicas)
        self.send_fn = send_fn
        self.epoch = epoch
        self.on_fenced = on_fenced
        #: Captures ``(wal_end, full store state)`` for a replica whose
        #: position fell below the truncated log's base (DESIGN.md §10).
        self.reseed_fn = reseed_fn
        self.reseeds = 0
        self._cond = threading.Condition()
        self._sent = {replica: 0 for replica in self.replicas}
        self._acked = {replica: 0 for replica in self.replicas}
        self.fenced = False
        self.ship_failures = 0
        if metrics is not None:
            self._shipped_bytes = metrics.counter(
                "demaq_repl_shipped_bytes_total",
                "WAL bytes shipped to replicas", shard=primary)
            self._acks = metrics.counter(
                "demaq_repl_acks_total",
                "Replica acknowledgements received", shard=primary)
            metrics.collect(
                "demaq_repl_lag_bytes", self.lag_bytes, kind="gauge",
                help="WAL bytes not yet acknowledged by the most-caught-up "
                     "replica", shard=primary)
        else:
            self._shipped_bytes = None
            self._acks = None

    # -- primary side ------------------------------------------------------------

    def set_replicas(self, replicas: list[str]) -> None:
        """Adopt a new replica set (membership reconfiguration)."""
        with self._cond:
            fresh = list(replicas)
            for replica in fresh:
                self._sent.setdefault(replica, 0)
                self._acked.setdefault(replica, 0)
            for stale in set(self._sent) - set(fresh):
                del self._sent[stale]
                del self._acked[stale]
            self.replicas = fresh
            self._cond.notify_all()

    def ship(self, lsn: int | None = None) -> None:
        """Send every replica the WAL suffix it is missing.

        Never blocks on the network beyond the transport's own write;
        a failed send leaves ``sent`` untouched so the suffix goes out
        again on the next commit (or :meth:`hello` probe).  *lsn* is
        advisory — shipping always streams through the current log end.
        """
        with self._cond:
            if self.fenced or not self.replicas:
                return
            end = self.wal.end_lsn()
            plan = [(replica, sent) for replica, sent in self._sent.items()
                    if sent < end]
        for replica, sent in plan:
            if sent < self.wal.start_lsn():
                # The suffix this replica needs was truncated away: the
                # byte-copy protocol cannot catch it up.  Ship the full
                # checkpoint state instead; bytes resume at its LSN.
                sent = self._reseed(replica, sent)
                if sent is None:
                    continue
            while sent < end:
                chunk_end = min(end, sent + MAX_SEGMENT_BYTES)
                raw = self.wal.read_bytes(sent, chunk_end)
                if not raw:
                    break
                frame = {"kind": "repl", "op": "append",
                         "primary": self.primary, "epoch": self.epoch,
                         "start": sent,
                         "data": base64.b64encode(raw).decode("ascii")}
                try:
                    delivered = self.send_fn(replica, frame)
                except Exception:
                    delivered = False
                if not delivered:
                    with self._cond:
                        self.ship_failures += 1
                    break
                if self._shipped_bytes is not None:
                    self._shipped_bytes.inc(len(raw))
                with self._cond:
                    if self.fenced:
                        return
                    if self._sent.get(replica) != sent:
                        # An ack rewound this replica mid-send (gap
                        # report) or the replica left the set: stop and
                        # let the next ship re-plan from the new mark.
                        break
                    self._sent[replica] = sent + len(raw)
                sent += len(raw)

    def _reseed(self, replica: str, sent: int) -> int | None:
        """Send full checkpoint state; returns the new sent mark.

        Returns None when re-seeding is unavailable or the send failed —
        the replica's mark is left untouched and a later ship retries.
        """
        if self.reseed_fn is None:
            return None
        start, state = self.reseed_fn()
        frame = {"kind": "repl", "op": "reseed",
                 "primary": self.primary, "epoch": self.epoch,
                 "start": start, "state": state}
        try:
            delivered = self.send_fn(replica, frame)
        except Exception:
            delivered = False
        if not delivered:
            with self._cond:
                self.ship_failures += 1
            return None
        with self._cond:
            if self.fenced or self._sent.get(replica) != sent:
                return None
            self._sent[replica] = start
            self.reseeds += 1
        return start

    def hello(self) -> None:
        """Probe every replica: elicits an ack (or a fence verdict).

        Used at boot/promotion so the shipper learns each replica's
        position — and so a restarted zombie discovers immediately that
        its epoch is stale.
        """
        frame = {"kind": "repl", "op": "hello",
                 "primary": self.primary, "epoch": self.epoch}
        for replica in list(self.replicas):
            try:
                self.send_fn(replica, dict(frame))
            except Exception:
                with self._cond:
                    self.ship_failures += 1

    def await_acked(self, lsn: int, timeout: float) -> bool:
        """Block until some replica has acknowledged through *lsn*.

        Returns False on timeout, on a fenced shipper, or with no
        replicas configured — the caller falls back to a local force.
        """
        with self._cond:
            if not self.replicas:
                return False
            return self._cond.wait_for(
                lambda: self.fenced
                or max(self._acked.values(), default=0) >= lsn,
                timeout=timeout) and not self.fenced

    # -- replica-side frames (delivered on transport reader threads) -------------

    def on_ack(self, frame: dict) -> None:
        replica = frame.get("node")
        lsn = int(frame.get("lsn", 0))
        with self._cond:
            if replica not in self._sent:
                return
            if self._acks is not None:
                self._acks.inc()
            self._acked[replica] = max(self._acked[replica], lsn)
            if lsn < self._sent[replica]:
                # The replica reports a gap (drop/reorder): rewind so
                # the next ship resends the suffix it is missing.
                self._sent[replica] = lsn
            self._cond.notify_all()

    def on_fence(self, frame: dict) -> None:
        """A replica saw a newer epoch for this shard: stop forever."""
        newer = int(frame.get("epoch", self.epoch + 1))
        callback = None
        with self._cond:
            if newer <= self.epoch or self.fenced:
                return
            self.fenced = True
            callback = self.on_fenced
            self._cond.notify_all()
        if callback is not None:
            callback()

    # -- introspection -----------------------------------------------------------

    def acked_lsn(self) -> int:
        """Highest LSN any replica has acknowledged."""
        with self._cond:
            return max(self._acked.values(), default=0)

    def min_acked(self) -> int | None:
        """Lowest replica ack — the truncation horizon's replica term.

        None with no replicas configured (no constraint to respect).
        """
        with self._cond:
            if not self._acked:
                return None
            return min(self._acked.values())

    def lag_bytes(self) -> int:
        with self._cond:
            best = max(self._acked.values(), default=0)
        return max(0, self.wal.end_lsn() - best)

    def status(self) -> dict:
        with self._cond:
            return {"primary": self.primary, "epoch": self.epoch,
                    "fenced": self.fenced, "end": self.wal.end_lsn(),
                    "sent": dict(self._sent), "acked": dict(self._acked)}
