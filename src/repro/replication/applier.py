"""The replica-side applier: continuous redo into a standby store.

The applier owns a *standby WAL* that mirrors a byte prefix of the
primary's log (offsets identical — shipping is a byte-range copy) and a
*standby store* built over that WAL with continuous redo: as shipped
bytes complete records, transactions are buffered per txn id and, on
COMMIT, applied through the store's redo machinery (savepoint-rolled-
back spans skipped exactly as crash recovery skips them).

Delivery can be duplicated, reordered, or torn (the chaos harness makes
sure of it); the applier is idempotent against all three:

* a segment starting below the local end is a duplicate — the overlap
  is trimmed (the bytes are identical, both sides hold the same
  stream), and anything fully contained is dropped;
* a segment starting above the local end is a gap — it is refused and
  the acknowledgement carries the local end, rewinding the shipper;
* a torn tail (half-shipped record at a crash) is physically truncated
  the moment a newer epoch's stream arrives, before any new bytes are
  accepted — redo never saw the torn bytes, so no state is lost.

Epoch fencing: the applier remembers the highest epoch it has seen for
its shard; frames from an older epoch get a ``fence`` verdict instead
of an ack, which permanently stops the stale (zombie) shipper.
"""

from __future__ import annotations

import base64
import os
import threading

from ..storage import wal as walmod
from ..storage.store import MessageStore
from ..storage.transactions import advance_txn_ids
from ..storage.wal import WriteAheadLog

#: Force the standby WAL every this-many applied bytes so a replica
#: crash re-ships only a bounded suffix (the primary still holds it).
FLUSH_EVERY_BYTES = 1 * 1024 * 1024


class ReplicaApplier:
    """Applies one primary's shipped WAL stream into a standby store."""

    def __init__(self, primary: str, node: str, epoch: int = 0,
                 standby_dir: str | None = None,
                 metrics=None,
                 store_kwargs: dict | None = None):
        self.primary = primary
        self.node = node
        self.epoch = epoch
        #: Minimum acceptable stream epoch; frames below it are fenced.
        self.fence_epoch = epoch
        self.promoted = False
        self._lock = threading.RLock()
        if standby_dir is not None:
            os.makedirs(standby_dir, exist_ok=True)
            self.wal = WriteAheadLog(os.path.join(standby_dir, "wal.log"))
        else:
            self.wal = WriteAheadLog(None)
        kwargs = dict(store_kwargs or {})
        kwargs.setdefault("recover", False)
        self.store = MessageStore(standby_dir, wal=self.wal, **kwargs)
        # The standby store must never force or ship on its own while
        # in standby: redo bypasses commit, so its coordinator is idle
        # until promotion hands the store to a live server.
        self._parsed = 0          # byte offset parsed into records
        self._last_flushed = 0
        self._txn_buf: dict[int, list] = {}
        self._max_txn = 0
        self.applied_records = 0
        self.fenced_rejects = 0
        if metrics is not None:
            self._applied_metric = metrics.counter(
                "demaq_repl_applied_records_total",
                "WAL records applied by continuous redo", shard=primary)
            self._fence_metric = metrics.counter(
                "demaq_repl_fenced_rejects_total",
                "Stale-epoch frames refused with a fence verdict",
                shard=primary)
            metrics.collect(
                "demaq_repl_standby_end", self.end_lsn, kind="gauge",
                help="Byte length of the shipped WAL prefix held",
                shard=primary)
        else:
            self._applied_metric = None
            self._fence_metric = None
        # A standby dir may already hold bytes from a previous run of
        # this replica: fold them in before accepting new segments.
        with self._lock:
            self.wal.truncate_torn_tail()
            self._advance_redo()

    # -- the shipped-frame protocol ---------------------------------------------

    def receive(self, frame: dict) -> dict | None:
        """Handle one shipper frame; returns the reply frame (ack/fence)."""
        with self._lock:
            epoch = int(frame.get("epoch", 0))
            if epoch < self.fence_epoch or self.promoted:
                self.fenced_rejects += 1
                if self._fence_metric is not None:
                    self._fence_metric.inc()
                return {"kind": "repl", "op": "fence",
                        "primary": self.primary, "node": self.node,
                        "epoch": max(self.fence_epoch,
                                     self.epoch + (1 if self.promoted
                                                   else 0))}
            if epoch > self.epoch:
                # A newer authority for this shard: heal any torn tail
                # left by the old stream before taking new bytes (the
                # new primary's prefix covers ours — DESIGN.md §9).
                self.wal.truncate_torn_tail()
                self.epoch = epoch
                self.fence_epoch = max(self.fence_epoch, epoch)
            if frame.get("op") == "hello":
                return self._ack()
            if frame.get("op") == "reseed":
                return self._reseed(frame)
            start = int(frame.get("start", 0))
            raw = base64.b64decode(frame.get("data", ""))
            local_end = self.wal.end_lsn()
            if start > local_end:
                # Gap (dropped/reordered frame): refuse, report our
                # end so the shipper rewinds and resends the suffix.
                return self._ack()
            if start < local_end:
                overlap = local_end - start
                if overlap >= len(raw):
                    return self._ack()      # pure duplicate
                raw = raw[overlap:]
            self.wal.append_bytes(raw)
            self._advance_redo()
            if self.wal.end_lsn() - self._last_flushed >= FLUSH_EVERY_BYTES:
                self.flush()
            return self._ack()

    def _reseed(self, frame: dict) -> dict:
        """Replace the standby with checkpoint state at a fresh base.

        The primary truncated the suffix we still needed, so byte copy
        cannot continue; the frame carries full store state captured at
        the primary's log end *start*.  A frame whose *start* is at or
        below our end is stale (every previously shipped byte ends at or
        below any later capture's LSN) — pure duplicate, just ack our
        position so the shipper's mark recovers.
        """
        start = int(frame.get("start", 0))
        if start > self.wal.end_lsn():
            self.wal.reset_to(start)
            self.store.install_state(frame["state"])
            self._parsed = start
            self._txn_buf.clear()
            self._max_txn = max(self._max_txn,
                                frame["state"].get("next_txn", 1) - 1)
            self.flush()
        return self._ack()

    def _ack(self) -> dict:
        return {"kind": "repl", "op": "ack", "primary": self.primary,
                "node": self.node, "epoch": self.epoch,
                "lsn": self.wal.end_lsn()}

    # -- continuous redo ---------------------------------------------------------

    def _advance_redo(self) -> None:
        """Parse newly complete records and apply committed txns."""
        for record, end in self.wal.scan(self._parsed):
            self._parsed = end
            txn = record.txn
            if txn is None:
                continue        # CHECKPOINT and friends: no redo work
            self._max_txn = max(self._max_txn, txn)
            buffered = self._txn_buf.setdefault(txn, [])
            buffered.append(record)
            if record.type == walmod.ABORT:
                del self._txn_buf[txn]
            elif record.type == walmod.COMMIT:
                self._apply_committed(self._txn_buf.pop(txn))

    def _apply_committed(self, records: list) -> None:
        # Reuse recovery's rolled-back-span analysis so savepoint
        # semantics match crash replay exactly (batch members that
        # rolled back alone are logged but dead).
        analysis = walmod.analyze_records(iter(records))
        for record in records:
            if analysis.is_rolled_back(record):
                continue
            self.store.redo_record(record)
            self.applied_records += 1
            if self._applied_metric is not None:
                self._applied_metric.inc()

    # -- standby state -----------------------------------------------------------

    def end_lsn(self) -> int:
        """Bytes of the primary's stream held (the LSN we ack)."""
        return self.wal.end_lsn()

    def flush(self) -> None:
        """Force the standby WAL (bounds re-ship after a replica crash)."""
        self.wal.flush()
        self._last_flushed = self.wal.end_lsn()

    def advance_fence(self, epoch: int) -> None:
        """Raise the minimum acceptable epoch (roster reconfiguration)."""
        with self._lock:
            self.fence_epoch = max(self.fence_epoch, epoch)

    # -- promotion ---------------------------------------------------------------

    def promote(self, epoch: int) -> MessageStore:
        """Seal the standby and return its store, ready to serve.

        Promotion rules (DESIGN.md §9): truncate any torn tail (only
        ever incomplete bytes redo never applied), drop buffered
        transactions that never committed (losers by definition — their
        COMMIT is not in the prefix), advance the txn-id counter past
        everything seen so new commits cannot collide with old ids,
        force the prefix durable, and fence every older epoch.
        """
        with self._lock:
            self.epoch = epoch
            self.fence_epoch = max(self.fence_epoch, epoch)
            self.wal.truncate_torn_tail()
            self._parsed = min(self._parsed, self.wal.end_lsn())
            self._advance_redo()
            self._txn_buf.clear()
            if self._max_txn:
                advance_txn_ids(self._max_txn + 1)
            self.store.finish_redo()
            self.wal.flush()
            self.promoted = True
            return self.store

    def status(self) -> dict:
        with self._lock:
            return {"primary": self.primary, "epoch": self.epoch,
                    "fence_epoch": self.fence_epoch, "end": self.end_lsn(),
                    "applied": self.applied_records,
                    "promoted": self.promoted}
