"""The paper's procurement case study (Fig. 3/4) as a *distributed*
application: a buyer node and a supplier node exchanging XML messages
over (simulated) gateway queues.

This is the two-node variant of tests/integration/test_paper_examples.py:
the supplier's capacity check really runs on a second Demaq server, and
the capacity result travels back through gateway queues — the message
flow of Fig. 4.

Run:  python examples/procurement.py
"""

from repro import DemaqServer, Network, run_cluster
from repro.queues import VirtualClock

BUYER = """
create queue crm kind basic mode persistent;
create queue finance kind basic mode persistent;
create queue legal kind basic mode persistent;
create queue invoices kind basic mode persistent;
create queue customer kind basic mode persistent;
create queue crmErrors kind basic mode persistent;
create errorqueue crmErrors;

(: the supplier is a remote party, reached through a gateway pair :)
create queue supplier kind outgoingGateway mode persistent
    endpoint "demaq://supplier/requests"
    using WS-ReliableMessaging policy wsrmpol.xml;
create queue supplierReplies kind incomingGateway mode persistent
    endpoint "demaq://buyer/supplierReplies";

create property requestID as xs:string fixed
    queue crm, customer, supplierReplies value //requestID;
create slicing requestMsgs on requestID;

(: Example 3.1 — fork the three checks :)
create rule newOfferRequest for crm
    if (//offerRequest) then (
        do enqueue <requestCustomerInfo>
                {//requestID} {//customerID}
            </requestCustomerInfo> into finance,
        do enqueue <requestRestrictionsInfo>
                {//requestID} {//items}
            </requestRestrictionsInfo> into legal,
        do enqueue <requestCapacityInfo>
                {//requestID} {//items}
            </requestCapacityInfo> into supplier
            with Sender value "demaq://buyer/supplierReplies"
    );

(: Example 3.2 — credit rating against the invoices queue :)
create rule checkCreditRating for finance
    if (//requestCustomerInfo) then
        do enqueue
            <customerInfoResult>{//requestID}
                {if (qs:queue("invoices")
                     [//customerID = qs:message()//customerID])
                 then <refuse/> else <accept/>}
            </customerInfoResult> into crm;

create rule checkRestrictions for legal
    if (//requestRestrictionsInfo) then
        do enqueue
            <restrictionsResult>{//requestID}
                {if (//item[@restricted = "true"])
                 then <restrictedItem/> else <clear/>}
            </restrictionsResult> into crm;

(: capacity results arrive from the supplier node :)
create rule relayCapacity for supplierReplies
    if (//capacityResult) then
        do enqueue <capacityResult>{//requestID}{//accept}{//reject}
            </capacityResult> into crm;

(: Example 3.3 — join the parallel checks :)
create rule joinOrder for requestMsgs
    if (qs:slice()[//customerInfoResult] and
        qs:slice()[//restrictionsResult] and
        qs:slice()[//capacityResult] and
        not(qs:slice()[/offer]) and not(qs:slice()[/refusal])) then
        if (qs:slice()[//customerInfoResult//accept] and
            not(qs:slice()[//restrictionsResult//restrictedItem]) and
            qs:slice()[//capacityResult//accept]) then
            do enqueue <offer><requestID>{string(qs:slicekey())}
                </requestID></offer> into customer
        else
            do enqueue <refusal><requestID>{string(qs:slicekey())}
                </requestID></refusal> into customer;

(: Fig. 8 — retention: drop the request slice once answered :)
create rule cleanupRequest for requestMsgs
    if (qs:slice()[/offer] or qs:slice()[/refusal]) then do reset
"""

SUPPLIER = """
create queue requests kind incomingGateway mode persistent
    endpoint "demaq://supplier/requests";
create queue replies kind outgoingGateway mode persistent
    endpoint "demaq://buyer/supplierReplies";

(: Check Plant Capacity (Fig. 3): accept orders of up to 3 items :)
create rule checkPlantCapacity for requests
    if (//requestCapacityInfo) then
        do enqueue
            <capacityResult>{//requestID}
                {if (count(//item) <= 3) then <accept/> else <reject/>}
            </capacityResult> into replies
"""


def offer_request(request_id, customer_id, items=2, restricted=False):
    flag = ' restricted="true"' if restricted else ""
    body = "".join(f"<item{flag if i == 0 else ''}>substance-{i}</item>"
                   for i in range(items))
    return (f"<offerRequest><requestID>{request_id}</requestID>"
            f"<customerID>{customer_id}</customerID>"
            f"<items>{body}</items></offerRequest>")


def main() -> None:
    clock = VirtualClock()
    network = Network(clock, latency=0.05)
    buyer = DemaqServer(BUYER, clock=clock, network=network, name="buyer")
    supplier = DemaqServer(SUPPLIER, clock=clock, network=network,
                           name="supplier")

    # a debtor with an unpaid invoice (drives the refuse path of Fig. 6)
    buyer.enqueue("invoices",
                  "<invoice><requestID>old-1</requestID>"
                  "<customerID>debtor-gmbh</customerID></invoice>")

    scenarios = [
        ("r-accept", "acme", 2, False),       # all checks pass
        ("r-credit", "debtor-gmbh", 2, False),  # unpaid bills → refusal
        ("r-export", "acme", 2, True),        # restricted item → refusal
        ("r-capacity", "acme", 5, False),     # too large → supplier rejects
    ]
    for request_id, customer, items, restricted in scenarios:
        buyer.enqueue("crm", offer_request(request_id, customer,
                                           items, restricted))

    # messages need simulated time to cross the network
    for _ in range(10):
        run_cluster([buyer, supplier])
        clock.advance(0.1)
    run_cluster([buyer, supplier])

    print("decisions sent to the customer:")
    decisions = {}
    for doc in buyer.queue_documents("customer"):
        root = doc.root_element
        request_id = root.first_child("requestID").text
        decisions[request_id] = root.name.local_name
        print(f"  {request_id:12s} -> {root.name.local_name}")

    assert decisions == {
        "r-accept": "offer",
        "r-credit": "refusal",
        "r-export": "refusal",
        "r-capacity": "refusal",
    }

    # retention: every answered request slice was reset, so GC can run
    reclaimed = buyer.collect_garbage()
    print(f"garbage collector reclaimed {reclaimed} messages")
    assert reclaimed > 0
    print("procurement scenario OK")


if __name__ == "__main__":
    main()
