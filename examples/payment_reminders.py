"""Example 3.4 (Fig. 9) — time-based behaviour with echo queues:
invoices, grace periods, and payment reminders.

An invoice registers a timeout at the echo queue.  If the payment is
confirmed before the timeout fires, the invoice slice is reset and no
reminder goes out; otherwise the timeout notification triggers a
reminder to the customer.

Run:  python examples/payment_reminders.py
"""

from repro import DemaqServer

GRACE_PERIOD = 14 * 24 * 3600        # two weeks, in (virtual) seconds

APPLICATION = """
create queue invoices kind basic mode persistent;
create queue finance kind basic mode persistent;
create queue customer kind basic mode persistent;
create queue echoQueue kind echo mode persistent;

create property messageRequestID as xs:string fixed
    queue invoices, finance value //requestID;
create slicing invoiceRetention on messageRequestID;

(: issuing an invoice also starts the grace-period timer :)
create rule startTimer for invoices
    if (/invoice) then
        do enqueue <timeoutNotification>{//requestID}</timeoutNotification>
            into echoQueue
            with timeout value %d
            with target value "finance";

(: Fig. 9, checkPayment: reminder if the timeout beats the payment :)
create rule checkPayment for finance
    if (//timeoutNotification) then
        let $mRID := string(qs:message()//requestID)
        let $payments := qs:queue()[/paymentConfirmation]
        return
            if (not($payments[//requestID = $mRID])) then
                do enqueue <reminder><requestID>{$mRID}</requestID>
                    </reminder> into customer
            else ();

(: Fig. 9, resetPayedInvoices: retention ends once paid AND timed out :)
create rule resetPayedInvoices for invoiceRetention
    if (qs:slice()[//timeoutNotification]
        and qs:slice()[/paymentConfirmation]) then
        do reset
""" % GRACE_PERIOD


def main() -> None:
    server = DemaqServer(APPLICATION)

    for invoice_id in ("inv-paid", "inv-unpaid"):
        server.enqueue("invoices",
                       f"<invoice><requestID>{invoice_id}</requestID>"
                       f"<amount>100</amount></invoice>")
    server.run_until_idle()

    # one customer pays within the grace period
    server.enqueue("finance",
                   "<paymentConfirmation><requestID>inv-paid</requestID>"
                   "</paymentConfirmation>")
    server.run_until_idle()

    print(f"advancing virtual time by {GRACE_PERIOD} seconds …")
    server.advance_time(GRACE_PERIOD + 1)

    reminders = server.queue_texts("customer")
    print("reminders sent:", reminders)
    assert reminders == [
        "<reminder><requestID>inv-unpaid</requestID></reminder>"]

    # the paid invoice's slice was reset → reclaimable; unpaid retained
    assert server.store.slice_lifetime("invoiceRetention", "inv-paid") == 1
    assert server.store.slice_lifetime("invoiceRetention", "inv-unpaid") == 0
    assert len(server.slice_live_messages("invoiceRetention",
                                          "inv-unpaid")) > 0
    print("payment reminder example OK")


if __name__ == "__main__":
    main()
