"""Fig. 2 — slices as virtual queues across physical queues.

Requests, orders, and delivery notifications for one customer live in
three different physical queues but form one logical group (the
customer's transaction history).  A slicing on the customerID property
gives each customer a virtual queue; an auditing rule and a retention
policy both work on that granularity.

Run:  python examples/slicing_customers.py
"""

from repro import DemaqServer

APPLICATION = """
create queue requests kind basic mode persistent;
create queue orders kind basic mode persistent;
create queue deliveryNotifications kind basic mode persistent;
create queue audit kind basic mode persistent;
create queue admin kind basic mode persistent;

create property customerID as xs:string fixed
    queue requests, orders, deliveryNotifications value //customerID;
create slicing byCustomer on customerID;

(: audit: when a delivery completes, summarize the customer's history :)
create rule summarize for byCustomer
    if (qs:message()/deliveryNotification) then
        do enqueue
            <customerSummary customer="{string(qs:slicekey())}"
                requests="{count(qs:slice()[/request])}"
                orders="{count(qs:slice()[/order])}"
                deliveries="{count(qs:slice()[/deliveryNotification])}"/>
            into audit;

(: data protection: an admin message wipes one customer's history :)
create rule forget for admin
    if (//forgetCustomer) then
        do reset(byCustomer, string(//forgetCustomer/@id))
"""


def message(kind: str, customer: str, n: int) -> str:
    return (f"<{kind}><customerID>{customer}</customerID>"
            f"<seq>{n}</seq></{kind}>")


def main() -> None:
    server = DemaqServer(APPLICATION)

    # interleaved traffic for two customers (the 23 / 42 of Fig. 2)
    for n in range(3):
        server.enqueue("requests", message("request", "cust-23", n))
    server.enqueue("requests", message("request", "cust-42", 0))
    for n in range(2):
        server.enqueue("orders", message("order", "cust-23", n))
    server.enqueue("orders", message("order", "cust-42", 0))
    server.enqueue("deliveryNotifications",
                   message("deliveryNotification", "cust-23", 0))
    server.run_until_idle()

    print("audit summaries:")
    for text in server.queue_texts("audit"):
        print("  ", text)
    summary = server.queue_documents("audit")[0].root_element
    assert summary.attribute_value("customer") == "cust-23"
    assert summary.attribute_value("requests") == "3"
    assert summary.attribute_value("orders") == "2"

    live_23 = len(server.slice_live_messages("byCustomer", "cust-23"))
    live_42 = len(server.slice_live_messages("byCustomer", "cust-42"))
    print(f"slice sizes: cust-23={live_23}  cust-42={live_42}")
    assert (live_23, live_42) == (6, 2)

    # the right-to-be-forgotten path: reset cust-23's slice, then GC
    server.enqueue("admin", '<forgetCustomer id="cust-23"/>')
    server.run_until_idle()
    assert server.slice_live_messages("byCustomer", "cust-23") == []
    reclaimed = server.collect_garbage()
    print(f"after forgetCustomer: reclaimed {reclaimed} messages; "
          f"cust-42 keeps {len(server.slice_live_messages('byCustomer', 'cust-42'))}")
    assert len(server.slice_live_messages("byCustomer", "cust-42")) == 2
    print("slicing example OK")


if __name__ == "__main__":
    main()
