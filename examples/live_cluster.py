"""A live multi-process Demaq cluster behind an HTTP gateway.

This is the "real deployment" face of the runtime (DESIGN.md §2): the
same application the simulated examples run, but

* every node is its **own OS process** with its own store and WAL,
* cluster ingest / control / drain travel over **real TCP sockets**,
* external producers talk to a **live HTTP gateway** — POST a SOAP
  envelope, get back which node took it; GET /wsdl for the interface
  the paper derives from the queue definitions.

Run:  python examples/live_cluster.py
"""

import urllib.request

from repro.netio import HttpGateway, ProcessCluster
from repro.network import build_envelope
from repro.xmldm import parse, serialize

APPLICATION = """
create queue orders kind basic mode persistent;
create queue audit kind basic mode persistent;

create property customer as xs:string fixed
    queue orders value //customerID;
create slicing byCustomer on customer;

(: flag duplicate order ids within a customer's shard :)
create rule dedup for orders
    if (count(qs:queue()[//orderID = qs:message()//orderID]) = 1) then
        do enqueue <accepted>{//orderID}</accepted> into audit
"""

CUSTOMERS = ("alice", "bob", "carol", "dave", "erin", "frank",
             "grace", "heidi", "ivan", "judy", "mallory", "oscar")


def post(url: str, payload: str) -> str:
    request = urllib.request.Request(
        url, data=payload.encode("utf-8"), method="POST",
        headers={"Content-Type": "text/xml; charset=utf-8"})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.read().decode("utf-8").strip()


def main() -> None:
    with ProcessCluster(APPLICATION, nodes=2) as cluster:
        with HttpGateway(cluster) as gateway:
            print(f"gateway listening on {gateway.base_url}")
            print(f"worker ports: "
                  f"{ {n: a[1] for n, a in cluster.addresses.items()} }\n")

            wsdl = urllib.request.urlopen(
                f"{gateway.base_url}/wsdl", timeout=10).read().decode()
            print("GET /wsdl ->")
            print("\n".join(f"  {line}" for line in wsdl.splitlines()))

            print("\nPOSTing orders through the gateway:")
            for index in range(12):
                customer = CUSTOMERS[index % len(CUSTOMERS)]
                envelope = build_envelope(
                    parse(f"<order><orderID>o{index}</orderID>"
                          f"<customerID>{customer}</customerID></order>"),
                    {})
                routed = post(f"{gateway.base_url}/enqueue/orders",
                              serialize(envelope))
                print(f"  o{index} ({customer}) -> {routed}")

            cluster.wait_idle()
            print(f"\naudit trail ({cluster.queue_depth('audit')} entries,"
                  f" shards {cluster.shard_depths('audit')}):")
            for text in cluster.queue_texts("audit"):
                print(f"  {text}")

            # the gateway serves live Prometheus text for the whole
            # cluster (its own counters + every worker over ctl)
            metrics = urllib.request.urlopen(
                f"{gateway.base_url}/metrics", timeout=10).read().decode()
            sentinels = ("demaq_gateway_accepted_total",
                         "demaq_executor_messages_processed_total",
                         "demaq_store_inserts_total",
                         "demaq_scheduler_backlog")
            print("\nGET /metrics (sentinel lines of "
                  f"{len(metrics.splitlines())}):")
            for line in metrics.splitlines():
                if line.startswith(sentinels):
                    print(f"  {line}")

            # one POSTed order's lifecycle, stitched across processes
            envelope = build_envelope(
                parse("<order><orderID>oTrace</orderID>"
                      "<customerID>trent</customerID></order>"), {})
            routed = post(f"{gateway.base_url}/enqueue/orders",
                          serialize(envelope))
            trace_id = routed.split('trace="')[1].split('"')[0]
            cluster.wait_idle()
            print(f"\nlifecycle of trace {trace_id}:")
            for span in cluster.trace(trace_id):
                print(f"  {span['event']:<10} on {span['node']}")

            cluster.drain()
            print("\nworkers drained cleanly "
                  f"(exit codes: "
                  f"{ {n: w.proc.returncode for n, w in cluster.workers.items()} })")


if __name__ == "__main__":
    main()
