"""Quickstart: a two-queue Demaq application in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import DemaqServer

APPLICATION = """
create queue inbox kind basic mode persistent;
create queue outbox kind basic mode persistent;

(: one ECA rule: on every ping in the inbox, answer with a pong :)
create rule reply for inbox
    if (//ping) then
        do enqueue <pong to="{string(//ping/@from)}"/> into outbox
"""


def main() -> None:
    server = DemaqServer(APPLICATION)

    server.enqueue("inbox", '<ping from="alice"/>')
    server.enqueue("inbox", '<ping from="bob"/>')
    server.enqueue("inbox", "<noise/>")          # matches no rule

    steps = server.run_until_idle()
    print(f"engine quiesced after {steps} steps")
    for text in server.queue_texts("outbox"):
        print("outbox:", text)

    assert server.queue_texts("outbox") == [
        '<pong to="alice"/>', '<pong to="bob"/>']
    print("quickstart OK")


if __name__ == "__main__":
    main()
