"""The procurement workload on a sharded 4-node cluster.

Demonstrates the cluster runtime end to end: a consistent-hash ring
spreads request slices over four nodes, the router forwards every
external enqueue to the owning node as a gateway envelope, the
concurrent driver runs all nodes (thread per node), and a live
join + rebalance moves messages without losing any.

Run:  python examples/sharded_cluster.py
"""

from repro import ClusterServer, DemaqServer
from repro.workloads import procurement_application, request_stream

REQUESTS = 40


def main() -> None:
    app = procurement_application()

    cluster = ClusterServer(app, nodes=4)
    for _, _, body in request_stream(REQUESTS):
        cluster.enqueue("crm", body)
    cluster.run_until_idle()

    offers = [t for t in cluster.queue_texts("customer") if "offer" in t]
    print(f"{REQUESTS} requests -> {len(offers)} offers across "
          f"{len(cluster.node_names)} nodes")
    print("per-node work:",
          {name: server.executor.stats.messages_processed
           for name, server in sorted(cluster.servers.items())})
    print("crm shard depths:", cluster.shard_depths("crm"))
    assert len(offers) == REQUESTS
    assert cluster.unhandled_errors == []

    # the sharded run must agree with a single server
    single = DemaqServer(app)
    for _, _, body in request_stream(REQUESTS):
        single.enqueue("crm", body)
    single.run_until_idle()
    assert sorted(cluster.queue_texts("customer")) == \
        sorted(single.queue_texts("customer"))
    print("sharded results match the single-server run")

    # scale out under load: join a node and rebalance live
    plan, report = cluster.add_node()
    print(f"joined {plan.joined[0]}: epoch {plan.epoch}, "
          f"{report.total_moved} messages migrated")
    for _, _, body in request_stream(10):
        cluster.enqueue("crm", body)
    cluster.run_until_idle()
    offers = [t for t in cluster.queue_texts("customer") if "offer" in t]
    assert len(offers) == REQUESTS + 10
    print(f"after join: {len(offers)} offers, "
          f"nodes={cluster.node_names}")

    # and back in: drain a node out without losing messages
    victim = cluster.node_names[0]
    plan, report = cluster.remove_node(victim)
    offers = [t for t in cluster.queue_texts("customer") if "offer" in t]
    assert len(offers) == REQUESTS + 10
    print(f"drained {victim}: {report.total_moved} messages moved, "
          f"all {len(offers)} offers intact")
    print("sharded cluster scenario OK")


if __name__ == "__main__":
    main()
