"""Ring distribution, balance, stability, and preference properties."""

import pytest

from repro.cluster.partitioner import HashRing, partition_key

NODES = ["alpha", "beta", "gamma", "delta"]


def keys(count):
    return [partition_key("orders", f"cust-{i}") for i in range(count)]


def test_deterministic_across_instances():
    one = HashRing(NODES)
    two = HashRing(reversed(NODES))   # construction order must not matter
    for key in keys(500):
        assert one.owner_of_key(key) == two.owner_of_key(key)


def test_every_node_gets_load():
    ring = HashRing(NODES)
    counts = ring.load_distribution(keys(2000))
    assert set(counts) == set(NODES)
    assert all(count > 0 for count in counts.values())


def test_balance_within_tolerance():
    ring = HashRing(NODES, replicas=128)
    counts = ring.load_distribution(keys(8000))
    expected = 8000 / len(NODES)
    for node, count in counts.items():
        assert count == pytest.approx(expected, rel=0.5), (node, counts)


def test_unsliced_queue_has_single_owner():
    ring = HashRing(NODES)
    assert ring.owner("invoices") == ring.owner("invoices")
    assert ring.owner("invoices") in NODES


def test_same_slice_key_same_owner_different_keys_spread():
    ring = HashRing(NODES)
    assert ring.owner("orders", "cust-1") == ring.owner("orders", "cust-1")
    owners = {ring.owner("orders", f"cust-{i}") for i in range(200)}
    assert owners == set(NODES)


def test_removal_only_moves_departed_nodes_keys():
    ring = HashRing(NODES)
    before = {key: ring.owner_of_key(key) for key in keys(2000)}
    ring.remove_node("beta")
    for key, owner in before.items():
        if owner == "beta":
            assert ring.owner_of_key(key) != "beta"
        else:
            assert ring.owner_of_key(key) == owner


def test_join_only_steals_keys():
    ring = HashRing(NODES)
    before = {key: ring.owner_of_key(key) for key in keys(2000)}
    ring.add_node("epsilon")
    moved = 0
    for key, owner in before.items():
        now = ring.owner_of_key(key)
        if now != owner:
            assert now == "epsilon"   # moves only go TO the new node
            moved += 1
    assert 0 < moved < 2000 * 0.6     # roughly 1/5 expected


def test_preference_list_distinct_and_owner_first():
    ring = HashRing(NODES)
    prefs = ring.preference_list("orders", "cust-7")
    assert prefs[0] == ring.owner("orders", "cust-7")
    assert sorted(prefs) == sorted(NODES)   # all nodes, no duplicates
    assert ring.preference_list("orders", "cust-7", count=2) == prefs[:2]


def test_duplicate_and_missing_nodes_rejected():
    ring = HashRing(["solo"])
    with pytest.raises(ValueError):
        ring.add_node("solo")
    with pytest.raises(ValueError):
        ring.remove_node("ghost")


def test_empty_ring_lookup_fails():
    with pytest.raises(LookupError):
        HashRing([]).owner("anything")
