"""The ClusterServer facade: sharded runs match single-server results."""

from repro import ClusterServer, DemaqServer
from repro.workloads import procurement_application, request_stream
from tests.integration.test_paper_examples import PROCUREMENT, offer_request

REQUESTS = 12


def test_sharded_procurement_matches_single_server():
    app = procurement_application()
    single = DemaqServer(app)
    cluster = ClusterServer(app, nodes=4)
    for _, _, body in request_stream(REQUESTS):
        single.enqueue("crm", body)
        cluster.enqueue("crm", body)
    single.run_until_idle()
    cluster.run_until_idle()
    for queue in ("crm", "finance", "legal", "customer"):
        assert sorted(cluster.queue_texts(queue)) == \
            sorted(single.queue_texts(queue)), queue
    assert cluster.messages_processed() == \
        single.executor.stats.messages_processed
    assert cluster.unhandled_errors == []


def test_work_is_actually_sharded():
    cluster = ClusterServer(procurement_application(), nodes=4)
    for _, _, body in request_stream(40):
        cluster.enqueue("crm", body)
    cluster.run_until_idle()
    busy = [server for server in cluster.servers.values()
            if server.executor.stats.messages_processed > 0]
    assert len(busy) >= 3      # 40 slice keys spread over 4 nodes


def test_paper_examples_on_a_sharded_cluster():
    cluster = ClusterServer(PROCUREMENT, nodes=3)
    cluster.enqueue("crm", offer_request("rA", "good"))
    cluster.enqueue("crm", offer_request("rB", "good"))
    cluster.enqueue("crm", offer_request("rC", "good", restricted=True))
    cluster.run_until_idle()
    offers = sorted(t for t in cluster.queue_texts("customer")
                    if "offer" in t)
    assert offers == ["<offer><requestID>rA</requestID></offer>",
                      "<offer><requestID>rB</requestID></offer>"]
    refusals = [t for t in cluster.queue_texts("customer")
                if "refusal" in t]
    assert refusals == ["<refusal><requestID>rC</requestID></refusal>"]


def test_echo_timers_fire_cluster_wide():
    cluster = ClusterServer(PROCUREMENT, nodes=3)
    cluster.enqueue("invoices",
                    "<invoice><requestID>inv-1</requestID>"
                    "<customerID>c</customerID></invoice>")
    cluster.enqueue("echoQueue",
                    "<timeoutNotification><requestID>inv-1</requestID>"
                    "</timeoutNotification>",
                    properties={"timeout": 3600, "target": "finance"})
    cluster.run_until_idle()
    assert [t for t in cluster.queue_texts("customer")
            if "reminder" in t] == []
    cluster.advance_time(3601)
    reminders = [t for t in cluster.queue_texts("customer")
                 if "reminder" in t]
    assert reminders == \
        ["<reminder><requestID>inv-1</requestID></reminder>"]


def test_hot_slice_skew_is_observable():
    cluster = ClusterServer(PROCUREMENT, nodes=4)
    for _ in range(12):   # one hot request slice: all traffic on one owner
        cluster.enqueue("crm", offer_request("hot", "whale"))
    cluster.run_until_idle()
    depths = cluster.shard_depths("crm")
    assert sum(depths.values()) >= 12
    assert sum(1 for depth in depths.values() if depth > 0) == 1


def test_garbage_collection_across_nodes():
    cluster = ClusterServer(PROCUREMENT, nodes=3)
    cluster.enqueue("crm", offer_request("r1", "good"))
    cluster.run_until_idle()
    assert cluster.collect_garbage() > 0


def test_collections_are_replicated():
    source = PROCUREMENT + ";\ncreate collection suppliers"
    cluster = ClusterServer(source, nodes=2)
    cluster.load_collection("suppliers", ["<supplier>acme</supplier>"])
    for server in cluster.servers.values():
        assert len(server.collection_documents("suppliers")) == 1


def test_context_manager_closes_all_nodes(tmp_path):
    with ClusterServer(PROCUREMENT, nodes=2,
                       data_dir=str(tmp_path)) as cluster:
        cluster.enqueue("crm", offer_request("r1", "good"))
        cluster.run_until_idle()
        assert (tmp_path / "node0").exists()
        assert (tmp_path / "node1").exists()
