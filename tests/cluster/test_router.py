"""Router forwarding, slice-key routing, and failover to error queues."""

import pytest

from repro import ClusterServer
from repro.network.transport import node_endpoint

APP = """
create queue jobs kind basic mode persistent;
create queue ledger kind basic mode persistent;
create queue results kind basic mode persistent;
create queue deadLetters kind basic mode persistent;
create errorqueue deadLetters;
create property customer as xs:string fixed
    queue ledger value //customerID;
create slicing byCustomer on customer;
create rule work for jobs
    if (//job) then do enqueue <done id="{string(//job/@id)}"/> into results
"""


@pytest.fixture()
def cluster():
    return ClusterServer(APP, nodes=3)


def test_unsliced_enqueue_lands_on_owner(cluster):
    owner = cluster.enqueue("jobs", '<job id="1"/>')
    cluster.run_until_idle()
    assert owner == cluster.router.owner_of("jobs")
    assert cluster.node(owner).queue_texts("jobs") == ['<job id="1"/>']
    for name in cluster.node_names:
        if name != owner:
            assert cluster.node(name).queue_texts("jobs") == []


def test_sliced_enqueue_partitions_by_key(cluster):
    for index in range(60):
        cluster.enqueue("ledger",
                        f"<entry><customerID>c{index % 12}</customerID>"
                        f"<n>{index}</n></entry>")
    cluster.run_until_idle()
    depths = cluster.shard_depths("ledger")
    assert sum(depths.values()) == 60
    assert sum(1 for depth in depths.values() if depth > 0) >= 2
    # all entries of one customer are co-located
    for name, server in cluster.servers.items():
        customers = {message.property("customer")
                     for message in server.live_messages("ledger")}
        for other, other_server in cluster.servers.items():
            if other == name:
                continue
            other_customers = {
                message.property("customer")
                for message in other_server.live_messages("ledger")}
            assert not (customers & other_customers)


def test_rule_output_is_node_local(cluster):
    owner = cluster.enqueue("jobs", '<job id="9"/>')
    cluster.run_until_idle()
    assert cluster.node(owner).queue_texts("results") == ['<done id="9"/>']


def test_owner_down_falls_back_to_error_queue(cluster):
    owner = cluster.router.owner_of("jobs")
    cluster.network.set_down(node_endpoint(owner, "jobs"))
    cluster.enqueue("jobs", '<job id="13"/>')
    cluster.run_until_idle()
    dead = cluster.queue_texts("deadLetters")
    assert len(dead) == 1
    assert "<networkError/>" in dead[0]
    assert "<disconnectedTransport/>" in dead[0]
    assert '<job id="13"/>' in dead[0]           # initial message attached
    assert cluster.router.stats.failovers == 1
    # the error landed on a live node, not the downed owner
    assert cluster.node(owner).queue_texts("deadLetters") == []


def test_error_fallback_without_error_queue_collects(cluster):
    source = APP.replace("create errorqueue deadLetters;", "")
    bare = ClusterServer(source, nodes=2)
    owner = bare.router.owner_of("jobs")
    bare.network.set_down(node_endpoint(owner, "jobs"))
    bare.enqueue("jobs", '<job id="1"/>')
    bare.run_until_idle()
    assert len(bare.router.undeliverable) == 1
    assert bare.unhandled_errors  # surfaced on the facade too


def test_unknown_queue_rejected(cluster):
    from repro.engine.errors import EngineError
    with pytest.raises(EngineError):
        cluster.enqueue("nope", "<x/>")


def test_direct_mode_skips_the_network(cluster):
    direct = ClusterServer(APP, nodes=3, via_network=False)
    sent_before = direct.network.sent
    direct.enqueue("jobs", '<job id="2"/>')
    assert direct.network.sent == sent_before
    direct.run_until_idle()
    assert direct.queue_texts("results") == ['<done id="2"/>']


def test_router_properties_survive_forwarding(cluster):
    cluster.enqueue("jobs", '<job id="5"/>', properties={"origin": "edge-7"})
    cluster.run_until_idle()
    [message] = cluster.live_messages("jobs")
    assert message.property("origin") == "edge-7"
    # transport source is stamped by the receiving node
    assert message.property("Sender") == "demaq://router"
