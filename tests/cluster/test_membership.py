"""Membership changes and the rebalance plans they produce."""

import pytest

from repro.cluster.membership import (ClusterMembership, partitioned_queues,
                                      sliced_queues)
from repro.qdl import compile_application

APP_SOURCE = """
create queue orders kind basic mode persistent;
create queue invoices kind basic mode persistent;
create queue intake kind incomingGateway mode persistent
    endpoint "demaq://cluster/intake";
create property customer as xs:string fixed
    queue orders value //customerID;
create slicing byCustomer on customer;
create rule noop for orders if (false()) then ()
"""


@pytest.fixture()
def app():
    return compile_application(APP_SOURCE)


def test_partition_catalog(app):
    assert partitioned_queues(app) == ["intake", "invoices", "orders"]
    # only basic queues with a slicing are key-partitioned
    assert sliced_queues(app) == {"orders"}


def test_owner_map_excludes_sliced_queues(app):
    membership = ClusterMembership(app, ["a", "b"])
    owners = membership.owner_map()
    assert set(owners) == {"intake", "invoices"}
    assert all(owner in ("a", "b") for owner in owners.values())


def test_join_bumps_epoch_and_is_deterministic(app):
    one = ClusterMembership(app, ["a", "b"])
    two = ClusterMembership(app, ["a", "b"])
    plan_one = one.join("c")
    plan_two = two.join("c")
    assert one.epoch == two.epoch == 1
    assert plan_one.moves == plan_two.moves
    assert plan_one.rescans == ["orders"]
    assert plan_one.joined == ("c",)


def test_join_moves_only_target_new_node(app):
    membership = ClusterMembership(app, ["a", "b"])
    plan = membership.join("c")
    for move in plan.moves:
        assert move.target == "c"
        assert move.source in ("a", "b")


def test_leave_moves_only_come_from_departed(app):
    membership = ClusterMembership(app, ["a", "b", "c"])
    owned_by_c = [queue for queue, owner in membership.owner_map().items()
                  if owner == "c"]
    plan = membership.leave("c")
    assert sorted(move.queue for move in plan.moves) == sorted(owned_by_c)
    assert all(move.source == "c" for move in plan.moves)
    assert "c" not in membership.nodes


def test_cannot_remove_last_node(app):
    membership = ClusterMembership(app, ["only"])
    with pytest.raises(ValueError):
        membership.leave("only")


def test_duplicate_nodes_rejected(app):
    with pytest.raises(ValueError):
        ClusterMembership(app, ["a", "a"])
    with pytest.raises(ValueError):
        ClusterMembership(app, [])
