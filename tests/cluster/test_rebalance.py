"""Message migration on membership changes."""

import pytest

from repro import ClusterServer

APP = """
create queue jobs kind basic mode persistent;
create queue ledger kind basic mode persistent;
create queue results kind basic mode persistent;
create property customer as xs:string fixed
    queue ledger value //customerID;
create slicing byCustomer on customer;
create rule work for jobs
    if (//job) then do enqueue <done id="{string(//job/@id)}"/> into results
"""


def fill(cluster, jobs=12, entries=24):
    for index in range(jobs):
        cluster.enqueue("jobs", f'<job id="{index}"/>')
    for index in range(entries):
        cluster.enqueue("ledger",
                        f"<entry><customerID>c{index % 8}</customerID>"
                        f"<n>{index}</n></entry>")
    cluster.run_until_idle()


def test_join_migrates_and_preserves_contents():
    cluster = ClusterServer(APP, nodes=2)
    fill(cluster)
    before = {queue: sorted(cluster.queue_texts(queue))
              for queue in cluster.app.queues}
    plan, report = cluster.add_node()
    assert plan.epoch == 1
    after = {queue: sorted(cluster.queue_texts(queue))
             for queue in cluster.app.queues}
    assert after == before
    # sliced messages now respect the 3-node ring
    for name, server in cluster.servers.items():
        for message in server.live_messages("ledger"):
            key = str(message.property("customer"))
            assert cluster.membership.owner_for("ledger", key) == name


def test_leave_drains_everything_and_loses_nothing():
    cluster = ClusterServer(APP, nodes=3)
    fill(cluster)
    before = {queue: sorted(cluster.queue_texts(queue))
              for queue in cluster.app.queues}
    victim = cluster.node_names[0]
    plan, report = cluster.remove_node(victim)
    assert victim not in cluster.node_names
    assert report.total_moved > 0
    after = {queue: sorted(cluster.queue_texts(queue))
             for queue in cluster.app.queues}
    assert after == before


def test_unprocessed_messages_resume_on_new_owner():
    cluster = ClusterServer(APP, nodes=2)
    # park unprocessed work: enqueue without running the driver
    for index in range(10):
        cluster.enqueue("jobs", f'<job id="{index}"/>')
    cluster.network.pump()          # deliver enqueues, no rule processing
    assert cluster.queue_depth("jobs") == 10
    assert cluster.queue_depth("results") == 0

    owner = cluster.router.owner_of("jobs")
    other = next(name for name in cluster.node_names if name != owner)
    plan, report = cluster.remove_node(owner)
    assert report.moved_by_queue.get("jobs") == 10
    cluster.run_until_idle()
    assert sorted(cluster.queue_texts("results")) == sorted(
        f'<done id="{index}"/>' for index in range(10))
    # jobs plus their <done/> results were all processed on the survivor
    assert cluster.node(other).executor.stats.messages_processed == 20


def test_processed_flag_survives_migration():
    cluster = ClusterServer(APP, nodes=2)
    fill(cluster, jobs=4, entries=0)
    processed_before = sum(
        1 for message in cluster.live_messages("jobs") if message.processed)
    assert processed_before == 4
    cluster.add_node()
    cluster.run_until_idle()
    processed_after = sum(
        1 for message in cluster.live_messages("jobs") if message.processed)
    assert processed_after == 4
    # nothing was re-processed after the move
    assert sorted(cluster.queue_texts("results")) == sorted(
        f'<done id="{index}"/>' for index in range(4))


def test_new_traffic_routes_to_post_rebalance_owner():
    cluster = ClusterServer(APP, nodes=2)
    fill(cluster, jobs=2, entries=0)
    cluster.add_node()
    owner = cluster.enqueue("jobs", '<job id="late"/>')
    cluster.run_until_idle()
    assert owner == cluster.membership.ring.owner("jobs")
    assert '<job id="late"/>' in cluster.node(owner).queue_texts("jobs")


TYPED_KEY_APP = """
create queue ledger kind basic mode persistent;
create property account as xs:integer fixed
    queue ledger value //accountID;
create slicing byAccount on account;
create rule keep for ledger if (false()) then ()
"""


def test_router_and_rebalance_agree_on_typed_keys():
    # the router hashes the *cast* key (007 -> 7), matching what the
    # owner resolves and what the rebalancer later reads back
    cluster = ClusterServer(TYPED_KEY_APP, nodes=2)
    for index in range(1, 21):
        cluster.enqueue("ledger",
                        f"<entry><accountID>{index:03d}</accountID></entry>")
    cluster.run_until_idle()
    cluster.add_node()
    # repeat traffic for the same accounts, zero-padded lexical form
    for index in range(1, 21):
        cluster.enqueue("ledger",
                        f"<entry><accountID>{index:03d}</accountID></entry>")
    cluster.run_until_idle()
    assert cluster.queue_depth("ledger") == 40
    for name, server in cluster.servers.items():
        for message in server.live_messages("ledger"):
            key = str(message.property("account"))
            assert cluster.membership.owner_for("ledger", key) == name


ECHO_APP = """
create queue echoQueue kind echo mode persistent;
create queue inbox kind basic mode persistent;
create queue outbox kind basic mode persistent;
create rule relay for inbox
    if (//tick) then do enqueue <tock/> into outbox
"""


def test_echo_timer_keeps_remaining_timeout_across_migration():
    cluster = ClusterServer(ECHO_APP, nodes=2)
    cluster.enqueue("echoQueue", "<tick/>",
                    properties={"timeout": 100, "target": "inbox"})
    cluster.run_until_idle()
    cluster.advance_time(70)                     # 30s left on the timer
    holder = next(name for name, server in cluster.servers.items()
                  if server.store.queue_depth("echoQueue") > 0)
    cluster.remove_node(holder)                  # drain migrates the echo
    assert cluster.advance_time(29) == 0         # not due yet
    assert cluster.queue_texts("outbox") == []
    cluster.advance_time(2)                      # 101s total, not 170
    assert cluster.queue_texts("outbox") == ["<tock/>"]


RESET_APP = """
create queue tickets kind basic mode persistent;
create property customer as xs:string fixed
    queue tickets value //customerID;
create slicing byCustomer on customer;
create rule closeOut for byCustomer
    if (qs:slice()[/close]) then do reset
"""


def test_reset_slice_generations_do_not_resurrect_after_migration():
    cluster = ClusterServer(RESET_APP, nodes=2)
    cluster.enqueue("tickets",
                    "<open><customerID>alice</customerID></open>")
    cluster.enqueue("tickets",
                    "<close><customerID>alice</customerID></close>")
    cluster.run_until_idle()
    holder = next(name for name, server in cluster.servers.items()
                  if server.store.queue_depth("tickets") > 0)
    assert cluster.node(holder).slice_live_messages(
        "byCustomer", "alice") == []        # reset emptied the slice
    cluster.add_node()
    cluster.remove_node(holder)             # force the slice to move
    for server in cluster.servers.values():
        assert server.slice_live_messages("byCustomer", "alice") == []
    # the dead generation stays garbage-collectable after the move
    assert cluster.collect_garbage() == 2


ECHO_PAIR_APP = """
create queue echoQueue kind echo mode persistent;
create queue inbox kind basic mode persistent;
create queue audit kind basic mode persistent;
create property customer as xs:string fixed
    queue inbox value //customerID;
create slicing byCustomer on customer;
create rule pair for byCustomer
    if (count(qs:slice()) = 2 and not(qs:slice()[/paired])) then
        do enqueue <paired>{string(qs:slicekey())}</paired> into inbox
"""


def test_drained_echo_messages_follow_their_target_shard():
    cluster = ClusterServer(ECHO_PAIR_APP, nodes=3)
    cluster.enqueue("inbox", "<msg><customerID>c0</customerID></msg>")
    cluster.enqueue("echoQueue", "<msg><customerID>c0</customerID></msg>",
                    properties={"timeout": 50, "target": "inbox"})
    cluster.run_until_idle()
    holder = next(name for name, server in cluster.servers.items()
                  if server.echo.pending_count() > 0)
    cluster.remove_node(holder)     # echo must land on inbox's c0 shard
    cluster.advance_time(51)
    assert [t for t in cluster.queue_texts("inbox") if "paired" in t] == \
        ["<paired>c0</paired>"]


GATEWAY_APP = """
create queue intake kind incomingGateway mode persistent
    endpoint "demaq://edge/intake";
create queue results kind basic mode persistent;
create rule handle for intake
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into results
"""


def test_gateway_endpoint_follows_owner():
    cluster = ClusterServer(GATEWAY_APP, nodes=2)
    from repro.network import build_envelope
    from repro.xmldm import parse

    def send(job_id):
        cluster.network.send("demaq://edge/intake",
                             build_envelope(parse(f'<job id="{job_id}"/>'),
                                            {}),
                             source="demaq://outside")
        cluster.run_until_idle()

    send(1)
    owner_before = cluster.membership.ring.owner("intake")
    # force enough joins that the gateway eventually changes owner
    moved = False
    for _ in range(4):
        plan, _report = cluster.add_node()
        if any(move.queue == "intake" for move in plan.moves):
            moved = True
            break
    send(2)
    assert sorted(cluster.queue_texts("results")) == [
        '<ack id="1"/>', '<ack id="2"/>']
    if moved:
        assert cluster.membership.ring.owner("intake") != owner_before


INDEXED_APP = """
create queue ledger kind basic mode persistent;
create queue audit kind basic mode persistent;
create property customer as xs:string fixed
    queue ledger value //customerID;
create slicing byCustomer on customer;
create index on queue ledger property customer;
create rule keep for ledger if (false()) then ()
"""


def _index_entries(server):
    return server.store.property_index_entries("ledger", "customer")


def _rebuilt_entries(server):
    server.store.drop_property_index("ledger", "customer")
    server.store.create_property_index("ledger", "customer")
    return _index_entries(server)


def _fill_indexed(cluster, entries=30):
    for index in range(entries):
        cluster.enqueue(
            "ledger",
            f"<entry><customerID>c{index % 6}</customerID>"
            f"<n>{index}</n></entry>")
    cluster.run_until_idle()


def test_property_index_survives_node_join():
    cluster = ClusterServer(INDEXED_APP, nodes=2)
    _fill_indexed(cluster)
    cluster.add_node()
    for server in cluster.servers.values():
        live = _index_entries(server)
        assert live == _rebuilt_entries(server)
    # every indexed message actually lives on its ring owner
    for name, server in cluster.servers.items():
        for message in server.live_messages("ledger"):
            key = str(message.property("customer"))
            assert cluster.membership.owner_for("ledger", key) == name


def test_property_index_survives_node_leave():
    cluster = ClusterServer(INDEXED_APP, nodes=3)
    _fill_indexed(cluster)
    victim = cluster.node_names[0]
    cluster.remove_node(victim)
    total = 0
    for server in cluster.servers.values():
        live = _index_entries(server)
        assert live == _rebuilt_entries(server)
        total += len(live)
    assert total == 30, "no index entry lost or duplicated by the drain"


def test_index_lookup_agrees_cluster_wide_after_rebalance():
    cluster = ClusterServer(INDEXED_APP, nodes=2)
    _fill_indexed(cluster)
    cluster.add_node()
    for key in ("c0", "c3", "c5"):
        indexed = sorted(
            m.msg_id for server in cluster.servers.values()
            for m in server.store.property_lookup("ledger", "customer", key))
        scanned = sorted(
            m.msg_id for server in cluster.servers.values()
            for m in server.store.property_lookup_scan(
                "ledger", "customer", key))
        assert indexed == scanned
