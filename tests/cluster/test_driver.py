"""The concurrent driver must match serial ``run_cluster`` results.

The acceptance bar: on the paper-example scenarios, queue contents after
the concurrent driver are byte-identical to those after the serial
round-robin stepper.
"""

import pytest

from repro import DemaqServer, Network, run_cluster
from repro.cluster import ClusterDriver, run_cluster_concurrent
from repro.engine.errors import EngineError
from repro.queues import VirtualClock
from tests.integration.test_paper_examples import PROCUREMENT, offer_request


def paper_scenarios(server):
    """The integration-test stimuli, replayed onto one server."""
    server.enqueue("crm", offer_request("r1", "good"))
    server.enqueue("crm", offer_request("r2", "good", restricted=True))
    server.enqueue("invoices",
                   "<invoice><requestID>x</requestID>"
                   "<customerID>debtor</customerID></invoice>")
    server.enqueue("crm", offer_request("r3", "debtor"))
    server.enqueue("crm",
                   "<customerOrder><orderID>7</orderID></customerOrder>")
    server.enqueue("echoQueue",
                   "<timeoutNotification><requestID>inv-1</requestID>"
                   "</timeoutNotification>",
                   properties={"timeout": 3600, "target": "finance"})


def contents(server):
    return {queue: server.queue_texts(queue) for queue in server.app.queues}


def test_concurrent_driver_matches_serial_on_paper_examples():
    serial = DemaqServer(PROCUREMENT)
    paper_scenarios(serial)
    run_cluster([serial])
    serial.advance_time(3601)
    run_cluster([serial])

    concurrent = DemaqServer(PROCUREMENT)
    paper_scenarios(concurrent)
    driver = ClusterDriver([concurrent])
    driver.run_until_idle()
    driver.advance_time(3601)

    assert contents(concurrent) == contents(serial)
    assert concurrent.scheduler.backlog() == 0
    assert concurrent.unhandled_errors == []


SENDER = """
create queue work kind basic mode persistent;
create queue toRemote kind outgoingGateway mode persistent
    endpoint "demaq://remote/inbox";
create queue netErrors kind basic mode persistent;
create errorqueue netErrors;
create rule fwd for work
    if (//job) then do enqueue <job id="{string(//job/@id)}"/> into toRemote
"""

RECEIVER = """
create queue inbox kind incomingGateway mode persistent
    endpoint "demaq://remote/inbox";
create queue done kind basic mode persistent;
create rule handle for inbox
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""


def gateway_pair():
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(SENDER, clock=clock, network=network, name="local")
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    return sender, receiver


def test_concurrent_driver_matches_serial_across_two_nodes():
    serial_sender, serial_receiver = gateway_pair()
    for index in range(10):
        serial_sender.enqueue("work", f'<job id="{index}"/>')
    run_cluster([serial_sender, serial_receiver])

    sender, receiver = gateway_pair()
    for index in range(10):
        sender.enqueue("work", f'<job id="{index}"/>')
    run_cluster_concurrent([sender, receiver])

    assert contents(receiver) == contents(serial_receiver)
    assert contents(sender) == contents(serial_sender)


def test_driver_counts_steps_and_rounds():
    sender, receiver = gateway_pair()
    sender.enqueue("work", '<job id="1"/>')
    driver = ClusterDriver([sender, receiver])
    steps = driver.run_until_idle()
    assert steps > 0
    assert driver.stats.rounds >= 2       # work round + quiescence round
    assert driver.stats.deliveries == 1
    # an idle cluster quiesces immediately
    assert driver.run_until_idle() == 0


def test_driver_propagates_node_failures():
    server = DemaqServer(SENDER)

    def boom():
        raise RuntimeError("node crashed")

    server.step_local = boom
    with pytest.raises(RuntimeError, match="node crashed"):
        ClusterDriver([server]).run_until_idle()


def test_driver_round_limit():
    sender, receiver = gateway_pair()
    sender.enqueue("work", '<job id="1"/>')
    with pytest.raises(EngineError, match="did not quiesce"):
        ClusterDriver([sender, receiver]).run_until_idle(max_rounds=1)


def test_driver_needs_servers():
    with pytest.raises(ValueError):
        ClusterDriver([])


def test_real_time_waits_do_not_count_toward_round_limit():
    from repro.queues import RealClock

    clock = RealClock()
    network = Network(clock, latency=0.3)
    sender = DemaqServer(SENDER, clock=clock, network=network, name="local")
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    sender.enqueue("work", '<job id="rt"/>')
    driver = ClusterDriver([sender, receiver], real_time=True)
    # 0.3s of wall-clock latency means many idle polls; they must not
    # trip the round limit while the cluster is legitimately waiting
    driver.run_until_idle(max_rounds=25)
    assert receiver.queue_texts("done") == ['<ack id="rt"/>']


# -- graceful shutdown (ISSUE 6 satellite) ------------------------------------------

CRUNCH = """
create queue work kind basic mode persistent;
create queue done kind basic mode persistent;
create rule crunch for work
    if (count(qs:queue()) >= 0) then
        do enqueue <done id="{string(//job/@id)}"/> into done
"""


def test_request_stop_breaks_real_time_polling():
    """A real-time driver waiting on a far-future timer stops promptly
    instead of polling until the timer fires."""
    import threading

    from repro.queues import RealClock

    clock = RealClock()
    network = Network(clock)
    server = DemaqServer(PROCUREMENT, clock=clock, network=network)
    # a pending hour-long echo keeps _in_flight_work() true forever
    server.enqueue("echoQueue", "<tick/>",
                   properties={"timeout": 3600, "target": "finance"})
    driver = ClusterDriver([server], real_time=True)
    thread = threading.Thread(target=driver.run_until_idle, daemon=True)
    thread.start()
    import time
    time.sleep(0.1)
    assert thread.is_alive()          # legitimately waiting on the timer
    driver.request_stop()
    thread.join(timeout=5.0)
    assert not thread.is_alive()


def test_request_stop_commits_in_flight_work_without_tearing(tmp_path):
    """Stopping mid-workload leaves a clean restart point: every
    processed message produced its output durably, every unprocessed
    one resumes after restart, nothing is lost or duplicated."""
    import threading
    import time

    total = 200

    def boot():
        return DemaqServer(CRUNCH, data_dir=str(tmp_path / "node"),
                           durability="group", batch_size=4)

    server = boot()
    for index in range(total):
        server.enqueue("work", f'<job id="{index}"/>')
    driver = ClusterDriver([server])
    thread = threading.Thread(target=lambda: driver.run_until_idle(),
                              daemon=True)
    thread.start()
    time.sleep(0.05)
    driver.request_stop()
    thread.join(timeout=30.0)
    assert not thread.is_alive()

    # invariant at the stop point: one output per processed input, none
    # for unprocessed ones (a torn batch would break this)
    processed = sum(1 for meta in server.store.queue_messages("work")
                    if meta.processed)
    done_at_stop = server.store.queue_depth("done")
    assert done_at_stop == processed
    server.close()

    # the stop point is durable: a restarted server sees it and runs
    # the remaining work to the same end state as an uninterrupted run
    restarted = boot()
    assert restarted.store.queue_depth("done") == done_at_stop
    ClusterDriver([restarted]).run_until_idle()
    done_ids = sorted(text.split('"')[1]
                      for text in restarted.queue_texts("done"))
    assert done_ids == sorted(str(i) for i in range(total))
    restarted.close()
