"""Tests for the XML node model."""

import pytest

from repro.xmldm import (Attribute, Comment, Document, Element, QName, Text,
                         XMLError, deep_copy, parse)


def build_order():
    return Element("order", children=[
        Element("id", children=[Text("42")]),
        Element("items", children=[
            Element("item", [Attribute("sku", "A")], [Text("widget")]),
            Element("item", [Attribute("sku", "B")], [Text("gadget")]),
        ]),
    ])


def test_string_value_concatenates_descendant_text():
    order = build_order()
    assert order.string_value == "42widgetgadget"


def test_attribute_not_in_children():
    item = Element("item", [Attribute("sku", "A")], [Text("x")])
    assert all(not isinstance(c, Attribute) for c in item.children)
    assert item.attribute_value("sku") == "A"


def test_duplicate_attribute_rejected():
    with pytest.raises(XMLError):
        Element("e", [Attribute("a", "1"), Attribute("a", "2")])


def test_parent_links():
    order = build_order()
    items = order.first_child("items")
    assert items.parent is order
    assert items.children[0].parent is items
    assert items.attributes == []


def test_ancestors_nearest_first():
    order = build_order()
    item = order.first_child("items").child_elements("item")[0]
    names = [a.name.local_name for a in item.ancestors()]
    assert names == ["items", "order"]


def test_descendants_in_document_order():
    doc = parse("<a><b><c/></b><d/></a>")
    names = [n.name.local_name for n in doc.root_element.descendants()
             if isinstance(n, Element)]
    assert names == ["b", "c", "d"]


def test_descendants_or_self_starts_with_self():
    doc = parse("<a><b/></a>")
    nodes = list(doc.root_element.descendants_or_self())
    assert nodes[0] is doc.root_element


def test_sibling_axes():
    doc = parse("<r><a/><b/><c/><d/></r>")
    a, b, c, d = doc.root_element.child_elements()
    assert [n.name.local_name for n in b.following_siblings()] == ["c", "d"]
    assert [n.name.local_name for n in c.preceding_siblings()] == ["b", "a"]
    assert list(a.preceding_siblings()) == []
    assert list(d.following_siblings()) == []


def test_document_order_keys_sort_preorder():
    doc = parse("<a><b><c/></b><d/></a>")
    a = doc.root_element
    b = a.child_elements()[0]
    c = b.child_elements()[0]
    d = a.child_elements()[1]
    keys = [n.order_key() for n in (doc, a, b, c, d)]
    assert keys == sorted(keys)
    assert len(set(keys)) == 5


def test_document_order_across_documents_is_stable():
    doc1 = parse("<a/>")
    doc2 = parse("<b/>")
    assert doc1.root_element.order_key() < doc2.root_element.order_key()


def test_order_recomputed_after_append():
    doc = parse("<a><b/></a>")
    b = doc.root_element.child_elements()[0]
    key_before = b.order_key()
    doc.root_element.append(Element("c"))
    c = doc.root_element.child_elements()[1]
    assert key_before == b.order_key()
    assert b.order_key() < c.order_key()


def test_fragment_order_key_without_document():
    frag = Element("x", children=[Element("y")])
    y = frag.child_elements()[0]
    assert frag.order_key() < y.order_key()


def test_document_rejects_attribute_child():
    doc = Document()
    with pytest.raises(XMLError):
        doc.append(Attribute("a", "1"))


def test_document_root_element():
    doc = Document([Comment("lead"), Element("root")])
    assert doc.root_element.name == QName("root")
    assert Document().root_element is None


def test_element_append_document_splices_children():
    inner = Document([Element("payload", children=[Text("hi")])])
    outer = Element("envelope")
    outer.append(inner)
    assert [c.name.local_name for c in outer.child_elements()] == ["payload"]
    assert outer.child_elements()[0].parent is outer


def test_element_text_only_direct_children():
    doc = parse("<a>x<b>y</b>z</a>")
    assert doc.root_element.text == "xz"
    assert doc.root_element.string_value == "xyz"


def test_in_scope_namespaces_accumulate():
    doc = parse('<a xmlns:p="urn:p"><b xmlns:q="urn:q"><c/></b></a>')
    c = doc.root_element.child_elements()[0].child_elements()[0]
    scope = c.in_scope_namespaces()
    assert scope == {"p": "urn:p", "q": "urn:q"}


def test_in_scope_namespaces_inner_wins():
    doc = parse('<a xmlns:p="urn:1"><b xmlns:p="urn:2"/></a>')
    b = doc.root_element.child_elements()[0]
    assert b.in_scope_namespaces()["p"] == "urn:2"


def test_deep_copy_is_structural_not_identical():
    order = build_order()
    copy = deep_copy(order)
    assert copy is not order
    assert copy.string_value == order.string_value
    assert copy.parent is None
    assert copy.child_elements("items")[0].attributes == []
    sku = copy.first_child("items").child_elements("item")[0].attribute_value("sku")
    assert sku == "A"


def test_deep_copy_document_gets_new_doc_id():
    doc = parse("<a/>")
    copy = deep_copy(doc)
    assert isinstance(copy, Document)
    assert copy.doc_id != doc.doc_id


def test_comment_and_pi_string_values():
    doc = parse("<a><!--note--><?pi data?></a>")
    comment, pi = doc.root_element.children
    assert comment.string_value == "note"
    assert pi.string_value == "data"
    assert pi.node_name.local_name == "pi"
