"""Tests for the hand-written XML parser."""

import pytest

from repro.xmldm import (Comment, Element, ProcessingInstruction, QName, Text,
                         XMLParseError, parse, parse_fragment)


def test_simple_document():
    doc = parse("<order><id>42</id></order>")
    assert doc.root_element.name == QName("order")
    assert doc.root_element.first_child("id").text == "42"


def test_empty_element_forms_equivalent():
    assert parse("<a/>").root_element.children == []
    assert parse("<a></a>").root_element.children == []


def test_attributes_both_quote_styles():
    doc = parse("""<e a="1" b='2'/>""")
    root = doc.root_element
    assert root.attribute_value("a") == "1"
    assert root.attribute_value("b") == "2"


def test_predefined_entities_in_text():
    doc = parse("<e>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</e>")
    assert doc.root_element.text == "<tag> & \"q\" 'a'"


def test_numeric_character_references():
    doc = parse("<e>&#65;&#x42;&#x20AC;</e>")
    assert doc.root_element.text == "AB€"


def test_entities_in_attributes():
    doc = parse('<e a="&amp;&lt;&#x41;"/>')
    assert doc.root_element.attribute_value("a") == "&<A"


def test_cdata_section():
    doc = parse("<e><![CDATA[<not & parsed>]]></e>")
    assert doc.root_element.text == "<not & parsed>"


def test_cdata_merges_with_adjacent_text():
    doc = parse("<e>a<![CDATA[b]]>c</e>")
    assert len(doc.root_element.children) == 1
    assert doc.root_element.text == "abc"


def test_comments_and_pis_preserved():
    doc = parse("<e><!-- note --><?target data?></e>")
    comment, pi = doc.root_element.children
    assert isinstance(comment, Comment)
    assert comment.value == " note "
    assert isinstance(pi, ProcessingInstruction)
    assert pi.target == "target"
    assert pi.data == "data"


def test_xml_declaration_and_prolog_misc():
    doc = parse('<?xml version="1.0"?><!-- lead --><e/>')
    assert doc.root_element.name == QName("e")
    assert isinstance(doc.children[0], Comment)


def test_trailing_misc_allowed():
    doc = parse("<e/><!-- after -->")
    assert isinstance(doc.children[-1], Comment)


def test_whitespace_text_preserved_inside_elements():
    doc = parse("<e>  spaced  </e>")
    assert doc.root_element.text == "  spaced  "


def test_mixed_content():
    doc = parse("<p>hello <b>bold</b> world</p>")
    kinds = [type(c) for c in doc.root_element.children]
    assert kinds == [Text, Element, Text]


def test_default_namespace_applies_to_elements():
    doc = parse('<order xmlns="urn:shop"><id>1</id></order>')
    root = doc.root_element
    assert root.name == QName("order", "urn:shop")
    assert root.child_elements()[0].name == QName("id", "urn:shop")


def test_default_namespace_not_applied_to_attributes():
    doc = parse('<e xmlns="urn:x" a="1"/>')
    attr = doc.root_element.attributes[0]
    assert attr.name == QName("a")


def test_prefixed_names():
    doc = parse('<s:order xmlns:s="urn:shop" s:kind="web"/>')
    root = doc.root_element
    assert root.name == QName("order", "urn:shop")
    assert root.attributes[0].name == QName("kind", "urn:shop")


def test_namespace_scoping_and_override():
    doc = parse('<a xmlns:p="urn:1"><b xmlns:p="urn:2"><p:x/></b><p:y/></a>')
    a = doc.root_element
    b = a.child_elements()[0]
    x = b.child_elements()[0]
    y = a.child_elements()[1]
    assert x.name.namespace_uri == "urn:2"
    assert y.name.namespace_uri == "urn:1"


def test_default_namespace_undeclaration():
    doc = parse('<a xmlns="urn:x"><b xmlns=""><c/></b></a>')
    c = doc.root_element.child_elements()[0].child_elements()[0]
    assert c.name == QName("c")


def test_duplicate_attribute_rejected():
    with pytest.raises(XMLParseError):
        parse('<e a="1" a="2"/>')


@pytest.mark.parametrize("bad", [
    "",
    "   ",
    "<a>",
    "<a><b></a></b>",
    "<a></b>",
    "<a", "text only",
    "<a/><b/>",
    "<a a=1/>",
    "<a 'x'/>",
    "<a>&unknown;</a>",
    "<a>&#xZZ;</a>",
    "<a>&#99999999999;</a>",
    '<a b="<"/>',
    "<a><!-- -- --></a>",
    "<a><![CDATA[x</a>",
    "<p:a/>",
    "<a]]></a>",
])
def test_malformed_documents_rejected(bad):
    with pytest.raises(XMLParseError):
        parse(bad)


def test_truncated_message_error_has_position():
    with pytest.raises(XMLParseError) as excinfo:
        parse("<order>\n  <id>42")
    assert excinfo.value.line >= 1
    assert "line" in str(excinfo.value)


def test_dtd_rejected():
    with pytest.raises(XMLParseError, match="DTD"):
        parse("<!DOCTYPE foo [<!ENTITY x 'y'>]><foo/>")


def test_reserved_pi_target_rejected():
    with pytest.raises(XMLParseError):
        parse("<a><?xml bad?></a>")


def test_content_after_root_rejected():
    with pytest.raises(XMLParseError, match="after the root"):
        parse("<a/>text")


def test_parse_fragment_multiple_roots():
    nodes = parse_fragment("<a/>text<b/>")
    assert len(nodes) == 3
    assert all(n.parent is None for n in nodes)
    assert isinstance(nodes[1], Text)


def test_parse_rejects_bytes():
    with pytest.raises(TypeError):
        parse(b"<a/>")


def test_deeply_nested_document():
    depth = 200
    text = "".join(f"<n{i}>" for i in range(depth))
    text += "x"
    text += "".join(f"</n{i}>" for i in reversed(range(depth)))
    doc = parse(text)
    assert doc.root_element.string_value == "x"


def test_large_flat_document():
    text = "<r>" + "<i>v</i>" * 5000 + "</r>"
    doc = parse(text)
    assert len(doc.root_element.children) == 5000
