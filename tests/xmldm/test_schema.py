"""Tests for the XML-Schema-subset validator."""

import pytest

from repro.xmldm import SchemaError, check_simple_type, compile_schema, parse

ORDER_SCHEMA = """
<schema>
  <element name="order">
    <sequence>
      <element name="id" type="xs:integer"/>
      <element name="customer" type="xs:string"/>
      <element name="item" minOccurs="1" maxOccurs="unbounded">
        <sequence>
          <element name="sku" type="xs:string"/>
          <element name="qty" type="xs:integer"/>
        </sequence>
        <attribute name="priority" type="xs:boolean"/>
      </element>
      <element name="note" type="xs:string" minOccurs="0"/>
    </sequence>
    <attribute name="channel" type="xs:string" use="required"/>
  </element>
</schema>
"""

VALID_ORDER = """
<order channel="web">
  <id>42</id>
  <customer>acme</customer>
  <item priority="true"><sku>A-1</sku><qty>2</qty></item>
  <item><sku>B-2</sku><qty>1</qty></item>
  <note>rush</note>
</order>
"""


@pytest.fixture()
def order_schema():
    return compile_schema(ORDER_SCHEMA)


def _strip_ws(markup: str) -> str:
    import re
    return re.sub(r">\s+<", "><", markup.strip())


def test_valid_document_accepted(order_schema):
    assert order_schema.validate(parse(_strip_ws(VALID_ORDER))) == []


def test_wrong_root_rejected(order_schema):
    errors = order_schema.validate(parse("<invoice/>"))
    assert len(errors) == 1
    assert "unexpected root" in errors[0].message


def test_missing_required_child(order_schema):
    doc = parse('<order channel="web"><id>1</id></order>')
    errors = order_schema.validate(doc)
    assert any("customer" in e.message for e in errors)


def test_bad_simple_type_reports_path(order_schema):
    doc = parse(_strip_ws("""
      <order channel="web"><id>NaN-ish</id><customer>c</customer>
      <item><sku>A</sku><qty>1</qty></item></order>"""))
    errors = order_schema.validate(doc)
    assert any(e.path == "/order/id" for e in errors)


def test_missing_required_attribute(order_schema):
    doc = parse(_strip_ws("""
      <order><id>1</id><customer>c</customer>
      <item><sku>A</sku><qty>1</qty></item></order>"""))
    errors = order_schema.validate(doc)
    assert any("@channel" in e.message for e in errors)


def test_undeclared_attribute_rejected(order_schema):
    doc = parse(_strip_ws("""
      <order channel="web" bogus="1"><id>1</id><customer>c</customer>
      <item><sku>A</sku><qty>1</qty></item></order>"""))
    errors = order_schema.validate(doc)
    assert any("@bogus" in e.message for e in errors)


def test_bad_attribute_type(order_schema):
    doc = parse(_strip_ws("""
      <order channel="web"><id>1</id><customer>c</customer>
      <item priority="maybe"><sku>A</sku><qty>1</qty></item></order>"""))
    errors = order_schema.validate(doc)
    assert any("priority" in e.message for e in errors)


def test_extra_trailing_element_rejected(order_schema):
    doc = parse(_strip_ws("""
      <order channel="web"><id>1</id><customer>c</customer>
      <item><sku>A</sku><qty>1</qty></item><surprise/></order>"""))
    errors = order_schema.validate(doc)
    assert any("surprise" in e.path for e in errors)


def test_unbounded_repetition(order_schema):
    items = "".join(
        f"<item><sku>S{i}</sku><qty>{i}</qty></item>" for i in range(20))
    doc = parse(f'<order channel="web"><id>1</id>'
                f"<customer>c</customer>{items}</order>")
    assert order_schema.is_valid(doc)


def test_choice_content_model():
    schema = compile_schema("""
      <schema>
        <element name="msg">
          <choice>
            <element name="ok" type="xs:string"/>
            <element name="err" type="xs:string"/>
          </choice>
        </element>
      </schema>""")
    assert schema.is_valid(parse("<msg><ok>fine</ok></msg>"))
    assert schema.is_valid(parse("<msg><err>bad</err></msg>"))
    assert not schema.is_valid(parse("<msg><other/></msg>"))
    assert not schema.is_valid(parse("<msg/>"))


def test_nested_groups_and_optional_choice():
    schema = compile_schema("""
      <schema>
        <element name="r">
          <sequence>
            <element name="a" type="xs:string"/>
            <choice minOccurs="0" maxOccurs="2">
              <element name="b" type="xs:string"/>
              <element name="c" type="xs:string"/>
            </choice>
          </sequence>
        </element>
      </schema>""")
    assert schema.is_valid(parse("<r><a>x</a></r>"))
    assert schema.is_valid(parse("<r><a>x</a><b>1</b><c>2</c></r>"))
    assert not schema.is_valid(parse("<r><a>x</a><b/><b/><b/></r>"))


def test_any_wildcard():
    schema = compile_schema("""
      <schema>
        <element name="env">
          <sequence>
            <element name="head" type="xs:string"/>
            <any minOccurs="0" maxOccurs="unbounded"/>
          </sequence>
        </element>
      </schema>""")
    assert schema.is_valid(parse("<env><head>h</head><x/><y><z/></y></env>"))


def test_simple_leaf_must_not_have_children():
    schema = compile_schema("""
      <schema><element name="n" type="xs:integer"/></schema>""")
    assert schema.is_valid(parse("<n>17</n>"))
    assert not schema.is_valid(parse("<n><sub/></n>"))


def test_multiple_roots():
    schema = compile_schema("""
      <schema>
        <element name="ping" type="xs:string"/>
        <element name="pong" type="xs:string"/>
      </schema>""")
    assert schema.is_valid(parse("<ping>x</ping>"))
    assert schema.is_valid(parse("<pong>y</pong>"))
    assert not schema.is_valid(parse("<other/>"))


@pytest.mark.parametrize("bad_schema", [
    "<notschema/>",
    "<schema/>",
    "<schema><element/></schema>",
    "<schema><element name='a'><sequence/></element></schema>",
    "<schema><element name='a'/><element name='a'/></schema>",
    ("<schema><element name='a' type='xs:string'>"
     "<sequence><element name='b' type='xs:string'/></sequence>"
     "</element></schema>"),
    ("<schema><element name='a' minOccurs='3' maxOccurs='1'>"
     "<sequence><element name='b' type='xs:string'/></sequence>"
     "</element></schema>"),
])
def test_malformed_schemas_rejected(bad_schema):
    with pytest.raises(SchemaError):
        compile_schema(bad_schema)


@pytest.mark.parametrize("type_name,good,bad", [
    ("xs:integer", "42", "4.2"),
    ("xs:integer", "-7", "seven"),
    ("xs:decimal", "3.14", "3.1.4"),
    ("xs:double", "1e10", "e10"),
    ("xs:double", "INF", "Infinity"),
    ("xs:boolean", "true", "yes"),
    ("xs:boolean", "1", "2"),
    ("xs:dateTime", "2026-06-12T10:00:00Z", "yesterday"),
])
def test_simple_type_lexical_checks(type_name, good, bad):
    assert check_simple_type(type_name, good)
    assert not check_simple_type(type_name, bad)


def test_simple_type_whitespace_tolerant():
    assert check_simple_type("xs:integer", "  42  ")


def test_unknown_simple_type():
    with pytest.raises(SchemaError):
        check_simple_type("xs:fancy", "x")
