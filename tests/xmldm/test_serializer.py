"""Tests for XML serialization, including the parse/serialize round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldm import (Attribute, Comment, Element, ProcessingInstruction,
                         Text, parse, serialize)


def test_simple_round_trip():
    source = '<order id="7"><item sku="A">widget &amp; gadget</item></order>'
    doc = parse(source)
    assert serialize(doc) == source


def test_escaping_in_text_and_attributes():
    element = Element("e", [Attribute("a", 'x"<&')], [Text("<&>")])
    out = serialize(element)
    assert out == '<e a="x&quot;&lt;&amp;">&lt;&amp;&gt;</e>'
    round_tripped = parse(out).root_element
    assert round_tripped.attribute_value("a") == 'x"<&'
    assert round_tripped.text == "<&>"


def test_empty_element_serialized_self_closing():
    assert serialize(Element("e")) == "<e/>"


def test_comment_and_pi_serialization():
    assert serialize(Comment(" hello ")) == "<!-- hello -->"
    assert serialize(ProcessingInstruction("t", "d")) == "<?t d?>"
    assert serialize(ProcessingInstruction("t")) == "<?t?>"


def test_namespace_declarations_serialized():
    doc = parse('<s:a xmlns:s="urn:x"><s:b/></s:a>')
    out = serialize(doc)
    assert 'xmlns:s="urn:x"' in out
    reparsed = parse(out)
    assert reparsed.root_element.name.namespace_uri == "urn:x"


def test_default_namespace_serialized():
    doc = parse('<a xmlns="urn:d"><b/></a>')
    out = serialize(doc)
    assert 'xmlns="urn:d"' in out
    assert parse(out).root_element.name.namespace_uri == "urn:d"


def test_xml_declaration_option():
    out = serialize(parse("<a/>"), xml_declaration=True)
    assert out.startswith("<?xml")
    assert parse(out).root_element.name.local_name == "a"


def test_pretty_printing_element_only_content():
    doc = parse("<a><b><c/></b><d/></a>")
    out = serialize(doc, indent=2)
    assert out == "<a>\n  <b>\n    <c/>\n  </b>\n  <d/>\n</a>"


def test_pretty_printing_preserves_mixed_content():
    doc = parse("<p>one <b>two</b> three</p>")
    assert serialize(doc, indent=2) == "<p>one <b>two</b> three</p>"


def test_attribute_newline_escaped():
    out = serialize(Element("e", [Attribute("a", "x\ny")]))
    assert "&#10;" in out
    assert parse(out).root_element.attribute_value("a") == "x\ny"


def _equivalent(a, b) -> bool:
    """Structural equivalence of two trees."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Element):
        if a.name != b.name:
            return False
        attrs_a = sorted((x.name.clark, x.value) for x in a.attributes)
        attrs_b = sorted((x.name.clark, x.value) for x in b.attributes)
        if attrs_a != attrs_b:
            return False
        if len(a.children) != len(b.children):
            return False
        return all(_equivalent(x, y) for x, y in zip(a.children, b.children))
    if isinstance(a, Text):
        return a.value == b.value
    return True


_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,8}", fullmatch=True)
_text_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF,
                           blacklist_characters="\r"),
    min_size=1, max_size=20)


def _elements(depth):
    children = st.lists(
        st.one_of(_text_values.map(Text), _elements(depth - 1)),
        max_size=3) if depth > 0 else st.lists(_text_values.map(Text), max_size=2)
    return st.builds(
        lambda name, attrs, kids: Element(
            name,
            [Attribute(n, v) for n, v in
             {a: v for a, v in attrs}.items()],
            _merge_adjacent_text(kids)),
        _names,
        st.lists(st.tuples(_names.filter(lambda n: not n.startswith("xmlns")),
                           _text_values), max_size=3),
        children)


def _merge_adjacent_text(kids):
    """The parser never yields adjacent text nodes, so merge them upfront."""
    merged = []
    for kid in kids:
        if isinstance(kid, Text) and merged and isinstance(merged[-1], Text):
            merged[-1] = Text(merged[-1].value + kid.value)
        else:
            merged.append(kid)
    return merged


@given(_elements(3))
@settings(max_examples=150, deadline=None)
def test_round_trip_property(element):
    reparsed = parse(serialize(element)).root_element
    assert _equivalent(element, reparsed)


@given(_elements(2))
@settings(max_examples=50, deadline=None)
def test_double_round_trip_is_fixpoint(element):
    once = serialize(parse(serialize(element)))
    twice = serialize(parse(once))
    assert once == twice
