"""Tests for qualified names."""

import pytest

from repro.xmldm import QName
from repro.xmldm.qname import XML_NAMESPACE


def test_equality_ignores_prefix():
    assert QName("a", "urn:x", prefix="p") == QName("a", "urn:x", prefix="q")
    assert QName("a", "urn:x", prefix="p") == QName("a", "urn:x")


def test_equality_respects_namespace():
    assert QName("a", "urn:x") != QName("a", "urn:y")
    assert QName("a", "urn:x") != QName("a")


def test_hash_consistent_with_equality():
    assert hash(QName("a", "urn:x", prefix="p")) == hash(QName("a", "urn:x"))


def test_lexical_and_clark_forms():
    name = QName("order", "urn:shop", prefix="s")
    assert name.lexical == "s:order"
    assert name.clark == "{urn:shop}order"
    assert QName("order").lexical == "order"
    assert QName("order").clark == "order"


def test_str_is_lexical():
    assert str(QName("order", "urn:shop", prefix="s")) == "s:order"


def test_empty_local_name_rejected():
    with pytest.raises(ValueError):
        QName("")


def test_parse_unprefixed_uses_default_namespace():
    assert QName.parse("order", {}, "urn:d") == QName("order", "urn:d")
    assert QName.parse("order", {}) == QName("order")


def test_parse_prefixed():
    name = QName.parse("s:order", {"s": "urn:shop"})
    assert name == QName("order", "urn:shop")
    assert name.prefix == "s"


def test_parse_xml_prefix_is_builtin():
    assert QName.parse("xml:lang", {}).namespace_uri == XML_NAMESPACE


def test_parse_undeclared_prefix():
    with pytest.raises(ValueError, match="undeclared"):
        QName.parse("s:order", {})


def test_parse_malformed():
    with pytest.raises(ValueError):
        QName.parse(":order", {})
    with pytest.raises(ValueError):
        QName.parse("s:", {"s": "urn:x"})
